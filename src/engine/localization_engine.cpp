#include "engine/localization_engine.h"

#include <cmath>
#include <exception>
#include <limits>
#include <stdexcept>
#include <utility>

#include "support/atomic_file.h"
#include "support/log.h"

namespace vire::engine {

namespace {

/// NaN-aware sample equality: an undetected link (NaN) that stays
/// undetected counts as unchanged.
bool same_reading(double a, double b) noexcept {
  return a == b || (std::isnan(a) && std::isnan(b));
}

bool same_readings(const std::vector<sim::RssiVector>& a,
                   const std::vector<sim::RssiVector>& b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t j = 0; j < a.size(); ++j) {
    if (a[j].size() != b[j].size()) return false;
    for (std::size_t k = 0; k < a[j].size(); ++k) {
      if (!same_reading(a[j][k], b[j][k])) return false;
    }
  }
  return true;
}

/// Blanks quarantined readers' entries out of an RSSI vector. NaN is exactly
/// "not detected", which every downstream consumer (elimination, LANDMARC
/// signal distance, the grid interpolation) already skips.
void apply_mask(sim::RssiVector& rssi, const std::vector<bool>& mask) {
  const std::size_t n = rssi.size() < mask.size() ? rssi.size() : mask.size();
  for (std::size_t k = 0; k < n; ++k) {
    if (!mask[k]) rssi[k] = std::numeric_limits<double>::quiet_NaN();
  }
}

}  // namespace

std::string_view to_string(FixQuality q) noexcept {
  switch (q) {
    case FixQuality::kOk:
      return "ok";
    case FixQuality::kDegraded:
      return "degraded";
    case FixQuality::kHold:
      return "hold";
    case FixQuality::kInvalid:
      return "invalid";
  }
  return "invalid";
}

LocalizationEngine::LocalizationEngine(const env::Deployment& deployment,
                                       EngineConfig config)
    : deployment_(deployment),
      config_(config),
      localizer_(deployment.reference_grid(), config.vire),
      fallback_(config.degradation.fallback),
      health_(deployment.reader_count(), config.degradation.health),
      tracer_(config.observability.trace_capacity),
      recorder_(config.observability.flight_recorder_fixes) {
  if (config_.parallel_workers < 0) {
    throw std::invalid_argument("LocalizationEngine: parallel_workers must be >= 0");
  }
  if (config_.degradation.fallback_min_readers < 1) {
    throw std::invalid_argument(
        "LocalizationEngine: fallback_min_readers must be >= 1");
  }
  if (config_.degradation.hold_max_age_s < 0.0) {
    throw std::invalid_argument("LocalizationEngine: hold_max_age_s must be >= 0");
  }

  const auto latency = obs::default_latency_buckets_s();
  inst_.updates = &metrics_.counter("vire_engine_updates_total", {},
                                    "update() calls served");
  inst_.fixes_valid = &metrics_.counter("vire_engine_fixes_total", "valid=\"true\"",
                                        "Fixes produced, by validity");
  inst_.fixes_invalid = &metrics_.counter("vire_engine_fixes_total", "valid=\"false\"",
                                          "Fixes produced, by validity");
  for (const FixQuality q : {FixQuality::kOk, FixQuality::kDegraded,
                             FixQuality::kHold, FixQuality::kInvalid}) {
    inst_.fixes_quality[static_cast<std::size_t>(q)] = &metrics_.counter(
        "vire_engine_fixes_by_quality_total",
        "quality=\"" + std::string(to_string(q)) + "\"",
        "Fixes produced, by quality level (see docs/robustness.md)");
  }
  inst_.fallback_locates = &metrics_.counter(
      "vire_engine_fallback_locates_total", {},
      "Fixes produced by the LANDMARC k-NN fallback path");
  inst_.grid_rebuilds = &metrics_.counter(
      "vire_engine_grid_rebuilds_total", {},
      "Virtual-grid rebuilds from fresh reference readings");
  inst_.grid_partial_rebuilds = &metrics_.counter(
      "vire_engine_grid_partial_rebuilds_total", {},
      "Grid refreshes that re-interpolated only the dirty reader planes "
      "(subset of vire_engine_grid_rebuilds_total)");
  inst_.grid_skips_rate_limited = &metrics_.counter(
      "vire_engine_grid_rebuild_skips_total", "reason=\"rate_limited\"",
      "Rebuilds skipped, by reason");
  inst_.grid_skips_unchanged = &metrics_.counter(
      "vire_engine_grid_rebuild_skips_total", "reason=\"unchanged\"",
      "Rebuilds skipped, by reason");
  inst_.grid_rebuild_planes = &metrics_.histogram(
      "vire_engine_grid_rebuild_planes", obs::linear_buckets(0.0, 1.0, 17), {},
      "Reader planes re-interpolated per grid rebuild (the rebuild scope: "
      "full rebuilds observe the reader count, partial ones the dirty subset)");
  inst_.update_seconds = &metrics_.histogram("vire_engine_update_seconds", latency,
                                             {}, "End-to-end update() latency");
  inst_.degraded_update_seconds = &metrics_.histogram(
      "vire_engine_degraded_update_seconds", latency, {},
      "update() latency while at least one reader is quarantined");
  inst_.stage_interpolation =
      &metrics_.histogram("vire_engine_stage_seconds", latency,
                          "stage=\"interpolation\"", "Per-stage wall time");
  inst_.stage_elimination =
      &metrics_.histogram("vire_engine_stage_seconds", latency,
                          "stage=\"elimination\"", "Per-stage wall time");
  inst_.stage_weighting = &metrics_.histogram(
      "vire_engine_stage_seconds", latency, "stage=\"weighting\"",
      "Per-stage wall time");
  inst_.stage_locate = &metrics_.histogram("vire_engine_stage_seconds", latency,
                                           "stage=\"locate\"", "Per-stage wall time");
  inst_.survivors = &metrics_.histogram(
      "vire_engine_survivors", obs::exponential_buckets(1.0, 2.0, 11), {},
      "Surviving virtual regions per valid fix");
  inst_.refinement_steps = &metrics_.histogram(
      "vire_engine_threshold_refinement_steps", obs::linear_buckets(0.0, 1.0, 15),
      {}, "Adaptive threshold-reduction steps per locate");
  inst_.anomaly_quality = &metrics_.counter(
      "vire_engine_anomaly_dumps_total", "trigger=\"quality_drop\"",
      "Anomaly-triggered provenance dumps, by trigger");
  inst_.anomaly_latency = &metrics_.counter(
      "vire_engine_anomaly_dumps_total", "trigger=\"latency_slo\"",
      "Anomaly-triggered provenance dumps, by trigger");
  health_.attach_metrics(metrics_);

  tracer_.set_enabled(config_.observability.enable_tracing);
  tracer_.set_thread_name("engine");

  if (config_.parallel_workers != 1) {
    pool_ = std::make_unique<support::ThreadPool>(
        static_cast<std::size_t>(config_.parallel_workers));
    pool_->attach_metrics(metrics_);
    pool_->attach_tracer(&tracer_);
  }
}

void LocalizationEngine::set_reference_ids(std::vector<sim::TagId> ids) {
  if (static_cast<int>(ids.size()) != deployment_.reference_count()) {
    throw std::invalid_argument(
        "LocalizationEngine: reference id count must match the deployment");
  }
  if (ids == reference_ids_) return;  // re-registration must keep warm history
  reference_ids_ = std::move(ids);
  last_refresh_.reset();         // force a rebuild on the next update
  last_reference_rssi_.clear();  // readings of old ids are not comparable
}

void LocalizationEngine::track(sim::TagId id, std::string name) {
  tracked_[id] = name.empty() ? "tag-" + std::to_string(id) : std::move(name);
}

void LocalizationEngine::untrack(sim::TagId id) {
  tracked_.erase(id);
  trackers_.erase(id);
  last_good_.erase(id);
  last_quality_.erase(id);
}

std::optional<TagStateSnapshot> LocalizationEngine::export_tag(sim::TagId id) const {
  const auto tracked = tracked_.find(id);
  if (tracked == tracked_.end()) return std::nullopt;
  TagStateSnapshot state;
  state.name = tracked->second;
  if (const auto it = trackers_.find(id); it != trackers_.end()) {
    state.has_tracker = true;
    state.tracker = it->second.state();
  }
  if (const auto it = last_good_.find(id); it != last_good_.end()) {
    state.has_last_good = true;
    state.last_good_time = it->second.time;
    state.last_good_position = it->second.position;
    state.last_good_smoothed = it->second.smoothed;
  }
  if (const auto it = last_quality_.find(id); it != last_quality_.end()) {
    state.has_last_quality = true;
    state.last_quality = it->second;
  }
  return state;
}

void LocalizationEngine::import_tag(sim::TagId id, const TagStateSnapshot& state) {
  track(id, state.name);
  if (state.has_tracker) {
    auto [it, inserted] =
        trackers_.try_emplace(id, core::TrackingFilter(config_.tracking));
    (void)inserted;
    it->second.restore(state.tracker);
  } else {
    trackers_.erase(id);
  }
  if (state.has_last_good) {
    last_good_[id] = {state.last_good_time, state.last_good_position,
                      state.last_good_smoothed};
  } else {
    last_good_.erase(id);
  }
  if (state.has_last_quality) {
    last_quality_[id] = state.last_quality;
  } else {
    last_quality_.erase(id);
  }
}

std::pair<std::filesystem::path, std::filesystem::path>
LocalizationEngine::dump_provenance(const std::filesystem::path& dir,
                                    const std::string& stem) const {
  const std::filesystem::path trace_path = dir / (stem + "_trace.json");
  const std::filesystem::path flight_path = dir / (stem + "_flight.json");
  // Write-temp-then-rename: a crash mid-dump leaves either the previous dump
  // or a complete new one, never truncated JSON (see support/atomic_file.h).
  support::atomic_write_file(trace_path, tracer_.to_chrome_json() + "\n");
  support::atomic_write_file(flight_path, obs::to_json(recorder_) + "\n");
  return {trace_path, flight_path};
}

EngineStateSnapshot LocalizationEngine::snapshot() const {
  EngineStateSnapshot snap;
  snap.reference_ids = reference_ids_;
  snap.tracked.assign(tracked_.begin(), tracked_.end());
  snap.health = health_.snapshot();
  snap.has_last_refresh = last_refresh_.has_value();
  snap.last_refresh = last_refresh_.value_or(0.0);
  snap.last_reference_rssi = last_reference_rssi_;
  snap.grid_rebuilds = grid_rebuilds_;
  snap.fix_sequence = fix_sequence_;
  snap.auto_dumps = auto_dumps_;
  snap.trackers.reserve(trackers_.size());
  for (const auto& [tag, tracker] : trackers_) {
    snap.trackers.push_back({tag, tracker.state()});
  }
  snap.last_good.reserve(last_good_.size());
  for (const auto& [tag, hold] : last_good_) {
    snap.last_good.push_back({tag, hold.time, hold.position, hold.smoothed});
  }
  snap.last_quality.reserve(last_quality_.size());
  for (const auto& [tag, quality] : last_quality_) {
    snap.last_quality.push_back({tag, quality});
  }
  return snap;
}

void LocalizationEngine::restore(const EngineStateSnapshot& snapshot) {
  if (!snapshot.reference_ids.empty() &&
      static_cast<int>(snapshot.reference_ids.size()) !=
          deployment_.reference_count()) {
    throw std::invalid_argument(
        "LocalizationEngine::restore: snapshot reference count does not match "
        "the deployment");
  }
  health_.restore(snapshot.health);  // validates the reader count

  reference_ids_ = snapshot.reference_ids;
  tracked_.clear();
  for (const auto& [tag, name] : snapshot.tracked) tracked_[tag] = name;
  if (snapshot.has_last_refresh) {
    last_refresh_ = snapshot.last_refresh;
  } else {
    last_refresh_.reset();
  }
  last_reference_rssi_ = snapshot.last_reference_rssi;
  grid_rebuilds_ = snapshot.grid_rebuilds;
  fix_sequence_ = snapshot.fix_sequence;
  auto_dumps_ = snapshot.auto_dumps;

  trackers_.clear();
  for (const EngineStateSnapshot::Tracker& t : snapshot.trackers) {
    auto [it, inserted] = trackers_.try_emplace(
        t.tag, core::TrackingFilter(config_.tracking));
    (void)inserted;
    it->second.restore(t.state);
  }
  last_good_.clear();
  for (const EngineStateSnapshot::Hold& h : snapshot.last_good) {
    last_good_[h.tag] = {h.time, h.position, h.smoothed};
  }
  last_quality_.clear();
  for (const EngineStateSnapshot::Quality& q : snapshot.last_quality) {
    last_quality_[q.tag] = q.quality;
  }

  // Rebuild the virtual grid the checkpointed engine was running on, from the
  // stored (post-mask) reference readings. Deliberately no metric increments
  // and no grid_rebuilds_ bump: the persistence layer restores counters
  // registry-wide, and refresh_references()'s unchanged-skip must see exactly
  // the state the uninterrupted engine had.
  if (grid_rebuilds_ > 0 && !last_reference_rssi_.empty()) {
    localizer_.set_reference_rssi(last_reference_rssi_, pool_.get());
  }
}

const core::TrackingFilter* LocalizationEngine::tracker(sim::TagId id) const {
  const auto it = trackers_.find(id);
  return it == trackers_.end() ? nullptr : &it->second;
}

obs::Counter* LocalizationEngine::quality_counter(FixQuality q) const noexcept {
  return inst_.fixes_quality[static_cast<std::size_t>(q)];
}

void LocalizationEngine::refresh_references(
    const std::vector<sim::RssiVector>& reference_rssi, sim::SimTime now,
    bool force) {
  const bool due = force || !last_refresh_.has_value() ||
                   now - *last_refresh_ >= config_.min_refresh_interval_s;
  if (!due) {
    inst_.grid_skips_rate_limited->inc();
    return;
  }
  last_refresh_ = now;
  if (grid_rebuilds_ > 0 && same_readings(reference_rssi, last_reference_rssi_)) {
    inst_.grid_skips_unchanged->inc();
    return;  // unchanged references: the current grid is still exact
  }

  // Dirty-reader diff: when a comparable previous reference field exists,
  // find which reader columns actually changed (NaN-aware, like the
  // unchanged-skip above). Clean readers' planes were interpolated from
  // identical inputs, so re-interpolating only the dirty planes is
  // bit-identical to a full rebuild — see docs/algorithm.md.
  std::vector<int> dirty_readers;
  std::size_t reader_columns = 0;
  bool comparable = grid_rebuilds_ > 0 && !reference_rssi.empty() &&
                    reference_rssi.size() == last_reference_rssi_.size();
  if (comparable) {
    reader_columns = reference_rssi.front().size();
    for (std::size_t j = 0; j < reference_rssi.size(); ++j) {
      if (reference_rssi[j].size() != reader_columns ||
          last_reference_rssi_[j].size() != reader_columns) {
        comparable = false;
        break;
      }
    }
  }
  if (comparable) {
    for (std::size_t k = 0; k < reader_columns; ++k) {
      for (std::size_t j = 0; j < reference_rssi.size(); ++j) {
        if (!same_reading(reference_rssi[j][k], last_reference_rssi_[j][k])) {
          dirty_readers.push_back(static_cast<int>(k));
          break;
        }
      }
    }
  }
  const bool partial = comparable && dirty_readers.size() < reader_columns;
  {
    const obs::ScopedTimer timer(inst_.stage_interpolation);
    // Args are only materialised when tracing is on (the ternary keeps the
    // disabled path allocation-free).
    const obs::TraceSpan span(
        &tracer_, "engine.interpolation",
        tracer_.enabled() ? "{\"references\":" +
                                std::to_string(reference_rssi.size()) +
                                ",\"dirty_readers\":" +
                                (partial ? std::to_string(dirty_readers.size())
                                         : std::string("-1")) +
                                "}"
                          : std::string{});
    if (partial) {
      localizer_.update_reference_rssi(reference_rssi, dirty_readers, pool_.get());
    } else {
      localizer_.set_reference_rssi(reference_rssi, pool_.get());
    }
  }
  last_reference_rssi_ = reference_rssi;
  ++grid_rebuilds_;
  inst_.grid_rebuilds->inc();
  if (partial) {
    inst_.grid_partial_rebuilds->inc();
    inst_.grid_rebuild_planes->observe(static_cast<double>(dirty_readers.size()));
  } else {
    inst_.grid_rebuild_planes->observe(
        reference_rssi.empty()
            ? 0.0
            : static_cast<double>(reference_rssi.front().size()));
  }
}

std::vector<Fix> LocalizationEngine::update(const sim::Middleware& middleware,
                                            sim::SimTime now) {
  if (reference_ids_.empty()) {
    throw std::logic_error("LocalizationEngine: set_reference_ids() first");
  }
  const obs::Stopwatch update_watch;
  inst_.updates->inc();
  // Trace args are only materialised when tracing is on (the ternaries keep
  // the disabled path allocation-free; a null/disabled TraceSpan reads no
  // clock and takes no lock).
  const obs::TraceSpan update_span(
      &tracer_, "engine.update",
      tracer_.enabled() ? "{\"sim_time\":" + std::to_string(now) +
                              ",\"tags\":" + std::to_string(tracked_.size()) + "}"
                        : std::string{});

  // Reference readings are fetched on every update: the health monitor needs
  // them as probes even when the grid refresh is rate-limited.
  std::vector<sim::RssiVector> reference_rssi;
  reference_rssi.reserve(reference_ids_.size());
  for (const sim::TagId id : reference_ids_) {
    reference_rssi.push_back(middleware.rssi_vector(id));
  }
  {
    const obs::TraceSpan span(&tracer_, "engine.health");
    health_.assess(reference_rssi, now);
  }
  const std::vector<bool>& mask = health_.healthy_mask();
  const bool degraded_mode = !health_.all_healthy();

  // Quarantined readers are blanked out of the reference field before the
  // grid sees it, and a mask flip forces an immediate rebuild — the healthy
  // path (no quarantine, no flip) runs on the untouched readings and stays
  // bit-identical to the degradation-free engine.
  if (degraded_mode) {
    for (sim::RssiVector& row : reference_rssi) apply_mask(row, mask);
  }
  refresh_references(reference_rssi, now, health_.mask_changed());

  // The fallback localizer compares tracking tags against the *real*
  // reference tags' current (mask-blanked) readings — LANDMARC needs no
  // virtual grid, which is exactly why it survives reader loss better.
  const bool fallback_ready =
      config_.degradation.enable_fallback && degraded_mode &&
      health_.healthy_count() >= config_.degradation.fallback_min_readers;
  if (fallback_ready) {
    std::vector<landmarc::Reference> references;
    references.reserve(reference_rssi.size());
    const auto& positions = deployment_.reference_positions();
    for (std::size_t j = 0; j < reference_rssi.size(); ++j) {
      references.push_back({positions[j], reference_rssi[j]});
    }
    fallback_.set_references(std::move(references));
  }

  // Snapshot the batch in tag order. RSSI vectors are fetched serially
  // (the middleware is not guarded); locate() is a pure function of the
  // localizer's immutable grid, so only it is fanned out.
  struct Item {
    sim::TagId id;
    const std::string* name;
    sim::RssiVector rssi;
    int valid_readers = 0;
    std::optional<core::VireResult> result;
    std::optional<landmarc::LandmarcResult> fallback;
    core::LocateStats stats;
  };
  std::vector<Item> items;
  items.reserve(tracked_.size());
  for (const auto& [id, name] : tracked_) {
    Item item{id, &name, middleware.rssi_vector(id), 0, std::nullopt,
              std::nullopt, {}};
    if (degraded_mode) apply_mask(item.rssi, mask);
    for (double v : item.rssi) {
      if (!std::isnan(v)) ++item.valid_readers;
    }
    items.push_back(std::move(item));
  }

  // Workers only write their own item (results and timings); histograms are
  // fed in the serial merge below, so no shared state enters the fan-out.
  // Both localizers are const here, and the fallback references were frozen
  // above, so the fan-out stays free of shared mutable state.
  auto locate_item = [&](std::size_t i) {
    Item& item = items[i];
    const bool tracing = tracer_.enabled();
    const double locate_start_us = tracing ? tracer_.now_us() : 0.0;
    if (item.valid_readers >= config_.min_valid_readers && item.valid_readers > 0) {
      item.result = localizer_.locate(item.rssi, &item.stats);
      if (tracing && item.result) {
        // Elimination runs first inside locate(), weighting follows; both
        // durations come from the stage timers, so the child spans are laid
        // end to end from the measured locate start.
        const std::string tag_args = "{\"tag\":" + std::to_string(item.id) + "}";
        const double elim_end_us =
            locate_start_us + 1e6 * item.stats.elimination_seconds;
        tracer_.complete("engine.elimination", locate_start_us, elim_end_us,
                         tag_args);
        tracer_.complete("engine.weighting", elim_end_us,
                         elim_end_us + 1e6 * item.stats.weighting_seconds,
                         tag_args);
      }
    }
    if (!item.result && fallback_ready &&
        item.valid_readers >= config_.degradation.fallback_min_readers) {
      item.fallback = fallback_.locate(item.rssi);
    }
    if (tracing) {
      tracer_.complete("engine.locate_tag", locate_start_us, tracer_.now_us(),
                       "{\"tag\":" + std::to_string(item.id) + "}");
    }
  };
  {
    const obs::ScopedTimer locate_timer(inst_.stage_locate);
    const obs::TraceSpan span(
        &tracer_, "engine.locate",
        tracer_.enabled() ? "{\"items\":" + std::to_string(items.size()) + "}"
                          : std::string{});
    if (pool_) {
      support::parallel_for(0, items.size(), locate_item, pool_.get());
    } else {
      for (std::size_t i = 0; i < items.size(); ++i) locate_item(i);
    }
  }

  // Merge serially in tag order: tracker updates, hold bookkeeping and Fix
  // assembly happen in the same deterministic order regardless of worker
  // count. All provenance capture (flight records, quality transitions)
  // lives here for the same reason — the trace and recorder contents are
  // identical at any worker count modulo timestamps.
  std::vector<Fix> fixes;
  fixes.reserve(items.size());
  bool quality_drop = false;
  const double merge_start_us = tracer_.enabled() ? tracer_.now_us() : 0.0;
  for (Item& item : items) {
    Fix fix;
    fix.tag = item.id;
    fix.name = *item.name;
    fix.time = now;
    if (item.result) {
      fix.valid = true;
      fix.quality = degraded_mode ? FixQuality::kDegraded : FixQuality::kOk;
      fix.position = item.result->position;
      fix.survivor_count = item.result->survivor_count();
      inst_.stage_elimination->observe(item.stats.elimination_seconds);
      inst_.stage_weighting->observe(item.stats.weighting_seconds);
      inst_.survivors->observe(static_cast<double>(fix.survivor_count));
      inst_.refinement_steps->observe(
          static_cast<double>(item.result->elimination.refinement_steps));
    } else if (item.fallback) {
      fix.valid = true;
      fix.quality = FixQuality::kDegraded;
      fix.used_fallback = true;
      fix.position = item.fallback->position;
      inst_.fallback_locates->inc();
    }
    if (fix.valid) {
      inst_.fixes_valid->inc();
      if (config_.enable_tracking) {
        auto [it, inserted] =
            trackers_.try_emplace(item.id, core::TrackingFilter(config_.tracking));
        (void)inserted;
        fix.smoothed_position = it->second.update(now, fix.position);
      } else {
        fix.smoothed_position = fix.position;
      }
      last_good_[item.id] = {now, fix.position, fix.smoothed_position};
    } else {
      // Neither path produced a position: serve the last good fix while it
      // is fresh enough, otherwise report invalid (position stays at the
      // default origin — never NaN; consumers must check valid/quality).
      const auto held = last_good_.find(item.id);
      if (held != last_good_.end() && config_.degradation.hold_max_age_s > 0.0 &&
          now - held->second.time <= config_.degradation.hold_max_age_s) {
        fix.quality = FixQuality::kHold;
        fix.position = held->second.position;
        fix.smoothed_position = held->second.smoothed;
        fix.age_s = now - held->second.time;
      } else {
        fix.quality = FixQuality::kInvalid;
      }
      inst_.fixes_invalid->inc();
    }
    quality_counter(fix.quality)->inc();

    // Quality-transition tracking: a tag leaving kOk is the anomaly trigger;
    // every transition becomes a global instant so Perfetto lines it up with
    // the fault markers that caused it.
    const auto prev = last_quality_.find(item.id);
    const FixQuality previous =
        prev == last_quality_.end() ? fix.quality : prev->second;
    if (previous != fix.quality) {
      if (tracer_.enabled()) {
        tracer_.instant("engine.quality_transition",
                        "{\"tag\":" + std::to_string(item.id) + ",\"from\":\"" +
                            std::string(to_string(previous)) + "\",\"to\":\"" +
                            std::string(to_string(fix.quality)) + "\"}",
                        'g');
      }
      if (previous == FixQuality::kOk) quality_drop = true;
    }
    last_quality_[item.id] = fix.quality;

    if (recorder_.capacity() > 0) {
      obs::FixRecord rec;
      rec.sequence = fix_sequence_++;
      rec.time = now;
      rec.tag = static_cast<std::uint32_t>(item.id);
      rec.name = fix.name;
      rec.quality = std::string(to_string(fix.quality));
      rec.decision = item.result        ? "vire"
                     : item.fallback    ? "fallback"
                     : fix.quality == FixQuality::kHold ? "hold"
                                                        : "none";
      rec.valid = fix.valid;
      rec.used_fallback = fix.used_fallback;
      rec.age_s = fix.age_s;
      rec.x = fix.position.x;
      rec.y = fix.position.y;
      rec.readers.reserve(item.rssi.size());
      for (std::size_t k = 0; k < item.rssi.size(); ++k) {
        rec.readers.push_back(
            {item.rssi[k], k < mask.size() ? static_cast<bool>(mask[k]) : true});
      }
      if (item.result) {
        const core::EliminationResult& elim = item.result->elimination;
        rec.refinement.initial_threshold_db = elim.initial_threshold_db;
        rec.refinement.final_threshold_db = elim.final_threshold_db;
        rec.refinement.steps = elim.refinement_steps;
        rec.refinement.survivors_per_step.assign(elim.survivors_per_step.begin(),
                                                 elim.survivors_per_step.end());
        rec.survivor_count = fix.survivor_count;
        const core::WeightedEstimate& est = item.result->estimate;
        rec.clusters.reserve(est.cluster_sizes.size());
        for (std::size_t c = 0; c < est.cluster_sizes.size(); ++c) {
          rec.clusters.push_back({est.cluster_sizes[c], est.cluster_weights[c]});
        }
        rec.elimination_seconds = item.stats.elimination_seconds;
        rec.weighting_seconds = item.stats.weighting_seconds;
      }
      recorder_.record(std::move(rec));
    }

    fixes.push_back(std::move(fix));
  }
  if (tracer_.enabled()) {
    tracer_.complete("engine.merge", merge_start_us, tracer_.now_us());
  }

  const double elapsed = update_watch.elapsed_seconds();
  inst_.update_seconds->observe(elapsed);
  if (degraded_mode) inst_.degraded_update_seconds->observe(elapsed);

  const bool latency_breach =
      config_.observability.update_latency_slo_s > 0.0 &&
      elapsed > config_.observability.update_latency_slo_s;
  if (latency_breach && tracer_.enabled()) {
    tracer_.instant("engine.latency_slo_breach",
                    "{\"elapsed_s\":" + std::to_string(elapsed) + ",\"slo_s\":" +
                        std::to_string(config_.observability.update_latency_slo_s) +
                        "}",
                    'g');
  }
  if ((quality_drop || latency_breach) && config_.observability.max_auto_dumps > 0 &&
      auto_dumps_ < config_.observability.max_auto_dumps) {
    if (quality_drop) inst_.anomaly_quality->inc();
    if (latency_breach) inst_.anomaly_latency->inc();
    const std::string stem = "anomaly_" + std::to_string(auto_dumps_);
    ++auto_dumps_;
    try {
      dump_provenance(config_.observability.anomaly_dump_dir, stem);
    } catch (const std::exception& e) {
      support::log_warn("anomaly provenance dump (%s) failed: %s", stem.c_str(),
                        e.what());
    }
  }
  return fixes;
}

}  // namespace vire::engine
