#include "engine/localization_engine.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace vire::engine {

namespace {

/// NaN-aware sample equality: an undetected link (NaN) that stays
/// undetected counts as unchanged.
bool same_reading(double a, double b) noexcept {
  return a == b || (std::isnan(a) && std::isnan(b));
}

bool same_readings(const std::vector<sim::RssiVector>& a,
                   const std::vector<sim::RssiVector>& b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t j = 0; j < a.size(); ++j) {
    if (a[j].size() != b[j].size()) return false;
    for (std::size_t k = 0; k < a[j].size(); ++k) {
      if (!same_reading(a[j][k], b[j][k])) return false;
    }
  }
  return true;
}

}  // namespace

LocalizationEngine::LocalizationEngine(const env::Deployment& deployment,
                                       EngineConfig config)
    : deployment_(deployment),
      config_(config),
      localizer_(deployment.reference_grid(), config.vire) {
  if (config_.parallel_workers < 0) {
    throw std::invalid_argument("LocalizationEngine: parallel_workers must be >= 0");
  }

  const auto latency = obs::default_latency_buckets_s();
  inst_.updates = &metrics_.counter("vire_engine_updates_total", {},
                                    "update() calls served");
  inst_.fixes_valid = &metrics_.counter("vire_engine_fixes_total", "valid=\"true\"",
                                        "Fixes produced, by validity");
  inst_.fixes_invalid = &metrics_.counter("vire_engine_fixes_total", "valid=\"false\"",
                                          "Fixes produced, by validity");
  inst_.grid_rebuilds = &metrics_.counter(
      "vire_engine_grid_rebuilds_total", {},
      "Virtual-grid rebuilds from fresh reference readings");
  inst_.grid_skips_rate_limited = &metrics_.counter(
      "vire_engine_grid_rebuild_skips_total", "reason=\"rate_limited\"",
      "Rebuilds skipped, by reason");
  inst_.grid_skips_unchanged = &metrics_.counter(
      "vire_engine_grid_rebuild_skips_total", "reason=\"unchanged\"",
      "Rebuilds skipped, by reason");
  inst_.update_seconds = &metrics_.histogram("vire_engine_update_seconds", latency,
                                             {}, "End-to-end update() latency");
  inst_.stage_interpolation =
      &metrics_.histogram("vire_engine_stage_seconds", latency,
                          "stage=\"interpolation\"", "Per-stage wall time");
  inst_.stage_elimination =
      &metrics_.histogram("vire_engine_stage_seconds", latency,
                          "stage=\"elimination\"", "Per-stage wall time");
  inst_.stage_weighting = &metrics_.histogram(
      "vire_engine_stage_seconds", latency, "stage=\"weighting\"",
      "Per-stage wall time");
  inst_.stage_locate = &metrics_.histogram("vire_engine_stage_seconds", latency,
                                           "stage=\"locate\"", "Per-stage wall time");
  inst_.survivors = &metrics_.histogram(
      "vire_engine_survivors", obs::exponential_buckets(1.0, 2.0, 11), {},
      "Surviving virtual regions per valid fix");
  inst_.refinement_steps = &metrics_.histogram(
      "vire_engine_threshold_refinement_steps", obs::linear_buckets(0.0, 1.0, 15),
      {}, "Adaptive threshold-reduction steps per locate");

  if (config_.parallel_workers != 1) {
    pool_ = std::make_unique<support::ThreadPool>(
        static_cast<std::size_t>(config_.parallel_workers));
    pool_->attach_metrics(metrics_);
  }
}

void LocalizationEngine::set_reference_ids(std::vector<sim::TagId> ids) {
  if (static_cast<int>(ids.size()) != deployment_.reference_count()) {
    throw std::invalid_argument(
        "LocalizationEngine: reference id count must match the deployment");
  }
  reference_ids_ = std::move(ids);
  last_refresh_.reset();         // force a rebuild on the next update
  last_reference_rssi_.clear();  // readings of old ids are not comparable
}

void LocalizationEngine::track(sim::TagId id, std::string name) {
  tracked_[id] = name.empty() ? "tag-" + std::to_string(id) : std::move(name);
}

void LocalizationEngine::untrack(sim::TagId id) {
  tracked_.erase(id);
  trackers_.erase(id);
}

const core::TrackingFilter* LocalizationEngine::tracker(sim::TagId id) const {
  const auto it = trackers_.find(id);
  return it == trackers_.end() ? nullptr : &it->second;
}

void LocalizationEngine::refresh_references(const sim::Middleware& middleware,
                                            sim::SimTime now) {
  const bool due = !last_refresh_.has_value() ||
                   now - *last_refresh_ >= config_.min_refresh_interval_s;
  if (!due) {
    inst_.grid_skips_rate_limited->inc();
    return;
  }
  std::vector<sim::RssiVector> reference_rssi;
  reference_rssi.reserve(reference_ids_.size());
  for (const sim::TagId id : reference_ids_) {
    reference_rssi.push_back(middleware.rssi_vector(id));
  }
  last_refresh_ = now;
  if (grid_rebuilds_ > 0 && same_readings(reference_rssi, last_reference_rssi_)) {
    inst_.grid_skips_unchanged->inc();
    return;  // unchanged references: the current grid is still exact
  }
  {
    const obs::ScopedTimer timer(inst_.stage_interpolation);
    localizer_.set_reference_rssi(reference_rssi, pool_.get());
  }
  last_reference_rssi_ = std::move(reference_rssi);
  ++grid_rebuilds_;
  inst_.grid_rebuilds->inc();
}

std::vector<Fix> LocalizationEngine::update(const sim::Middleware& middleware,
                                            sim::SimTime now) {
  if (reference_ids_.empty()) {
    throw std::logic_error("LocalizationEngine: set_reference_ids() first");
  }
  const obs::ScopedTimer update_timer(inst_.update_seconds);
  inst_.updates->inc();
  refresh_references(middleware, now);

  // Snapshot the batch in tag order. RSSI vectors are fetched serially
  // (the middleware is not guarded); locate() is a pure function of the
  // localizer's immutable grid, so only it is fanned out.
  struct Item {
    sim::TagId id;
    const std::string* name;
    sim::RssiVector rssi;
    int valid_readers = 0;
    std::optional<core::VireResult> result;
    core::LocateStats stats;
  };
  std::vector<Item> items;
  items.reserve(tracked_.size());
  for (const auto& [id, name] : tracked_) {
    Item item{id, &name, middleware.rssi_vector(id), 0, std::nullopt, {}};
    for (double v : item.rssi) {
      if (!std::isnan(v)) ++item.valid_readers;
    }
    items.push_back(std::move(item));
  }

  // Workers only write their own item (results and timings); histograms are
  // fed in the serial merge below, so no shared state enters the fan-out.
  auto locate_item = [&](std::size_t i) {
    Item& item = items[i];
    if (item.valid_readers >= config_.min_valid_readers) {
      item.result = localizer_.locate(item.rssi, &item.stats);
    }
  };
  {
    const obs::ScopedTimer locate_timer(inst_.stage_locate);
    if (pool_) {
      support::parallel_for(0, items.size(), locate_item, pool_.get());
    } else {
      for (std::size_t i = 0; i < items.size(); ++i) locate_item(i);
    }
  }

  // Merge serially in tag order: tracker updates and Fix assembly happen
  // in the same deterministic order regardless of worker count.
  std::vector<Fix> fixes;
  fixes.reserve(items.size());
  for (Item& item : items) {
    Fix fix;
    fix.tag = item.id;
    fix.name = *item.name;
    fix.time = now;
    if (item.result) {
      fix.valid = true;
      fix.position = item.result->position;
      fix.survivor_count = item.result->survivor_count();
      inst_.fixes_valid->inc();
      inst_.stage_elimination->observe(item.stats.elimination_seconds);
      inst_.stage_weighting->observe(item.stats.weighting_seconds);
      inst_.survivors->observe(static_cast<double>(fix.survivor_count));
      inst_.refinement_steps->observe(
          static_cast<double>(item.result->elimination.refinement_steps));
      if (config_.enable_tracking) {
        auto [it, inserted] =
            trackers_.try_emplace(item.id, core::TrackingFilter(config_.tracking));
        (void)inserted;
        fix.smoothed_position = it->second.update(now, item.result->position);
      } else {
        fix.smoothed_position = item.result->position;
      }
    } else {
      inst_.fixes_invalid->inc();
    }
    fixes.push_back(std::move(fix));
  }
  return fixes;
}

}  // namespace vire::engine
