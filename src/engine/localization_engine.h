#pragma once
// LocalizationEngine: the application layer a deployment actually runs.
//
// The paper's system architecture is readers -> central server -> location
// estimates. This engine is that server's core loop: it owns the localizer,
// refreshes the virtual reference grid from the middleware's current
// reference readings (rate-limited — the paper notes the proximity map is
// "updated if the RSSI reading of a real reference tag is changed"),
// localizes every registered tracking tag, and maintains a smoothed track
// per tag. Consumers poll `update()` and get a list of fixes.
//
// Graceful degradation (see docs/robustness.md): a per-reader HealthMonitor
// scores every reader against the reference field and quarantines unhealthy
// ones; localization then runs over the healthy subset only. When the
// healthy subset is too small for VIRE's quorum the engine falls back to
// LANDMARC-style k-NN over the real reference tags, and when even that
// fails it holds the last good fix for a bounded time. Every fix carries a
// FixQuality level so consumers can tell a confident estimate from a
// degraded or held one.
//
// Concurrency: with `parallel_workers != 1` the engine owns a ThreadPool
// and fans the per-tag locate() calls (and the per-reader grid
// interpolation) out over it. Tags are independent once the virtual grid
// is built, and results are merged back in tag order, so the returned Fix
// vector is bit-identical for every worker count (see tests/determinism).
// Health assessment, masking, fallback-reference assembly and the hold
// bookkeeping all run in the serial sections, so the degradation machinery
// preserves that contract.

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/tracking_filter.h"
#include "core/vire_localizer.h"
#include "engine/health_monitor.h"
#include "env/deployment.h"
#include "landmarc/landmarc.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/middleware.h"
#include "support/thread_pool.h"

namespace vire::engine {

/// How the engine degrades when readers fail (see docs/robustness.md).
struct DegradationConfig {
  /// Per-reader health scoring; disable for the strict paper pipeline.
  HealthConfig health;
  /// When quarantines shrink the healthy set below `min_valid_readers`,
  /// localize with LANDMARC k-NN over the real reference tags instead of
  /// dropping the tag. Engages only while at least one reader is
  /// quarantined — a tag that is simply out of range with a healthy reader
  /// fleet still reports invalid, as before.
  bool enable_fallback = true;
  landmarc::LandmarcConfig fallback;
  /// Minimum healthy readers with valid readings for the fallback path.
  int fallback_min_readers = 2;
  /// When neither VIRE nor the fallback produces a position, re-emit the
  /// tag's last good fix as quality kHold for at most this long (seconds);
  /// 0 disables holding and such tags go straight to kInvalid.
  double hold_max_age_s = 20.0;
};

/// Tracing + flight-recorder knobs (see docs/observability.md). Both are
/// pure side channels: fixes are bit-identical with them on or off, at any
/// worker count.
struct ObservabilityConfig {
  /// Start the span tracer enabled. It can be toggled at runtime through
  /// tracer().set_enabled(); disabled tracing costs one relaxed atomic load
  /// per instrumentation point.
  bool enable_tracing = false;
  /// Trace ring capacity in events (oldest events are overwritten).
  std::size_t trace_capacity = 65536;
  /// Fixes retained by the flight recorder; 0 disables provenance capture.
  std::size_t flight_recorder_fixes = 256;
  /// update() latency SLO (seconds); an update slower than this triggers an
  /// anomaly dump. 0 disables the latency trigger.
  double update_latency_slo_s = 0.0;
  /// Where anomaly-triggered dumps land (trace + flight JSON per anomaly).
  /// The default is cwd-relative, so deployments running several engines
  /// from one working directory (e.g. supervised vire_shardd fleets) must
  /// point each process somewhere unique — vire_shardd defaults this to
  /// `<data-dir>/obs`.
  std::filesystem::path anomaly_dump_dir = "obs_out";
  /// Anomaly dumps are capped per engine lifetime so a flapping reader
  /// cannot fill the disk; 0 disables auto-dumping entirely.
  int max_auto_dumps = 4;
};

struct EngineConfig {
  core::VireConfig vire = core::recommended_vire_config();
  core::TrackingFilterConfig tracking;
  bool enable_tracking = true;
  /// The virtual grid is rebuilt from fresh reference readings at most this
  /// often (seconds). 0 rebuilds on every update. Independent of the rate
  /// limit, a rebuild is skipped entirely when the reference readings are
  /// unchanged since the last one (the paper's "updated if the RSSI reading
  /// of a real reference tag is changed"), and forced whenever the health
  /// mask changes so quarantined readers leave the grid immediately.
  double min_refresh_interval_s = 10.0;
  /// A tag whose RSSI vector has fewer than this many valid healthy readers
  /// is not localized with VIRE (the fallback/hold ladder takes over).
  int min_valid_readers = 3;
  /// Worker threads for the per-tag locate() fan-out and the per-reader
  /// grid interpolation. 1 runs fully serial (no pool is created);
  /// 0 selects hardware concurrency. Every setting produces bit-identical
  /// fixes — parallelism changes throughput, never results.
  int parallel_workers = 1;
  DegradationConfig degradation;
  ObservabilityConfig observability;
};

/// Confidence ladder of a Fix, from best to worst. kOk and kDegraded carry a
/// fresh position (valid == true); kHold re-serves the last good position;
/// kInvalid has no usable position (the coordinates are the default origin,
/// never NaN — check quality/valid, not the numbers).
enum class FixQuality {
  kOk,        ///< all readers healthy, full VIRE estimate
  kDegraded,  ///< produced while readers were quarantined (VIRE subset or fallback)
  kHold,      ///< last good fix re-served within the staleness cap
  kInvalid,   ///< nothing usable (and no recent fix to hold)
};

[[nodiscard]] std::string_view to_string(FixQuality q) noexcept;

/// The engine's complete mutable state, for crash-safe checkpoints
/// (src/persist/). Everything update() reads or writes across calls is here:
/// restoring a snapshot into an engine built from the same deployment and
/// config reproduces every subsequent fix bit for bit, at any worker count.
/// Maps are flattened to sorted vectors so serialization is deterministic.
struct EngineStateSnapshot {
  std::vector<sim::TagId> reference_ids;
  /// (tag id, display name), in tag order.
  std::vector<std::pair<sim::TagId, std::string>> tracked;
  HealthMonitorState health;
  bool has_last_refresh = false;
  sim::SimTime last_refresh = 0.0;
  /// Post-mask reference readings behind the current virtual grid; restore()
  /// rebuilds the grid from these when grid_rebuilds > 0, so the unchanged-
  /// readings rebuild skip behaves exactly as in the uninterrupted run.
  std::vector<sim::RssiVector> last_reference_rssi;
  int grid_rebuilds = 0;
  std::uint64_t fix_sequence = 0;
  int auto_dumps = 0;
  struct Tracker {
    sim::TagId tag = 0;
    core::TrackingFilterState state;
  };
  std::vector<Tracker> trackers;
  struct Hold {
    sim::TagId tag = 0;
    sim::SimTime time = 0.0;
    geom::Vec2 position;
    geom::Vec2 smoothed;
  };
  std::vector<Hold> last_good;
  struct Quality {
    sim::TagId tag = 0;
    FixQuality quality = FixQuality::kInvalid;
  };
  std::vector<Quality> last_quality;
};

/// One tracked tag's complete per-tag state, for migrating a tag between
/// engines (the sharded service's rebalancing, src/service/). Everything
/// update() keeps per tag is here; exporting from one engine and importing
/// into another — together with replaying the tag's reading window through
/// the destination middleware — reproduces the tag's subsequent fixes bit
/// for bit, exactly as if it had always lived on the destination.
struct TagStateSnapshot {
  std::string name;
  bool has_tracker = false;
  core::TrackingFilterState tracker;
  bool has_last_good = false;
  sim::SimTime last_good_time = 0.0;
  geom::Vec2 last_good_position;
  geom::Vec2 last_good_smoothed;
  bool has_last_quality = false;
  FixQuality last_quality = FixQuality::kInvalid;
};

/// One localization result for one tracked tag.
struct Fix {
  sim::TagId tag = 0;
  std::string name;
  sim::SimTime time = 0.0;
  /// True iff this update produced a fresh position (quality kOk/kDegraded).
  bool valid = false;
  FixQuality quality = FixQuality::kInvalid;
  geom::Vec2 position;          ///< raw estimate (last good one for kHold)
  geom::Vec2 smoothed_position; ///< track-filtered (== position if disabled)
  std::size_t survivor_count = 0;
  /// True when the LANDMARC k-NN fallback produced the position.
  bool used_fallback = false;
  /// Age of the underlying estimate: 0 for fresh fixes, time since the last
  /// good fix for kHold.
  double age_s = 0.0;
};

class LocalizationEngine {
 public:
  LocalizationEngine(const env::Deployment& deployment, EngineConfig config = {});

  /// Declares which middleware tag ids are the reference tags, in the
  /// deployment's row-major grid order (e.g. the ids returned by
  /// RfidSimulator::add_reference_tags()).
  void set_reference_ids(std::vector<sim::TagId> ids);

  /// Registers a tag to be localized on every update.
  void track(sim::TagId id, std::string name = {});
  void untrack(sim::TagId id);

  /// Migration support (see TagStateSnapshot): the complete per-tag state of
  /// one tracked tag, or nullopt when the tag is not tracked here.
  [[nodiscard]] std::optional<TagStateSnapshot> export_tag(sim::TagId id) const;
  /// Registers `id` (as by track()) and reinstates its exported state. An
  /// existing tag's state is replaced.
  void import_tag(sim::TagId id, const TagStateSnapshot& state);
  [[nodiscard]] std::size_t tracked_count() const noexcept { return tracked_.size(); }

  /// Pulls reference + tracking readings from the middleware at time `now`,
  /// assessing reader health, refreshing the virtual grid if due, and
  /// returns one Fix per tracked tag. Throws std::logic_error if reference
  /// ids were never set.
  std::vector<Fix> update(const sim::Middleware& middleware, sim::SimTime now);

  /// The smoothed track of a tag (nullptr if not tracked / no fix yet).
  [[nodiscard]] const core::TrackingFilter* tracker(sim::TagId id) const;

  /// Diagnostics: how many times the virtual grid has been rebuilt.
  [[nodiscard]] int grid_rebuilds() const noexcept { return grid_rebuilds_; }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  /// Number of pool workers backing update() (1 when running serial).
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return pool_ ? pool_->size() : 1;
  }

  /// The per-reader health monitor driving the degradation ladder.
  [[nodiscard]] const HealthMonitor& health() const noexcept { return health_; }

  /// The engine's metrics registry (counters, stage timers, distributions —
  /// see docs/observability.md for the catalog). Always populated; callers
  /// export it with obs::to_prometheus()/obs::to_json(). Other components
  /// (e.g. the middleware) may register their metrics here too, so one
  /// export covers the whole pipeline. Instrumentation is a pure side
  /// channel: fixes are bit-identical with or without consumers reading it.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

  /// The pipeline span tracer (Chrome trace-event JSON; see
  /// docs/observability.md). Always constructed; starts enabled iff
  /// ObservabilityConfig::enable_tracing. Other components plug into the
  /// same timeline via their attach_tracer() (middleware, fault injector —
  /// the pool is attached automatically).
  [[nodiscard]] obs::Tracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] const obs::Tracer& tracer() const noexcept { return tracer_; }

  /// Full provenance of the last N fixes (N =
  /// ObservabilityConfig::flight_recorder_fixes; empty when 0).
  [[nodiscard]] const obs::FlightRecorder& flight_recorder() const noexcept {
    return recorder_;
  }

  /// Writes `<stem>_trace.json` (Chrome trace-event) and `<stem>_flight.json`
  /// (flight-recorder dump) under `dir`, creating it if needed, and returns
  /// the two paths. Throws std::runtime_error on I/O failure. The anomaly
  /// auto-dump calls this with stem "anomaly_<n>" (failures there are logged,
  /// never thrown into update()).
  std::pair<std::filesystem::path, std::filesystem::path> dump_provenance(
      const std::filesystem::path& dir, const std::string& stem = "vire") const;

  /// Anomaly dumps written so far (capped at max_auto_dumps).
  [[nodiscard]] int auto_dump_count() const noexcept { return auto_dumps_; }

  /// Reference tag ids as declared with set_reference_ids() (empty before).
  [[nodiscard]] const std::vector<sim::TagId>& reference_ids() const noexcept {
    return reference_ids_;
  }

  /// Checkpoint support: export / reinstate the full mutable state.
  /// restore() rebuilds the virtual grid from the snapshot's reference
  /// readings (when one existed) WITHOUT bumping the rebuild metrics — the
  /// persistence layer restores registry counters separately, and a restored
  /// engine must count exactly like the uninterrupted one. Throws
  /// std::invalid_argument when the snapshot is structurally incompatible
  /// (reference/reader counts differ from this engine's deployment).
  [[nodiscard]] EngineStateSnapshot snapshot() const;
  void restore(const EngineStateSnapshot& snapshot);

 private:
  void refresh_references(const std::vector<sim::RssiVector>& reference_rssi,
                          sim::SimTime now, bool force);
  [[nodiscard]] obs::Counter* quality_counter(FixQuality q) const noexcept;

  /// Pointers into metrics_ for the hot path (registered at construction).
  struct Instruments {
    obs::Counter* updates = nullptr;
    obs::Counter* fixes_valid = nullptr;
    obs::Counter* fixes_invalid = nullptr;
    obs::Counter* fixes_quality[4] = {nullptr, nullptr, nullptr, nullptr};
    obs::Counter* fallback_locates = nullptr;
    obs::Counter* grid_rebuilds = nullptr;
    obs::Counter* grid_partial_rebuilds = nullptr;
    obs::Counter* grid_skips_rate_limited = nullptr;
    obs::Counter* grid_skips_unchanged = nullptr;
    obs::Histogram* grid_rebuild_planes = nullptr;
    obs::Histogram* update_seconds = nullptr;
    obs::Histogram* degraded_update_seconds = nullptr;
    obs::Histogram* stage_interpolation = nullptr;
    obs::Histogram* stage_elimination = nullptr;
    obs::Histogram* stage_weighting = nullptr;
    obs::Histogram* stage_locate = nullptr;
    obs::Histogram* survivors = nullptr;
    obs::Histogram* refinement_steps = nullptr;
    obs::Counter* anomaly_quality = nullptr;
    obs::Counter* anomaly_latency = nullptr;
  };

  /// Last fresh (kOk/kDegraded) estimate per tag, for the bounded hold.
  struct LastGood {
    sim::SimTime time = 0.0;
    geom::Vec2 position;
    geom::Vec2 smoothed;
  };

  env::Deployment deployment_;
  EngineConfig config_;
  core::VireLocalizer localizer_;
  landmarc::LandmarcLocalizer fallback_;
  HealthMonitor health_;
  std::vector<sim::TagId> reference_ids_;
  std::map<sim::TagId, std::string> tracked_;
  std::map<sim::TagId, core::TrackingFilter> trackers_;
  std::map<sim::TagId, LastGood> last_good_;
  std::optional<sim::SimTime> last_refresh_;
  /// Reference readings behind the current virtual grid; a refresh whose
  /// readings match is skipped without rebuilding.
  std::vector<sim::RssiVector> last_reference_rssi_;
  int grid_rebuilds_ = 0;
  /// Declared before pool_: workers may bump pool metrics until joined, so
  /// the registry must be destroyed after the pool.
  obs::MetricsRegistry metrics_;
  Instruments inst_;
  /// Same destruction-order rule as metrics_: workers emit pool.task spans
  /// until joined, so the tracer must outlive the pool.
  obs::Tracer tracer_;
  obs::FlightRecorder recorder_;
  /// Previous update's quality per tag, for the quality-transition anomaly
  /// trigger (a tag leaving kOk).
  std::map<sim::TagId, FixQuality> last_quality_;
  std::uint64_t fix_sequence_ = 0;
  int auto_dumps_ = 0;
  std::unique_ptr<support::ThreadPool> pool_;
};

}  // namespace vire::engine
