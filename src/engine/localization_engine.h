#pragma once
// LocalizationEngine: the application layer a deployment actually runs.
//
// The paper's system architecture is readers -> central server -> location
// estimates. This engine is that server's core loop: it owns the localizer,
// refreshes the virtual reference grid from the middleware's current
// reference readings (rate-limited — the paper notes the proximity map is
// "updated if the RSSI reading of a real reference tag is changed"),
// localizes every registered tracking tag, and maintains a smoothed track
// per tag. Consumers poll `update()` and get a list of fixes.
//
// Concurrency: with `parallel_workers != 1` the engine owns a ThreadPool
// and fans the per-tag locate() calls (and the per-reader grid
// interpolation) out over it. Tags are independent once the virtual grid
// is built, and results are merged back in tag order, so the returned Fix
// vector is bit-identical for every worker count (see tests/determinism).

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/tracking_filter.h"
#include "core/vire_localizer.h"
#include "env/deployment.h"
#include "obs/metrics.h"
#include "sim/middleware.h"
#include "support/thread_pool.h"

namespace vire::engine {

struct EngineConfig {
  core::VireConfig vire = core::recommended_vire_config();
  core::TrackingFilterConfig tracking;
  bool enable_tracking = true;
  /// The virtual grid is rebuilt from fresh reference readings at most this
  /// often (seconds). 0 rebuilds on every update. Independent of the rate
  /// limit, a rebuild is skipped entirely when the reference readings are
  /// unchanged since the last one (the paper's "updated if the RSSI reading
  /// of a real reference tag is changed").
  double min_refresh_interval_s = 10.0;
  /// A tag whose RSSI vector has fewer than this many valid readers is
  /// reported as invalid rather than localized.
  int min_valid_readers = 3;
  /// Worker threads for the per-tag locate() fan-out and the per-reader
  /// grid interpolation. 1 runs fully serial (no pool is created);
  /// 0 selects hardware concurrency. Every setting produces bit-identical
  /// fixes — parallelism changes throughput, never results.
  int parallel_workers = 1;
};

/// One localization result for one tracked tag.
struct Fix {
  sim::TagId tag = 0;
  std::string name;
  sim::SimTime time = 0.0;
  bool valid = false;
  geom::Vec2 position;          ///< raw VIRE estimate
  geom::Vec2 smoothed_position; ///< track-filtered (== position if disabled)
  std::size_t survivor_count = 0;
};

class LocalizationEngine {
 public:
  LocalizationEngine(const env::Deployment& deployment, EngineConfig config = {});

  /// Declares which middleware tag ids are the reference tags, in the
  /// deployment's row-major grid order (e.g. the ids returned by
  /// RfidSimulator::add_reference_tags()).
  void set_reference_ids(std::vector<sim::TagId> ids);

  /// Registers a tag to be localized on every update.
  void track(sim::TagId id, std::string name = {});
  void untrack(sim::TagId id);
  [[nodiscard]] std::size_t tracked_count() const noexcept { return tracked_.size(); }

  /// Pulls reference + tracking readings from the middleware at time `now`,
  /// refreshing the virtual grid if due, and returns one Fix per tracked
  /// tag. Throws std::logic_error if reference ids were never set.
  std::vector<Fix> update(const sim::Middleware& middleware, sim::SimTime now);

  /// The smoothed track of a tag (nullptr if not tracked / no fix yet).
  [[nodiscard]] const core::TrackingFilter* tracker(sim::TagId id) const;

  /// Diagnostics: how many times the virtual grid has been rebuilt.
  [[nodiscard]] int grid_rebuilds() const noexcept { return grid_rebuilds_; }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  /// Number of pool workers backing update() (1 when running serial).
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return pool_ ? pool_->size() : 1;
  }

  /// The engine's metrics registry (counters, stage timers, distributions —
  /// see docs/observability.md for the catalog). Always populated; callers
  /// export it with obs::to_prometheus()/obs::to_json(). Other components
  /// (e.g. the middleware) may register their metrics here too, so one
  /// export covers the whole pipeline. Instrumentation is a pure side
  /// channel: fixes are bit-identical with or without consumers reading it.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

 private:
  void refresh_references(const sim::Middleware& middleware, sim::SimTime now);

  /// Pointers into metrics_ for the hot path (registered at construction).
  struct Instruments {
    obs::Counter* updates = nullptr;
    obs::Counter* fixes_valid = nullptr;
    obs::Counter* fixes_invalid = nullptr;
    obs::Counter* grid_rebuilds = nullptr;
    obs::Counter* grid_skips_rate_limited = nullptr;
    obs::Counter* grid_skips_unchanged = nullptr;
    obs::Histogram* update_seconds = nullptr;
    obs::Histogram* stage_interpolation = nullptr;
    obs::Histogram* stage_elimination = nullptr;
    obs::Histogram* stage_weighting = nullptr;
    obs::Histogram* stage_locate = nullptr;
    obs::Histogram* survivors = nullptr;
    obs::Histogram* refinement_steps = nullptr;
  };

  env::Deployment deployment_;
  EngineConfig config_;
  core::VireLocalizer localizer_;
  std::vector<sim::TagId> reference_ids_;
  std::map<sim::TagId, std::string> tracked_;
  std::map<sim::TagId, core::TrackingFilter> trackers_;
  std::optional<sim::SimTime> last_refresh_;
  /// Reference readings behind the current virtual grid; a refresh whose
  /// readings match is skipped without rebuilding.
  std::vector<sim::RssiVector> last_reference_rssi_;
  int grid_rebuilds_ = 0;
  /// Declared before pool_: workers may bump pool metrics until joined, so
  /// the registry must be destroyed after the pool.
  obs::MetricsRegistry metrics_;
  Instruments inst_;
  std::unique_ptr<support::ThreadPool> pool_;
};

}  // namespace vire::engine
