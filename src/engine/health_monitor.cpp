#include "engine/health_monitor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace vire::engine {

namespace {

/// NaN-aware equality: an undetected link staying undetected is "unchanged".
bool same_reading(double a, double b) noexcept {
  return a == b || (std::isnan(a) && std::isnan(b));
}

double median_of(std::vector<double>& values) noexcept {
  if (values.empty()) return 0.0;
  const auto mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  if (values.size() % 2 == 1) return values[mid];
  const double upper = values[mid];
  const double lower =
      *std::max_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lower + upper);
}

}  // namespace

HealthMonitor::HealthMonitor(int reader_count, HealthConfig config)
    : config_(config),
      status_(static_cast<std::size_t>(reader_count), ReaderHealth::kHealthy),
      state_(static_cast<std::size_t>(reader_count)),
      healthy_mask_(static_cast<std::size_t>(reader_count), true) {
  if (reader_count <= 0) {
    throw std::invalid_argument("HealthMonitor: reader_count must be positive");
  }
  if (config.quarantine_after < 1 || config.recover_after < 1 ||
      !(config.min_valid_fraction >= 0.0 && config.min_valid_fraction <= 1.0) ||
      !(config.max_median_jump_db > 0.0)) {
    throw std::invalid_argument("HealthMonitor: invalid config");
  }
}

void HealthMonitor::attach_metrics(obs::MetricsRegistry& registry) {
  reader_gauges_.assign(status_.size(), nullptr);
  for (std::size_t k = 0; k < status_.size(); ++k) {
    reader_gauges_[k] = &registry.gauge(
        "vire_health_reader_healthy", "reader=\"" + std::to_string(k) + "\"",
        "Per-reader health (1 = healthy, 0 = quarantined)");
  }
  quarantines_metric_ = &registry.counter(
      "vire_health_quarantines_total", {}, "Readers quarantined by the health monitor");
  recoveries_metric_ = &registry.counter(
      "vire_health_recoveries_total", {}, "Quarantined readers recovered to healthy");
  healthy_gauge_ = &registry.gauge("vire_health_healthy_readers", {},
                                   "Readers currently considered healthy");
  quarantines_metric_->inc(quarantines_);
  recoveries_metric_->inc(recoveries_);
  publish_metrics();
}

bool HealthMonitor::is_suspect(int reader,
                               const std::vector<sim::RssiVector>& reference_rssi,
                               sim::SimTime now) {
  const auto k = static_cast<std::size_t>(reader);
  ReaderState& state = state_[k];
  const std::size_t ref_count = reference_rssi.size();

  std::size_t valid = 0;
  bool changed = false;
  std::vector<double> deltas;
  deltas.reserve(ref_count);
  std::vector<double> current(ref_count, std::numeric_limits<double>::quiet_NaN());
  for (std::size_t j = 0; j < ref_count; ++j) {
    const double v = k < reference_rssi[j].size()
                         ? reference_rssi[j][k]
                         : std::numeric_limits<double>::quiet_NaN();
    current[j] = v;
    if (!std::isnan(v)) ++valid;
    if (state.seen) {
      const double last = state.last_rssi[j];
      if (!same_reading(v, last)) changed = true;
      if (!std::isnan(v) && !std::isnan(last)) deltas.push_back(std::abs(v - last));
    }
  }

  bool suspect = false;
  // Coverage: the reader lost (most of) its view of the reference field.
  if (ref_count > 0 &&
      static_cast<double>(valid) <
          config_.min_valid_fraction * static_cast<double>(ref_count)) {
    suspect = true;
  }
  // Disturbance: the whole reference field moved at once — physically
  // implausible, so the reader's front end is the likely culprit.
  if (!suspect && state.seen && !deltas.empty() &&
      median_of(deltas) > config_.max_median_jump_db) {
    suspect = true;
  }
  // Staleness: data frozen while the clock advanced.
  if (!state.seen || changed) state.last_change = now;
  if (!suspect && config_.stale_after_s > 0.0 && state.seen &&
      now - state.last_change > config_.stale_after_s) {
    suspect = true;
  }

  state.last_rssi = std::move(current);
  state.seen = true;
  return suspect;
}

void HealthMonitor::assess(const std::vector<sim::RssiVector>& reference_rssi,
                           sim::SimTime now) {
  mask_changed_ = false;
  if (!config_.enabled) return;
  for (std::size_t k = 0; k < status_.size(); ++k) {
    ReaderState& state = state_[k];
    if (is_suspect(static_cast<int>(k), reference_rssi, now)) {
      state.clean_streak = 0;
      ++state.suspect_streak;
      if (status_[k] == ReaderHealth::kHealthy &&
          state.suspect_streak >= config_.quarantine_after) {
        status_[k] = ReaderHealth::kQuarantined;
        healthy_mask_[k] = false;
        mask_changed_ = true;
        ++quarantines_;
        if (quarantines_metric_ != nullptr) quarantines_metric_->inc();
      }
    } else {
      state.suspect_streak = 0;
      ++state.clean_streak;
      if (status_[k] == ReaderHealth::kQuarantined &&
          state.clean_streak >= config_.recover_after) {
        status_[k] = ReaderHealth::kHealthy;
        healthy_mask_[k] = true;
        mask_changed_ = true;
        ++recoveries_;
        if (recoveries_metric_ != nullptr) recoveries_metric_->inc();
      }
    }
  }
  publish_metrics();
}

int HealthMonitor::healthy_count() const noexcept {
  int count = 0;
  for (const bool healthy : healthy_mask_) count += healthy ? 1 : 0;
  return count;
}

bool HealthMonitor::all_healthy() const noexcept {
  return healthy_count() == reader_count();
}

HealthMonitorState HealthMonitor::snapshot() const {
  HealthMonitorState snap;
  snap.readers.reserve(state_.size());
  for (std::size_t k = 0; k < state_.size(); ++k) {
    const ReaderState& state = state_[k];
    HealthMonitorState::Reader reader;
    reader.quarantined = status_[k] == ReaderHealth::kQuarantined;
    reader.suspect_streak = state.suspect_streak;
    reader.clean_streak = state.clean_streak;
    reader.last_rssi = state.last_rssi;
    reader.last_change = state.last_change;
    reader.seen = state.seen;
    snap.readers.push_back(std::move(reader));
  }
  snap.quarantines = quarantines_;
  snap.recoveries = recoveries_;
  return snap;
}

void HealthMonitor::restore(const HealthMonitorState& snapshot) {
  if (snapshot.readers.size() != state_.size()) {
    throw std::invalid_argument(
        "HealthMonitor::restore: snapshot has " +
        std::to_string(snapshot.readers.size()) + " readers, monitor has " +
        std::to_string(state_.size()));
  }
  for (std::size_t k = 0; k < state_.size(); ++k) {
    const HealthMonitorState::Reader& reader = snapshot.readers[k];
    status_[k] = reader.quarantined ? ReaderHealth::kQuarantined : ReaderHealth::kHealthy;
    healthy_mask_[k] = !reader.quarantined;
    ReaderState& state = state_[k];
    state.status = status_[k];
    state.suspect_streak = reader.suspect_streak;
    state.clean_streak = reader.clean_streak;
    state.last_rssi = reader.last_rssi;
    state.last_change = reader.last_change;
    state.seen = reader.seen;
  }
  quarantines_ = snapshot.quarantines;
  recoveries_ = snapshot.recoveries;
  mask_changed_ = false;
  publish_metrics();
}

void HealthMonitor::publish_metrics() {
  if (healthy_gauge_ != nullptr) {
    healthy_gauge_->set(static_cast<double>(healthy_count()));
  }
  for (std::size_t k = 0; k < reader_gauges_.size(); ++k) {
    if (reader_gauges_[k] != nullptr) {
      reader_gauges_[k]->set(healthy_mask_[k] ? 1.0 : 0.0);
    }
  }
}

}  // namespace vire::engine
