#pragma once
// HealthMonitor: per-reader health scoring for the localization engine.
//
// VIRE implicitly assumes all K readers deliver a fresh, trustworthy RSSI
// field. In deployment, readers die, feed stale caches, or return corrupted
// values — and an unhealthy reader poisons the whole pipeline, because the
// elimination step intersects its proximity map with everyone else's. The
// monitor watches each reader's view of the REFERENCE tags (whose readings
// are dense and always-on, so they double as per-reader health probes —
// the same trick the paper uses them for calibration) and quarantines
// readers that fail either check:
//
//   * coverage — the fraction of reference tags the reader currently hears
//     drops below `min_valid_fraction` (outage, severe packet loss);
//   * disturbance — the median absolute change of its reference readings
//     between consecutive assessments exceeds `max_median_jump_db` (bias
//     steps, spike bursts; a physical field never moves every reference
//     link by 10+ dB at once);
//   * staleness — its reference readings have not changed for
//     `stale_after_s` while time advanced (frozen cache / stuck pipeline).
//
// Hysteresis (quarantine_after / recover_after consecutive assessments)
// keeps single noisy windows from flapping the mask. Everything is a pure
// function of the reading history, so assessments are deterministic and
// bit-identical across engine worker counts.

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "sim/types.h"

namespace vire::engine {

struct HealthConfig {
  bool enabled = true;
  /// A reader hearing fewer than this fraction of the reference tags is
  /// suspect (coverage check).
  double min_valid_fraction = 0.5;
  /// Median |delta| of a reader's reference readings between consecutive
  /// assessments above this is suspect (disturbance check).
  double max_median_jump_db = 10.0;
  /// Reference readings unchanged for longer than this while time advances
  /// mark the reader suspect (staleness check). <= 0 disables the check.
  double stale_after_s = 60.0;
  /// Consecutive suspect assessments before quarantine.
  int quarantine_after = 2;
  /// Consecutive clean assessments before a quarantined reader recovers.
  int recover_after = 2;
};

enum class ReaderHealth { kHealthy, kQuarantined };

/// The monitor's complete mutable state, for engine checkpoints
/// (src/persist/). Restoring it into a monitor with the same reader count
/// and config reproduces every subsequent assessment bit for bit — the
/// hysteresis streaks, staleness clocks and last-seen readings all resume
/// exactly where the checkpointed process left them.
struct HealthMonitorState {
  struct Reader {
    bool quarantined = false;
    int suspect_streak = 0;
    int clean_streak = 0;
    std::vector<double> last_rssi;
    sim::SimTime last_change = 0.0;
    bool seen = false;
  };
  std::vector<Reader> readers;
  std::uint64_t quarantines = 0;
  std::uint64_t recoveries = 0;
};

class HealthMonitor {
 public:
  HealthMonitor(int reader_count, HealthConfig config = {});

  /// One assessment from the current reference readings (row-major over
  /// reference tags, one K-entry RssiVector each — the same snapshot the
  /// engine feeds the virtual grid). `now` is the engine update time.
  void assess(const std::vector<sim::RssiVector>& reference_rssi, sim::SimTime now);

  /// true = reader usable. All-true until assess() finds problems (and
  /// always all-true when disabled).
  [[nodiscard]] const std::vector<bool>& healthy_mask() const noexcept {
    return healthy_mask_;
  }
  [[nodiscard]] int healthy_count() const noexcept;
  [[nodiscard]] bool all_healthy() const noexcept;
  [[nodiscard]] ReaderHealth status(int reader) const {
    return status_.at(static_cast<std::size_t>(reader));
  }
  /// Did the last assess() change the mask? The engine forces a virtual-grid
  /// rebuild when it did, so quarantined readers leave the grid immediately.
  [[nodiscard]] bool mask_changed() const noexcept { return mask_changed_; }
  [[nodiscard]] int reader_count() const noexcept {
    return static_cast<int>(status_.size());
  }
  [[nodiscard]] std::uint64_t quarantine_count() const noexcept { return quarantines_; }
  [[nodiscard]] std::uint64_t recovery_count() const noexcept { return recoveries_; }
  [[nodiscard]] const HealthConfig& config() const noexcept { return config_; }

  /// Registers per-reader status gauges (vire_health_reader_healthy),
  /// quarantine/recovery counters and the healthy-reader gauge. Registry
  /// must outlive the monitor. Pure side channel.
  void attach_metrics(obs::MetricsRegistry& registry);

  /// Checkpoint support: export / reinstate the full mutable state.
  /// restore() throws if the snapshot's reader count differs; it republishes
  /// gauges but never bumps the quarantine/recovery *counters* — the
  /// persistence layer restores registry counters itself, so restoring here
  /// too would double-count.
  [[nodiscard]] HealthMonitorState snapshot() const;
  void restore(const HealthMonitorState& snapshot);

 private:
  struct ReaderState {
    ReaderHealth status = ReaderHealth::kHealthy;
    int suspect_streak = 0;
    int clean_streak = 0;
    /// Last seen reference readings of this reader (one per reference tag).
    std::vector<double> last_rssi;
    /// Last time this reader's readings changed (staleness clock).
    sim::SimTime last_change = 0.0;
    bool seen = false;
  };

  [[nodiscard]] bool is_suspect(int reader,
                                const std::vector<sim::RssiVector>& reference_rssi,
                                sim::SimTime now);
  void publish_metrics();

  HealthConfig config_;
  std::vector<ReaderHealth> status_;
  std::vector<ReaderState> state_;
  std::vector<bool> healthy_mask_;
  bool mask_changed_ = false;
  std::uint64_t quarantines_ = 0;
  std::uint64_t recoveries_ = 0;

  std::vector<obs::Gauge*> reader_gauges_;
  obs::Counter* quarantines_metric_ = nullptr;
  obs::Counter* recoveries_metric_ = nullptr;
  obs::Gauge* healthy_gauge_ = nullptr;
};

}  // namespace vire::engine
