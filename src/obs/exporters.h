#pragma once
// Exporters for MetricsRegistry snapshots:
//  * Prometheus text exposition format (v0.0.4) — the string a /metrics
//    endpoint would serve; histograms expand to cumulative _bucket{le=...}
//    series plus _sum and _count;
//  * JSON snapshot — one self-describing document for offline analysis and
//    the bench trajectory tooling.
//
// Both operate on a point-in-time snapshot, so they can run concurrently
// with hot-path updates.

#include <filesystem>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace vire::obs {

/// Renders the whole registry in Prometheus text exposition format.
[[nodiscard]] std::string to_prometheus(const MetricsRegistry& registry);

/// Renders the whole registry as a JSON document:
/// {"counters":[...],"gauges":[...],"histograms":[...]}.
[[nodiscard]] std::string to_json(const MetricsRegistry& registry);

/// Same renderings over an explicit snapshot vector, for callers that merge
/// several registries into one export (e.g. the sharded service appending a
/// shard label to every per-shard series before concatenating). Families
/// with the same name need not be contiguous in `snaps`; the Prometheus
/// renderer groups them by first appearance.
[[nodiscard]] std::string to_prometheus(const std::vector<MetricSnapshot>& snaps);
[[nodiscard]] std::string to_json(const std::vector<MetricSnapshot>& snaps);

/// Writes to_json() to `path`, creating parent directories. Throws
/// std::runtime_error on I/O failure.
void write_json_snapshot(const MetricsRegistry& registry,
                         const std::filesystem::path& path);

/// Writes to_prometheus() to `path`, creating parent directories. Throws
/// std::runtime_error on I/O failure.
void write_prometheus_snapshot(const MetricsRegistry& registry,
                               const std::filesystem::path& path);

/// Shortest round-trip decimal formatting ("0.1", not "0.10000000000000001").
/// Non-finite values render as "NaN"/"+Inf"/"-Inf" (Prometheus spelling).
[[nodiscard]] std::string format_double(double v);

/// Escapes a raw string for use inside a Prometheus label value (text
/// exposition format): backslash, double quote and newline become \\, \"
/// and \n. Use when a label value comes from free-form input (tag names,
/// file paths) rather than a fixed enum.
[[nodiscard]] std::string escape_label_value(const std::string& value);

/// Formats one `name="value"` label pair with the value escaped.
[[nodiscard]] std::string label_pair(const std::string& name,
                                     const std::string& value);

/// Injects `label` (a label_pair(), e.g. `process="shard-0"`) into every
/// series line of a Prometheus text exposition document: `m 1` becomes
/// `m{process="shard-0"} 1`, `m{a="b"} 1` becomes `m{process="shard-0",a="b"} 1`.
/// Comment (#) and blank lines pass through untouched. Used by the
/// supervisor to disambiguate scrapes merged from several shard processes
/// that each export identical series names.
[[nodiscard]] std::string relabel_prometheus(const std::string& text,
                                             const std::string& label);

}  // namespace vire::obs
