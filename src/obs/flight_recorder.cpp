#include "obs/flight_recorder.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/exporters.h"

namespace vire::obs {

FlightRecorder::FlightRecorder(std::size_t capacity) : slots_(capacity) {}

void FlightRecorder::record(FixRecord rec) {
  if (slots_.empty()) return;
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  slots_[head % slots_.size()] = std::move(rec);
  head_.store(head + 1, std::memory_order_release);
}

std::size_t FlightRecorder::size() const noexcept {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(total_recorded(), slots_.size()));
}

std::vector<FixRecord> FlightRecorder::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t count = std::min<std::uint64_t>(head, slots_.size());
  std::vector<FixRecord> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(slots_[(head - count + i) % slots_.size()]);
  }
  return out;
}

std::optional<FixRecord> FlightRecorder::last_for_tag(std::uint32_t tag) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t count = std::min<std::uint64_t>(head, slots_.size());
  for (std::uint64_t i = 0; i < count; ++i) {
    const FixRecord& rec = slots_[(head - 1 - i) % slots_.size()];
    if (rec.tag == tag) return rec;
  }
  return std::nullopt;
}

void FlightRecorder::clear() { head_.store(0, std::memory_order_release); }

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// JSON has no NaN literal; undetected readers encode as null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  return format_double(v);
}

}  // namespace

std::string to_json(const FixRecord& rec) {
  std::ostringstream out;
  out << "{\"sequence\":" << rec.sequence << ",\"time\":" << json_number(rec.time)
      << ",\"tag\":" << rec.tag << ",\"name\":\"" << json_escape(rec.name)
      << "\",\"quality\":\"" << json_escape(rec.quality) << "\",\"decision\":\""
      << json_escape(rec.decision) << "\",\"valid\":" << (rec.valid ? "true" : "false")
      << ",\"used_fallback\":" << (rec.used_fallback ? "true" : "false")
      << ",\"age_s\":" << json_number(rec.age_s) << ",\"position\":["
      << json_number(rec.x) << "," << json_number(rec.y) << "],\"readers\":[";
  for (std::size_t k = 0; k < rec.readers.size(); ++k) {
    out << (k == 0 ? "" : ",") << "{\"rssi_dbm\":" << json_number(rec.readers[k].rssi_dbm)
        << ",\"healthy\":" << (rec.readers[k].healthy ? "true" : "false") << "}";
  }
  out << "],\"refinement\":{\"initial_threshold_db\":"
      << json_number(rec.refinement.initial_threshold_db)
      << ",\"final_threshold_db\":" << json_number(rec.refinement.final_threshold_db)
      << ",\"steps\":" << rec.refinement.steps << ",\"survivors_per_step\":[";
  for (std::size_t i = 0; i < rec.refinement.survivors_per_step.size(); ++i) {
    out << (i == 0 ? "" : ",") << rec.refinement.survivors_per_step[i];
  }
  out << "]},\"survivor_count\":" << rec.survivor_count << ",\"clusters\":[";
  for (std::size_t i = 0; i < rec.clusters.size(); ++i) {
    out << (i == 0 ? "" : ",") << "{\"size\":" << rec.clusters[i].size
        << ",\"weight\":" << json_number(rec.clusters[i].weight) << "}";
  }
  out << "],\"stage_seconds\":{\"elimination\":"
      << json_number(rec.elimination_seconds)
      << ",\"weighting\":" << json_number(rec.weighting_seconds) << "}}";
  return out.str();
}

std::string to_json(const FlightRecorder& recorder) {
  const auto records = recorder.snapshot();
  std::ostringstream out;
  out << "{\"total_recorded\":" << recorder.total_recorded()
      << ",\"capacity\":" << recorder.capacity() << ",\"records\":[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out << (i == 0 ? "" : ",") << to_json(records[i]);
  }
  out << "]}";
  return out.str();
}

std::string to_text(const FixRecord& rec) {
  std::ostringstream out;
  out << "fix #" << rec.sequence << "  tag " << rec.tag;
  if (!rec.name.empty()) out << " (" << rec.name << ")";
  out << "  t=" << format_double(rec.time) << " s\n";
  out << "  quality: " << rec.quality << "  decision: " << rec.decision;
  if (rec.used_fallback) out << "  [landmarc fallback]";
  if (rec.age_s > 0.0) out << "  age " << format_double(rec.age_s) << " s";
  out << "\n  position: (" << format_double(rec.x) << ", " << format_double(rec.y)
      << ")\n  readers:\n";
  for (std::size_t k = 0; k < rec.readers.size(); ++k) {
    out << "    reader " << k << ": ";
    if (std::isnan(rec.readers[k].rssi_dbm)) {
      out << "undetected";
    } else {
      out << format_double(rec.readers[k].rssi_dbm) << " dBm";
    }
    out << (rec.readers[k].healthy ? "  healthy" : "  QUARANTINED") << "\n";
  }
  out << "  threshold refinement: " << format_double(rec.refinement.initial_threshold_db)
      << " dB -> " << format_double(rec.refinement.final_threshold_db) << " dB in "
      << rec.refinement.steps << " steps";
  if (!rec.refinement.survivors_per_step.empty()) {
    out << "  (survivors:";
    for (const std::uint64_t n : rec.refinement.survivors_per_step) out << " " << n;
    out << ")";
  }
  out << "\n  survivors: " << rec.survivor_count << " regions in "
      << rec.clusters.size() << " clusters\n";
  for (std::size_t i = 0; i < rec.clusters.size(); ++i) {
    out << "    cluster " << i << ": " << rec.clusters[i].size
        << " regions, weight " << format_double(rec.clusters[i].weight) << "\n";
  }
  out << "  stage wall time: elimination "
      << format_double(1e3 * rec.elimination_seconds) << " ms, weighting "
      << format_double(1e3 * rec.weighting_seconds) << " ms\n";
  return out.str();
}

void write_flight_dump(const FlightRecorder& recorder,
                       const std::filesystem::path& path) {
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_flight_dump: cannot open " + path.string());
  }
  out << to_json(recorder) << '\n';
}

}  // namespace vire::obs
