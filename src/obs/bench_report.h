#pragma once
// Machine-readable perf-bench output. Every perf bench writes one
// bench_out/BENCH_<name>.json per run so the throughput trajectory of the
// repo accumulates across commits (schema: name, config, wall_ms,
// throughput, git_rev — plus free-form extra sections).

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

namespace vire::obs {

struct BenchReport {
  std::string name;  ///< bench identifier; file is BENCH_<name>.json
  std::string git_rev = "unknown";
  /// Bench configuration (key, already-formatted value) — emitted as strings.
  std::vector<std::pair<std::string, std::string>> config;
  double wall_ms = 0.0;     ///< total measured wall time of the bench
  double throughput = 0.0;  ///< headline rate in `throughput_unit`
  std::string throughput_unit = "items_per_sec";
  /// Optional named sub-results, e.g. one throughput per worker count.
  std::vector<std::pair<std::string, double>> results;
};

/// Serialises the report to JSON (stable key order, round-trip doubles).
[[nodiscard]] std::string to_json(const BenchReport& report);

/// Writes `<dir>/BENCH_<name>.json`, creating the directory; returns the
/// path written. Throws std::runtime_error on I/O failure.
std::filesystem::path write_bench_report(const BenchReport& report,
                                         const std::filesystem::path& dir = "bench_out");

}  // namespace vire::obs
