#pragma once
// Runtime observability: a thread-safe metrics registry with named counters,
// gauges and fixed-bucket histograms, plus a ScopedTimer RAII helper.
//
// Design constraints (see docs/observability.md):
//  * the hot path is lock-free — counters/gauges/histograms are plain
//    atomics updated with relaxed memory order; the registry mutex is only
//    taken at registration and snapshot time;
//  * instrumentation is a pure side channel: nothing computed from a metric
//    may feed back into localization, so the engine's bit-identical
//    determinism contract holds with metrics enabled at any worker count;
//  * the library depends on the C++ standard library only, so every layer
//    (support, sim, engine, eval) can link it without cycles.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vire::obs {

/// Monotonically increasing event count. Lock-free.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written scalar (plus an atomic-max update for high-water marks).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if `v` is larger (high-water mark).
  void record_max(double v) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (v > current &&
           !value_.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus `le` (less-or-equal) semantics:
/// an observation lands in the first bucket whose upper bound is >= v, or
/// the implicit +Inf bucket past the last bound. Bounds are fixed at
/// registration; observations are lock-free. NaN observations are dropped.
class Histogram {
 public:
  /// @param upper_bounds strictly increasing, finite, non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Finite upper bounds (the +Inf bucket is implicit, index bounds().size()).
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Non-cumulative count of bucket `i`, i in [0, bounds().size()].
  [[nodiscard]] std::uint64_t bucket_value(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Prometheus-style bucket generators.
[[nodiscard]] std::vector<double> linear_buckets(double start, double step, int count);
[[nodiscard]] std::vector<double> exponential_buckets(double start, double factor,
                                                      int count);
/// Default wall-time buckets for ScopedTimer histograms: 100 µs .. 10 s.
[[nodiscard]] std::vector<double> default_latency_buckets_s();

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time copy of one registered metric, for exporters.
struct MetricSnapshot {
  MetricKind kind = MetricKind::kCounter;
  std::string name;    ///< Prometheus family name, e.g. "vire_engine_updates_total"
  std::string labels;  ///< preformatted pairs, e.g. R"(stage="locate")"; may be empty
  std::string help;
  std::uint64_t counter_value = 0;
  double gauge_value = 0.0;
  std::vector<double> bounds;                 ///< histogram only
  std::vector<std::uint64_t> bucket_counts;   ///< size bounds.size() + 1 (+Inf last)
  std::uint64_t hist_count = 0;
  double hist_sum = 0.0;
};

/// Owns metrics and hands out stable references. Registration is idempotent:
/// asking for an existing (name, labels) pair returns the same object, and
/// asking for it with a different kind throws std::invalid_argument.
/// Registration/snapshot lock a mutex; the returned metric objects are
/// lock-free and remain valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& labels = {},
                   const std::string& help = {});
  Gauge& gauge(const std::string& name, const std::string& labels = {},
               const std::string& help = {});
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds,
                       const std::string& labels = {}, const std::string& help = {});

  /// Metrics in registration order (exporters group same-name families).
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  [[nodiscard]] std::size_t size() const;

  /// Read-only lookups by exact (name, labels); nullptr when the pair was
  /// never registered or is registered as a different kind. Handy for tests
  /// and dashboards that assert on specific series without registering them.
  [[nodiscard]] const Counter* find_counter(const std::string& name,
                                            const std::string& labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name,
                                        const std::string& labels = {}) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name,
                                                const std::string& labels = {}) const;

 private:
  struct Entry {
    MetricKind kind;
    std::string name, labels, help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry* find_locked(const std::string& name, const std::string& labels);

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

/// Records the wall time between construction and destruction into a
/// histogram (seconds). Null histogram => no-op, so call sites can be
/// instrumented unconditionally.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) noexcept
      : histogram_(histogram),
        start_(histogram ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->observe(elapsed_seconds());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  [[nodiscard]] double elapsed_seconds() const noexcept {
    if (histogram_ == nullptr) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// Wall-clock helper for manual (non-RAII) stage timing.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace vire::obs
