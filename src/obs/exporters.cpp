#include "obs/exporters.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_set>

namespace vire::obs {

namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

/// "name" or "name{labels}" / "name{labels,extra}".
std::string series(const std::string& name, const std::string& labels,
                   const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return name;
  std::string out = name + "{";
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ",";
  out += extra;
  out += "}";
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// JSON has no NaN/Inf literals; encode non-finite values as null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  return format_double(v);
}

}  // namespace

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string label_pair(const std::string& name, const std::string& value) {
  return name + "=\"" + escape_label_value(value) + "\"";
}

std::string format_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, result.ptr);
}

std::string to_prometheus(const MetricsRegistry& registry) {
  return to_prometheus(registry.snapshot());
}

std::string to_prometheus(const std::vector<MetricSnapshot>& snaps) {
  std::ostringstream out;
  // Prometheus requires all series of one family to be contiguous; emit in
  // first-registration order of each family name.
  std::unordered_set<std::string> done;
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    if (!done.insert(snaps[i].name).second) continue;
    bool typed = false;
    for (std::size_t j = i; j < snaps.size(); ++j) {
      const MetricSnapshot& m = snaps[j];
      if (m.name != snaps[i].name) continue;
      if (!typed) {
        if (!m.help.empty()) out << "# HELP " << m.name << ' ' << m.help << '\n';
        out << "# TYPE " << m.name << ' ' << kind_name(m.kind) << '\n';
        typed = true;
      }
      switch (m.kind) {
        case MetricKind::kCounter:
          out << series(m.name, m.labels) << ' ' << m.counter_value << '\n';
          break;
        case MetricKind::kGauge:
          out << series(m.name, m.labels) << ' ' << format_double(m.gauge_value)
              << '\n';
          break;
        case MetricKind::kHistogram: {
          std::uint64_t cumulative = 0;
          for (std::size_t b = 0; b < m.bucket_counts.size(); ++b) {
            cumulative += m.bucket_counts[b];
            const std::string le =
                b < m.bounds.size() ? format_double(m.bounds[b]) : "+Inf";
            out << series(m.name + "_bucket", m.labels, "le=\"" + le + "\"") << ' '
                << cumulative << '\n';
          }
          out << series(m.name + "_sum", m.labels) << ' ' << format_double(m.hist_sum)
              << '\n';
          out << series(m.name + "_count", m.labels) << ' ' << m.hist_count << '\n';
          break;
        }
      }
    }
  }
  return out.str();
}

std::string to_json(const MetricsRegistry& registry) {
  return to_json(registry.snapshot());
}

std::string to_json(const std::vector<MetricSnapshot>& snaps) {
  std::ostringstream counters, gauges, histograms;
  bool first_counter = true, first_gauge = true, first_histogram = true;
  for (const MetricSnapshot& m : snaps) {
    const std::string id = "\"name\":\"" + json_escape(m.name) + "\",\"labels\":\"" +
                           json_escape(m.labels) + "\"";
    switch (m.kind) {
      case MetricKind::kCounter:
        counters << (first_counter ? "" : ",") << "{" << id
                 << ",\"value\":" << m.counter_value << "}";
        first_counter = false;
        break;
      case MetricKind::kGauge:
        gauges << (first_gauge ? "" : ",") << "{" << id
               << ",\"value\":" << json_number(m.gauge_value) << "}";
        first_gauge = false;
        break;
      case MetricKind::kHistogram: {
        histograms << (first_histogram ? "" : ",") << "{" << id
                   << ",\"count\":" << m.hist_count
                   << ",\"sum\":" << json_number(m.hist_sum) << ",\"buckets\":[";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < m.bucket_counts.size(); ++b) {
          cumulative += m.bucket_counts[b];
          const std::string le =
              b < m.bounds.size() ? format_double(m.bounds[b]) : "+Inf";
          histograms << (b == 0 ? "" : ",") << "{\"le\":\"" << le
                     << "\",\"count\":" << cumulative << "}";
        }
        histograms << "]}";
        first_histogram = false;
        break;
      }
    }
  }
  std::ostringstream out;
  out << "{\"counters\":[" << counters.str() << "],\"gauges\":[" << gauges.str()
      << "],\"histograms\":[" << histograms.str() << "]}";
  return out.str();
}

namespace {

void write_text(const std::string& text, const std::filesystem::path& path,
                const char* what) {
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error(std::string(what) + ": cannot open " + path.string());
  }
  out << text << '\n';
}

}  // namespace

void write_json_snapshot(const MetricsRegistry& registry,
                         const std::filesystem::path& path) {
  write_text(to_json(registry), path, "write_json_snapshot");
}

void write_prometheus_snapshot(const MetricsRegistry& registry,
                               const std::filesystem::path& path) {
  write_text(to_prometheus(registry), path, "write_prometheus_snapshot");
}

std::string relabel_prometheus(const std::string& text,
                               const std::string& label) {
  std::string out;
  out.reserve(text.size() + 64 * (text.size() / 64 + 1));
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    const bool had_newline = eol != std::string::npos;
    if (!had_newline) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    const std::size_t space = line.find(' ');
    if (line.empty() || line.front() == '#' || space == std::string_view::npos) {
      out.append(line);  // comment/blank/unparseable: pass through untouched
    } else {
      const std::size_t brace = line.find('{');
      if (brace != std::string_view::npos && brace < space) {
        out.append(line.substr(0, brace + 1));
        out.append(label);
        if (brace + 1 < line.size() && line[brace + 1] != '}') out.push_back(',');
        out.append(line.substr(brace + 1));
      } else {
        out.append(line.substr(0, space));
        out.push_back('{');
        out.append(label);
        out.push_back('}');
        out.append(line.substr(space));
      }
    }
    if (had_newline) out.push_back('\n');
    pos = eol + 1;
    if (!had_newline) break;
  }
  return out;
}

}  // namespace vire::obs
