#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vire::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: needs at least one bucket bound");
  }
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i])) {
      throw std::invalid_argument("Histogram: bounds must be finite (+Inf is implicit)");
    }
    if (i > 0 && bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram: bounds must be strictly increasing");
    }
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  if (std::isnan(v)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<double> linear_buckets(double start, double step, int count) {
  if (count < 1 || step <= 0.0) {
    throw std::invalid_argument("linear_buckets: count >= 1 and step > 0 required");
  }
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) bounds.push_back(start + step * i);
  return bounds;
}

std::vector<double> exponential_buckets(double start, double factor, int count) {
  if (count < 1 || start <= 0.0 || factor <= 1.0) {
    throw std::invalid_argument(
        "exponential_buckets: count >= 1, start > 0, factor > 1 required");
  }
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double v = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

std::vector<double> default_latency_buckets_s() {
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
          2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0};
}

MetricsRegistry::Entry* MetricsRegistry::find_locked(const std::string& name,
                                                     const std::string& labels) {
  for (auto& entry : entries_) {
    if (entry.name == name && entry.labels == labels) return &entry;
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& labels,
                                  const std::string& help) {
  std::lock_guard lock(mutex_);
  if (Entry* existing = find_locked(name, labels)) {
    if (existing->kind != MetricKind::kCounter) {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' already registered with a different kind");
    }
    return *existing->counter;
  }
  Entry entry{MetricKind::kCounter, name, labels, help,
              std::make_unique<Counter>(), nullptr, nullptr};
  entries_.push_back(std::move(entry));
  return *entries_.back().counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& labels,
                              const std::string& help) {
  std::lock_guard lock(mutex_);
  if (Entry* existing = find_locked(name, labels)) {
    if (existing->kind != MetricKind::kGauge) {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' already registered with a different kind");
    }
    return *existing->gauge;
  }
  Entry entry{MetricKind::kGauge, name, labels, help,
              nullptr, std::make_unique<Gauge>(), nullptr};
  entries_.push_back(std::move(entry));
  return *entries_.back().gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds,
                                      const std::string& labels,
                                      const std::string& help) {
  std::lock_guard lock(mutex_);
  if (Entry* existing = find_locked(name, labels)) {
    if (existing->kind != MetricKind::kHistogram) {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' already registered with a different kind");
    }
    return *existing->histogram;
  }
  Entry entry{MetricKind::kHistogram, name, labels, help, nullptr, nullptr,
              std::make_unique<Histogram>(std::move(upper_bounds))};
  entries_.push_back(std::move(entry));
  return *entries_.back().histogram;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricSnapshot snap;
    snap.kind = entry.kind;
    snap.name = entry.name;
    snap.labels = entry.labels;
    snap.help = entry.help;
    switch (entry.kind) {
      case MetricKind::kCounter:
        snap.counter_value = entry.counter->value();
        break;
      case MetricKind::kGauge:
        snap.gauge_value = entry.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        snap.bounds = h.bounds();
        snap.bucket_counts.reserve(snap.bounds.size() + 1);
        for (std::size_t i = 0; i <= snap.bounds.size(); ++i) {
          snap.bucket_counts.push_back(h.bucket_value(i));
        }
        snap.hist_count = h.count();
        snap.hist_sum = h.sum();
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

const Counter* MetricsRegistry::find_counter(const std::string& name,
                                             const std::string& labels) const {
  std::lock_guard lock(mutex_);
  auto* self = const_cast<MetricsRegistry*>(this);
  const Entry* entry = self->find_locked(name, labels);
  return entry != nullptr && entry->kind == MetricKind::kCounter
             ? entry->counter.get()
             : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name,
                                         const std::string& labels) const {
  std::lock_guard lock(mutex_);
  auto* self = const_cast<MetricsRegistry*>(this);
  const Entry* entry = self->find_locked(name, labels);
  return entry != nullptr && entry->kind == MetricKind::kGauge ? entry->gauge.get()
                                                               : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name,
                                                 const std::string& labels) const {
  std::lock_guard lock(mutex_);
  auto* self = const_cast<MetricsRegistry*>(this);
  const Entry* entry = self->find_locked(name, labels);
  return entry != nullptr && entry->kind == MetricKind::kHistogram
             ? entry->histogram.get()
             : nullptr;
}

}  // namespace vire::obs
