#pragma once
// Flight recorder: full provenance for the last N localization fixes, so a
// bad fix can be *explained* after the fact — which readers contributed and
// whether they were healthy, how the adaptive threshold refinement walked
// down, which clusters survived with what weight, and which rung of the
// degradation ladder produced the answer. The aggregate metrics
// (obs/metrics.h) say *that* quality dropped; the recorder says *why this
// fix*.
//
// Concurrency contract: the ring is lock-free in the Perfetto sense — a
// fixed array of slots published through one atomic sequence counter, no
// mutex, no allocation on overwrite. It is single-writer by design: the
// engine records in its serial merge phase (the same rule its metrics
// follow, preserving worker-count bit-identity), and snapshots are taken
// from the pipeline thread between updates. Cross-thread snapshotting while
// a record() is in flight is not supported.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

namespace vire::obs {

/// One reader's contribution to a fix: the (health-masked) RSSI it reported
/// for the tag and the health monitor's verdict at that update.
struct ReaderObservation {
  double rssi_dbm = 0.0;  ///< NaN = undetected or quarantined-and-masked
  bool healthy = true;
};

/// The adaptive threshold-reduction walk of one locate (paper Sec. 4.3).
struct RefinementPath {
  double initial_threshold_db = 0.0;
  double final_threshold_db = 0.0;
  int steps = 0;
  /// Surviving-region count after the initial pass, then after each
  /// accepted reduction step (size == steps + 1 when a VIRE result exists).
  std::vector<std::uint64_t> survivors_per_step;
};

/// One surviving 4-connected cluster: its region count and the summed
/// normalised weight its regions contributed to the centroid.
struct ClusterInfo {
  std::uint64_t size = 0;
  double weight = 0.0;
};

/// Full provenance of one fix.
struct FixRecord {
  std::uint64_t sequence = 0;  ///< monotone per engine, across updates
  double time = 0.0;           ///< engine update time (sim seconds)
  std::uint32_t tag = 0;
  std::string name;
  std::string quality;   ///< "ok" / "degraded" / "hold" / "invalid"
  std::string decision;  ///< which ladder rung answered: "vire" / "fallback" / "hold" / "none"
  bool valid = false;
  bool used_fallback = false;
  double age_s = 0.0;  ///< staleness of a held fix
  double x = 0.0, y = 0.0;
  std::vector<ReaderObservation> readers;
  RefinementPath refinement;
  std::uint64_t survivor_count = 0;
  std::vector<ClusterInfo> clusters;
  double elimination_seconds = 0.0;
  double weighting_seconds = 0.0;
};

class FlightRecorder {
 public:
  /// @param capacity fixes retained; 0 disables recording entirely
  ///        (record() becomes a no-op).
  explicit FlightRecorder(std::size_t capacity = 256);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one record, overwriting the oldest when full. Single-writer —
  /// see the file comment.
  void record(FixRecord rec);

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t size() const noexcept;
  /// Records ever written (including overwritten ones).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Retained records, oldest first.
  [[nodiscard]] std::vector<FixRecord> snapshot() const;
  /// Most recent retained record for `tag` (nullopt if none).
  [[nodiscard]] std::optional<FixRecord> last_for_tag(std::uint32_t tag) const;
  void clear();

 private:
  std::vector<FixRecord> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// JSON document for one record (all provenance fields, round-trip doubles;
/// NaN RSSI encodes as null).
[[nodiscard]] std::string to_json(const FixRecord& rec);
/// {"records":[...]} over the retained records, oldest first.
[[nodiscard]] std::string to_json(const FlightRecorder& recorder);
/// Human-readable multi-line rendering (the `explain_fix` output).
[[nodiscard]] std::string to_text(const FixRecord& rec);

/// Writes to_json(recorder) to `path`, creating parent directories. Throws
/// std::runtime_error on I/O failure.
void write_flight_dump(const FlightRecorder& recorder,
                       const std::filesystem::path& path);

}  // namespace vire::obs
