#include "obs/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vire::obs {

namespace {

/// Process-wide small thread ids: stable per OS thread, dense enough for a
/// readable trace. Shared across tracers so one thread keeps one id.
std::uint32_t current_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Plain decimal with enough precision for microsecond timestamps; never
/// scientific (Chrome's JSON parser accepts it, but humans diff traces).
std::string fixed_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

Tracer::Tracer(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      ring_(std::max<std::size_t>(1, capacity)) {}

std::uint32_t Tracer::thread_id() { return current_thread_id(); }

void Tracer::push(TraceEvent event) {
  std::lock_guard lock(mutex_);
  ring_[head_ % ring_.size()] = std::move(event);
  ++head_;
}

void Tracer::complete(std::string name, double start_us, double end_us,
                      std::string args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.ph = 'X';
  event.ts_us = start_us;
  event.dur_us = std::max(0.0, end_us - start_us);
  event.tid = current_thread_id();
  event.args = std::move(args);
  push(std::move(event));
}

void Tracer::instant(std::string name, std::string args, char scope) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.ph = 'i';
  event.scope = scope;
  event.ts_us = now_us();
  event.tid = current_thread_id();
  event.args = std::move(args);
  push(std::move(event));
}

void Tracer::set_thread_name(std::string name) {
  const std::uint32_t tid = current_thread_id();
  std::lock_guard lock(mutex_);
  for (auto& [known_tid, known_name] : thread_names_) {
    if (known_tid == tid) {
      known_name = std::move(name);
      return;
    }
  }
  thread_names_.emplace_back(tid, std::move(name));
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard lock(mutex_);
  const std::size_t count = std::min<std::uint64_t>(head_, ring_.size());
  std::vector<TraceEvent> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(ring_[(head_ - count + i) % ring_.size()]);
  }
  return out;
}

TraceDump Tracer::dump(std::size_t max_events) const {
  TraceDump out;
  out.events = snapshot();
  if (max_events != 0 && out.events.size() > max_events) {
    out.events.erase(out.events.begin(),
                     out.events.end() - static_cast<std::ptrdiff_t>(max_events));
  }
  {
    std::lock_guard lock(mutex_);
    out.thread_names = thread_names_;
  }
  // Stamp the clock last so now_us covers the snapshot work itself: every
  // exported timestamp is <= now_us, which rebasing consumers rely on.
  out.now_us = now_us();
  return out;
}

std::uint64_t Tracer::recorded() const noexcept {
  std::lock_guard lock(mutex_);
  return head_;
}

std::uint64_t Tracer::dropped() const noexcept {
  std::lock_guard lock(mutex_);
  return head_ > ring_.size() ? head_ - ring_.size() : 0;
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  head_ = 0;
}

std::string Tracer::to_chrome_json() const {
  std::vector<std::pair<std::uint32_t, std::string>> names;
  {
    std::lock_guard lock(mutex_);
    names = thread_names_;
  }
  const std::vector<TraceEvent> events = snapshot();

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit_prefix = [&] {
    if (!first) out << ",";
    first = false;
  };

  // Metadata first: process name, then per-thread names. Metadata events
  // carry ts/tid too so consumers can assert a uniform schema.
  emit_prefix();
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"ts\":0,\"args\":{\"name\":\"vire\"}}";
  for (const auto& [tid, name] : names) {
    emit_prefix();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"ts\":0,\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }

  for (const TraceEvent& e : events) {
    emit_prefix();
    out << "{\"name\":\"" << json_escape(e.name) << "\",\"ph\":\"" << e.ph
        << "\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":" << fixed_number(e.ts_us);
    if (e.ph == 'X') out << ",\"dur\":" << fixed_number(e.dur_us);
    if (e.ph == 'i') out << ",\"s\":\"" << e.scope << "\"";
    if (!e.args.empty()) out << ",\"args\":" << e.args;
    out << "}";
  }
  out << "]}";
  return out.str();
}

void rebase(TraceDump& dump, double offset_us) {
  for (TraceEvent& e : dump.events) e.ts_us -= offset_us;
  dump.now_us -= offset_us;
}

std::string fleet_chrome_json(const std::vector<FleetProcess>& processes) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit_prefix = [&] {
    if (!first) out << ",";
    first = false;
  };

  for (const FleetProcess& proc : processes) {
    emit_prefix();
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << proc.pid
        << ",\"tid\":0,\"ts\":0,\"args\":{\"name\":\"" << json_escape(proc.name)
        << "\"}}";
    for (const auto& [tid, name] : proc.dump.thread_names) {
      emit_prefix();
      out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << proc.pid
          << ",\"tid\":" << tid << ",\"ts\":0,\"args\":{\"name\":\""
          << json_escape(name) << "\"}}";
    }
  }

  for (const FleetProcess& proc : processes) {
    for (const TraceEvent& e : proc.dump.events) {
      emit_prefix();
      out << "{\"name\":\"" << json_escape(e.name) << "\",\"ph\":\"" << e.ph
          << "\",\"pid\":" << proc.pid << ",\"tid\":" << e.tid
          << ",\"ts\":" << fixed_number(e.ts_us);
      if (e.ph == 'X') out << ",\"dur\":" << fixed_number(e.dur_us);
      if (e.ph == 'i') out << ",\"s\":\"" << e.scope << "\"";
      if (!e.args.empty()) out << ",\"args\":" << e.args;
      out << "}";
    }
  }
  out << "]}";
  return out.str();
}

void Tracer::write_chrome_json(const std::filesystem::path& path) const {
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("Tracer::write_chrome_json: cannot open " +
                             path.string());
  }
  out << to_chrome_json() << '\n';
}

}  // namespace vire::obs
