#pragma once
// Span-based pipeline tracer emitting Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing).
//
// Design constraints (see docs/observability.md):
//  * disabled tracing costs ~zero on the hot path: every recording entry
//    point starts with one relaxed atomic-bool load and returns — no locks,
//    no allocation, no clock read;
//  * enabled tracing buffers into a fixed-capacity ring (oldest events are
//    overwritten, never reallocated), guarded by a mutex — worker threads
//    emit concurrently, and event rates are span-per-stage/task, not
//    per-sample, so the mutex is uncontended in practice;
//  * tracing is a pure side channel: timestamps are wall clock and never
//    feed back into localization, so the engine's bit-identical determinism
//    contract holds with tracing on at any worker count (covered by
//    tests/engine/trace_pipeline_test.cpp).
//
// Timestamps are microseconds since the tracer's construction (steady
// clock). Thread ids are small stable integers assigned per OS thread on
// first use; set_thread_name() attaches Perfetto thread labels.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace vire::obs {

/// Cross-process trace identity stamped on wire frames (service/wire.h): a
/// shard that adopts the context records its spans under the supervisor's
/// batch span. All-zero means "no context" and is always safe to pass.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
};

/// One recorded event, already reduced to Chrome trace-event fields.
struct TraceEvent {
  std::string name;
  char ph = 'X';        ///< 'X' complete, 'i' instant
  char scope = 't';     ///< instant events only: 't' thread, 'p' process, 'g' global
  double ts_us = 0.0;   ///< microseconds since tracer epoch
  double dur_us = 0.0;  ///< complete events only
  std::uint32_t tid = 0;
  std::string args;     ///< preformatted JSON object (e.g. R"({"tag":3})"), may be empty
};

class Tracer {
 public:
  /// @param capacity ring size in events (>= 1); the last `capacity` events
  ///        are retained, older ones are overwritten and counted as dropped.
  explicit Tracer(std::size_t capacity = 65536);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Tracing starts disabled; recording entry points are no-ops until this
  /// is flipped on (a relaxed atomic load is the entire disabled cost).
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since tracer construction (steady clock), plus any
  /// configured skew. Works whether or not tracing is enabled.
  [[nodiscard]] double now_us() const noexcept {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count() +
           skew_us_.load(std::memory_order_relaxed);
  }

  /// Test seam for fleet clock alignment: shifts this tracer's clock by a
  /// constant, as if the process were started on a machine whose monotonic
  /// clock reads `skew_us` ahead. Span timestamps and the clock reported in
  /// dump()/heartbeats shift together, so NTP-style offset estimation
  /// against a skewed tracer must cancel the skew exactly.
  void set_clock_skew_us(double skew_us) noexcept {
    skew_us_.store(skew_us, std::memory_order_relaxed);
  }

  /// Records a complete ('X') event spanning [start_us, end_us].
  void complete(std::string name, double start_us, double end_us,
                std::string args = {});
  /// Records an instant ('i') event at the current time. `scope` 'g' draws
  /// a full-height marker line in Perfetto — used for fault injections and
  /// quality transitions so cause and effect line up visually.
  void instant(std::string name, std::string args = {}, char scope = 't');

  /// Stable small id of the calling thread (assigned on first use).
  [[nodiscard]] std::uint32_t thread_id();
  /// Names the calling thread in the trace (Perfetto thread_name metadata).
  void set_thread_name(std::string name);

  /// Events currently retained, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  /// Portable export of the ring for cross-process aggregation: the most
  /// recent `max_events` events (0 = all retained), the thread-name table,
  /// and this clock's current reading (so the receiver can rebase).
  [[nodiscard]] struct TraceDump dump(std::size_t max_events = 0) const;
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events recorded since construction (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const noexcept;
  /// Events lost to ring overwrite.
  [[nodiscard]] std::uint64_t dropped() const noexcept;
  void clear();

  /// Renders the retained events as a Chrome trace-event JSON document
  /// ({"displayTimeUnit":"ms","traceEvents":[...]}), including process and
  /// thread-name metadata events.
  [[nodiscard]] std::string to_chrome_json() const;
  /// Writes to_chrome_json() to `path`, creating parent directories.
  /// Throws std::runtime_error on I/O failure.
  void write_chrome_json(const std::filesystem::path& path) const;

 private:
  void push(TraceEvent event);

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::atomic<double> skew_us_{0.0};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;       ///< fixed capacity, never reallocated
  std::uint64_t head_ = 0;             ///< total events pushed (next slot = head_ % capacity)
  std::vector<std::pair<std::uint32_t, std::string>> thread_names_;
};

/// Portable snapshot of a tracer's ring, suitable for shipping across the
/// wire (service/wire.h owns the binary codec — obs stays persist-free).
struct TraceDump {
  /// The source clock's now_us() at dump time; lets the receiver rebase
  /// event timestamps onto its own timeline via a clock-offset estimate.
  double now_us = 0.0;
  std::vector<TraceEvent> events;
  std::vector<std::pair<std::uint32_t, std::string>> thread_names;
};

/// Shifts every event timestamp (and the dump clock) by -offset_us, mapping
/// a remote dump onto the local timeline given offset_us = remote - local.
void rebase(TraceDump& dump, double offset_us);

/// One process's contribution to a merged fleet trace.
struct FleetProcess {
  std::uint32_t pid = 1;  ///< Perfetto process id (unique per fleet member)
  std::string name;       ///< process_name metadata, e.g. "vire-shardd-0"
  TraceDump dump;         ///< already rebased onto the merged timeline
};

/// Renders the processes as one Chrome trace-event JSON document: per-process
/// process_name metadata, per-(pid,tid) thread_name metadata, then every
/// event under its owning pid. Same schema as Tracer::to_chrome_json().
[[nodiscard]] std::string fleet_chrome_json(
    const std::vector<FleetProcess>& processes);

/// NTP-style clock-offset estimator for one remote peer. Each observation is
/// a request/response round trip: local send time t0, local receive time t1,
/// and the peer clock read between them. The midpoint estimate
/// peer - (t0 + t1) / 2 is exact for symmetric network delay and off by at
/// most half the round trip otherwise; samples are EWMA-smoothed so a single
/// delayed heartbeat cannot yank the fleet timeline around.
class ClockOffsetEstimator {
 public:
  /// @param alpha smoothing weight of the newest sample in (0, 1].
  explicit ClockOffsetEstimator(double alpha = 0.25) : alpha_(alpha) {}

  void observe(double t0_us, double t1_us, double peer_now_us) {
    const double sample = peer_now_us - (t0_us + t1_us) / 2.0;
    offset_us_ = samples_ == 0 ? sample
                               : (1.0 - alpha_) * offset_us_ + alpha_ * sample;
    last_rtt_us_ = t1_us - t0_us;
    ++samples_;
  }

  /// Forget everything (the peer restarted, so its clock epoch moved).
  void reset() noexcept {
    offset_us_ = 0.0;
    last_rtt_us_ = 0.0;
    samples_ = 0;
  }

  [[nodiscard]] bool valid() const noexcept { return samples_ > 0; }
  /// Estimated peer_clock - local_clock in microseconds (0 until valid()).
  [[nodiscard]] double offset_us() const noexcept { return offset_us_; }
  [[nodiscard]] double last_rtt_us() const noexcept { return last_rtt_us_; }
  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }

 private:
  double alpha_;
  double offset_us_ = 0.0;
  double last_rtt_us_ = 0.0;
  std::uint64_t samples_ = 0;
};

/// RAII span: records one complete event from construction to destruction.
/// Null or disabled tracer => fully inert (no clock read).
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* name, std::string args = {})
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(name),
        args_(std::move(args)),
        start_us_(tracer_ != nullptr ? tracer_->now_us() : 0.0) {}
  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->complete(name_, start_us_, tracer_->now_us(), std::move(args_));
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  std::string args_;
  double start_us_;
};

}  // namespace vire::obs
