#pragma once
// Span-based pipeline tracer emitting Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing).
//
// Design constraints (see docs/observability.md):
//  * disabled tracing costs ~zero on the hot path: every recording entry
//    point starts with one relaxed atomic-bool load and returns — no locks,
//    no allocation, no clock read;
//  * enabled tracing buffers into a fixed-capacity ring (oldest events are
//    overwritten, never reallocated), guarded by a mutex — worker threads
//    emit concurrently, and event rates are span-per-stage/task, not
//    per-sample, so the mutex is uncontended in practice;
//  * tracing is a pure side channel: timestamps are wall clock and never
//    feed back into localization, so the engine's bit-identical determinism
//    contract holds with tracing on at any worker count (covered by
//    tests/engine/trace_pipeline_test.cpp).
//
// Timestamps are microseconds since the tracer's construction (steady
// clock). Thread ids are small stable integers assigned per OS thread on
// first use; set_thread_name() attaches Perfetto thread labels.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace vire::obs {

/// One recorded event, already reduced to Chrome trace-event fields.
struct TraceEvent {
  std::string name;
  char ph = 'X';        ///< 'X' complete, 'i' instant
  char scope = 't';     ///< instant events only: 't' thread, 'p' process, 'g' global
  double ts_us = 0.0;   ///< microseconds since tracer epoch
  double dur_us = 0.0;  ///< complete events only
  std::uint32_t tid = 0;
  std::string args;     ///< preformatted JSON object (e.g. R"({"tag":3})"), may be empty
};

class Tracer {
 public:
  /// @param capacity ring size in events (>= 1); the last `capacity` events
  ///        are retained, older ones are overwritten and counted as dropped.
  explicit Tracer(std::size_t capacity = 65536);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Tracing starts disabled; recording entry points are no-ops until this
  /// is flipped on (a relaxed atomic load is the entire disabled cost).
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since tracer construction (steady clock).
  [[nodiscard]] double now_us() const noexcept {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Records a complete ('X') event spanning [start_us, end_us].
  void complete(std::string name, double start_us, double end_us,
                std::string args = {});
  /// Records an instant ('i') event at the current time. `scope` 'g' draws
  /// a full-height marker line in Perfetto — used for fault injections and
  /// quality transitions so cause and effect line up visually.
  void instant(std::string name, std::string args = {}, char scope = 't');

  /// Stable small id of the calling thread (assigned on first use).
  [[nodiscard]] std::uint32_t thread_id();
  /// Names the calling thread in the trace (Perfetto thread_name metadata).
  void set_thread_name(std::string name);

  /// Events currently retained, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events recorded since construction (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const noexcept;
  /// Events lost to ring overwrite.
  [[nodiscard]] std::uint64_t dropped() const noexcept;
  void clear();

  /// Renders the retained events as a Chrome trace-event JSON document
  /// ({"displayTimeUnit":"ms","traceEvents":[...]}), including process and
  /// thread-name metadata events.
  [[nodiscard]] std::string to_chrome_json() const;
  /// Writes to_chrome_json() to `path`, creating parent directories.
  /// Throws std::runtime_error on I/O failure.
  void write_chrome_json(const std::filesystem::path& path) const;

 private:
  void push(TraceEvent event);

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;       ///< fixed capacity, never reallocated
  std::uint64_t head_ = 0;             ///< total events pushed (next slot = head_ % capacity)
  std::vector<std::pair<std::uint32_t, std::string>> thread_names_;
};

/// RAII span: records one complete event from construction to destruction.
/// Null or disabled tracer => fully inert (no clock read).
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* name, std::string args = {})
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(name),
        args_(std::move(args)),
        start_us_(tracer_ != nullptr ? tracer_->now_us() : 0.0) {}
  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->complete(name_, start_us_, tracer_->now_us(), std::move(args_));
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  std::string args_;
  double start_us_;
};

}  // namespace vire::obs
