#include "obs/bench_report.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/exporters.h"

namespace vire::obs {

namespace {

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string number(double v) {
  return std::isfinite(v) ? format_double(v) : "null";
}

}  // namespace

std::string to_json(const BenchReport& report) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"name\": " << quoted(report.name) << ",\n";
  out << "  \"git_rev\": " << quoted(report.git_rev) << ",\n";
  out << "  \"config\": {";
  for (std::size_t i = 0; i < report.config.size(); ++i) {
    out << (i == 0 ? "" : ", ") << quoted(report.config[i].first) << ": "
        << quoted(report.config[i].second);
  }
  out << "},\n";
  out << "  \"wall_ms\": " << number(report.wall_ms) << ",\n";
  out << "  \"throughput\": " << number(report.throughput) << ",\n";
  out << "  \"throughput_unit\": " << quoted(report.throughput_unit) << ",\n";
  out << "  \"results\": {";
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    out << (i == 0 ? "" : ", ") << quoted(report.results[i].first) << ": "
        << number(report.results[i].second);
  }
  out << "}\n";
  out << "}";
  return out.str();
}

std::filesystem::path write_bench_report(const BenchReport& report,
                                         const std::filesystem::path& dir) {
  if (report.name.empty()) {
    throw std::invalid_argument("write_bench_report: report needs a name");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::filesystem::path path = dir / ("BENCH_" + report.name + ".json");
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_bench_report: cannot open " + path.string());
  }
  out << to_json(report) << '\n';
  return path;
}

}  // namespace vire::obs
