#pragma once
// Physical deployment of the RFID infrastructure: the regular grid of real
// reference tags and the reader placements. The paper's testbed (Sec. 5):
// 16 reference tags in a 4x4 grid with 1 m pitch, 4 readers in the corners
// of the sensing area, each 1 m from its nearest edge tag.

#include <string_view>
#include <vector>

#include "geom/grid.h"
#include "geom/polygon.h"
#include "geom/vec2.h"

namespace vire::env {

/// Where the readers sit relative to the reference grid — the paper's
/// future-work question about "the placement of these readers to the
/// performance of VIRE" (studied by bench_study_placement).
enum class ReaderPlacement {
  kCorners,             ///< 4 corner readers (the paper's testbed)
  kEdgeMidpoints,       ///< 4 readers at the edge midpoints
  kCornersAndMidpoints, ///< 8 readers (corners + midpoints)
  kOneSided,            ///< 4 readers along one edge (a bad layout, on
                        ///< purpose: collinear anchors)
};

[[nodiscard]] std::string_view to_string(ReaderPlacement p) noexcept;

struct DeploymentConfig {
  geom::Vec2 origin{0.0, 0.0};  ///< position of reference tag (0,0)
  double spacing_m = 1.0;       ///< pitch between adjacent reference tags
  int cols = 4;                 ///< reference tags per row
  int rows = 4;                 ///< reference tags per column
  /// Readers sit this far beyond the nearest edge tag.
  double reader_offset_m = 1.0;
  /// Number of readers: 4 or 8. Kept for convenience: 4 selects
  /// `placement`, 8 forces kCornersAndMidpoints.
  int readers = 4;
  /// Placement of the (4) readers; ignored when readers == 8.
  ReaderPlacement placement = ReaderPlacement::kCorners;
};

/// Immutable deployment: tag grid + reader positions.
class Deployment {
 public:
  explicit Deployment(const DeploymentConfig& config);

  /// The paper's 4x4 / 1 m / 4-reader testbed anchored at the origin.
  [[nodiscard]] static Deployment paper_testbed();

  [[nodiscard]] const DeploymentConfig& config() const noexcept { return config_; }
  [[nodiscard]] const geom::RegularGrid& reference_grid() const noexcept {
    return grid_;
  }

  /// Reference-tag positions, row-major from the grid origin.
  [[nodiscard]] const std::vector<geom::Vec2>& reference_positions() const noexcept {
    return reference_positions_;
  }
  [[nodiscard]] const std::vector<geom::Vec2>& reader_positions() const noexcept {
    return reader_positions_;
  }
  [[nodiscard]] int reference_count() const noexcept {
    return static_cast<int>(reference_positions_.size());
  }
  [[nodiscard]] int reader_count() const noexcept {
    return static_cast<int>(reader_positions_.size());
  }

  /// The sensing area: bounding box of the reference grid.
  [[nodiscard]] geom::Aabb sensing_area() const noexcept;
  /// Sensing area plus readers (for channel field sizing).
  [[nodiscard]] geom::Aabb full_extent() const noexcept;

  /// True if p lies strictly inside the reference-tag perimeter by at least
  /// `margin` metres — the paper's "non-boundary" classification.
  [[nodiscard]] bool is_interior(geom::Vec2 p, double margin = 0.25) const noexcept;

 private:
  DeploymentConfig config_;
  geom::RegularGrid grid_;
  std::vector<geom::Vec2> reference_positions_;
  std::vector<geom::Vec2> reader_positions_;
};

}  // namespace vire::env
