#pragma once
// Indoor environment description: named walls and obstacles with materials,
// plus the channel parameters that characterise the locale. The three
// presets replicate the paper's Fig. 1 test locales:
//   Env1 — semi-open area: no surrounding concrete walls, mild clutter;
//   Env2 — spacious closed area: large room, walls far from the sensing
//          area, few metallic objects;
//   Env3 — typical small office: close walls, many desks/cabinets (metal),
//          severe multipath.

#include <string>
#include <vector>

#include "env/material.h"
#include "geom/polygon.h"
#include "geom/segment.h"
#include "rf/channel.h"
#include "rf/multipath.h"

namespace vire::env {

/// A planar RF-relevant surface in the room.
struct Wall {
  geom::Segment segment;
  Material material = Material::kDrywall;
  std::string label;
};

/// A rectangular obstacle (desk, cabinet, pillar); contributes its four
/// faces as surfaces.
struct Obstacle {
  geom::Aabb footprint;
  Material material = Material::kWood;
  std::string label;
};

/// Complete locale description.
class Environment {
 public:
  Environment(std::string name, geom::Aabb extent);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const geom::Aabb& extent() const noexcept { return extent_; }

  void add_wall(Wall wall) { walls_.push_back(std::move(wall)); }
  void add_obstacle(Obstacle obstacle) { obstacles_.push_back(std::move(obstacle)); }

  /// Adds the four walls of a rectangular room outline.
  void add_room_outline(const geom::Aabb& room, Material material,
                        const std::string& label_prefix = "wall");

  [[nodiscard]] const std::vector<Wall>& walls() const noexcept { return walls_; }
  [[nodiscard]] const std::vector<Obstacle>& obstacles() const noexcept {
    return obstacles_;
  }

  /// Flattens walls + obstacle faces into ray-tracer surfaces.
  [[nodiscard]] std::vector<rf::Surface> surfaces() const;

  /// Channel parameters for this locale (exponent, shadowing, noise...).
  rf::ChannelConfig channel_config;

 private:
  std::string name_;
  geom::Aabb extent_;
  std::vector<Wall> walls_;
  std::vector<Obstacle> obstacles_;
};

/// Identifier for the paper's three experimental locales.
enum class PaperEnvironment { kEnv1SemiOpen, kEnv2Spacious, kEnv3Office };

[[nodiscard]] std::string_view name(PaperEnvironment e) noexcept;

/// Builds one of the paper's locales. The sensing area (reference grid) is
/// assumed to occupy [0,3]x[0,3] metres; rooms are positioned around it the
/// way Fig. 1 sketches them.
[[nodiscard]] Environment make_paper_environment(PaperEnvironment which);

/// All three, in paper order.
[[nodiscard]] std::vector<PaperEnvironment> all_paper_environments();

}  // namespace vire::env
