#pragma once
// Building materials and their RF properties at ~433 MHz.
// Reflection coefficients / through-loss values are representative of the
// UHF measurement literature; they drive the relative multipath severity of
// the three paper environments, which is what matters for reproduction.

#include <string_view>

namespace vire::env {

enum class Material {
  kDrywall,
  kConcrete,
  kBrick,
  kGlass,
  kWood,
  kMetal,
  kHumanBody,
};

struct MaterialProperties {
  /// Field reflection coefficient magnitude at grazing-to-normal incidence,
  /// averaged (we do not model incidence angle).
  double reflection_coeff;
  /// Power loss (dB) when a ray passes through the material.
  double transmission_loss_db;
  std::string_view name;
};

[[nodiscard]] constexpr MaterialProperties properties(Material m) noexcept {
  switch (m) {
    case Material::kDrywall:   return {0.28, 3.0, "drywall"};
    case Material::kConcrete:  return {0.55, 10.0, "concrete"};
    case Material::kBrick:     return {0.45, 8.0, "brick"};
    case Material::kGlass:     return {0.35, 2.0, "glass"};
    case Material::kWood:      return {0.25, 3.5, "wood"};
    case Material::kMetal:     return {0.92, 30.0, "metal"};
    case Material::kHumanBody: return {0.35, 8.0, "human body"};
  }
  return {0.3, 5.0, "unknown"};
}

[[nodiscard]] constexpr std::string_view name(Material m) noexcept {
  return properties(m).name;
}

}  // namespace vire::env
