#include "env/environment.h"

#include <stdexcept>

namespace vire::env {

Environment::Environment(std::string name, geom::Aabb extent)
    : name_(std::move(name)), extent_(extent) {}

void Environment::add_room_outline(const geom::Aabb& room, Material material,
                                   const std::string& label_prefix) {
  static constexpr const char* kSides[4] = {"south", "east", "north", "west"};
  const auto edges = room.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    add_wall({edges[i], material, label_prefix + "-" + kSides[i]});
  }
}

std::vector<rf::Surface> Environment::surfaces() const {
  std::vector<rf::Surface> out;
  out.reserve(walls_.size() + obstacles_.size() * 4);
  for (const auto& wall : walls_) {
    const auto props = properties(wall.material);
    out.push_back({wall.segment, props.reflection_coeff, props.transmission_loss_db});
  }
  for (const auto& obstacle : obstacles_) {
    const auto props = properties(obstacle.material);
    for (const auto& edge : obstacle.footprint.edges()) {
      out.push_back({edge, props.reflection_coeff, props.transmission_loss_db});
    }
  }
  return out;
}

std::string_view name(PaperEnvironment e) noexcept {
  switch (e) {
    case PaperEnvironment::kEnv1SemiOpen: return "Env1-Semi-opened area";
    case PaperEnvironment::kEnv2Spacious: return "Env2-Spacious area";
    case PaperEnvironment::kEnv3Office: return "Env3-Closed area";
  }
  return "unknown";
}

std::vector<PaperEnvironment> all_paper_environments() {
  return {PaperEnvironment::kEnv1SemiOpen, PaperEnvironment::kEnv2Spacious,
          PaperEnvironment::kEnv3Office};
}

namespace {

// The sensing area (4x4 reference-tag grid, 1 m pitch) occupies [0,3]^2.
// Readers sit about 1 m outside the corner tags, so environments must extend
// at least to [-2,5]^2.

Environment make_env1_semi_open() {
  // A semi-open atrium-like space: no enclosing concrete walls near the
  // sensing area; one distant partition and sparse wooden furniture.
  Environment env("Env1-Semi-opened area", {{-8.0, -8.0}, {11.0, 11.0}});
  env.add_wall({{{-7.0, -8.0}, {-7.0, 11.0}}, Material::kDrywall, "far-partition"});
  env.add_wall({{{-8.0, 10.0}, {11.0, 10.0}}, Material::kGlass, "glass-facade"});
  env.add_obstacle({{{8.0, -2.0}, {9.2, 0.0}}, Material::kWood, "bench"});
  env.channel_config.path_loss_exponent = 2.2;
  env.channel_config.rssi_at_1m_dbm = -58.0;
  env.channel_config.shadowing.sigma_db = 3.0;
  env.channel_config.shadowing.correlation_m = 2.2;
  env.channel_config.noise_sigma_db = 1.2;
  env.channel_config.multipath.max_reflection_order = 2;
  return env;
}

Environment make_env2_spacious() {
  // A spacious closed hall (~14 m x 12 m): concrete walls far from the
  // sensing area, few metallic objects.
  // Deliberately not centred on the sensing area: a room whose geometric
  // centre coincides with a measurement point makes all four first-order
  // wall reflections superpose coherently right there — an artificial hot
  // spot no real deployment exhibits.
  Environment env("Env2-Spacious area", {{-5.2, -3.9}, {9.2, 8.3}});
  env.add_room_outline({{-5.2, -3.9}, {9.2, 8.3}}, Material::kConcrete);
  env.add_obstacle({{{7.0, 6.0}, {8.2, 7.2}}, Material::kWood, "table"});
  env.add_obstacle({{{-5.2, -4.2}, {-4.2, -3.4}}, Material::kWood, "lectern"});
  env.channel_config.path_loss_exponent = 2.4;
  env.channel_config.rssi_at_1m_dbm = -58.0;
  env.channel_config.shadowing.sigma_db = 3.1;
  env.channel_config.shadowing.correlation_m = 2.0;
  env.channel_config.noise_sigma_db = 1.4;
  env.channel_config.multipath.max_reflection_order = 2;
  // A large hall's walls are broken up by doors, pillars and trim: less of
  // the reflection stays specular than off the small office's flat walls.
  env.channel_config.multipath.specular_fraction = 0.55;
  return env;
}

Environment make_env3_office() {
  // A small office (~7 m x 6 m): concrete walls close to the sensing area
  // and metal furniture — the severe-multipath locale where LANDMARC
  // degrades the most (paper Sec. 3.3).
  Environment env("Env3-Closed area", {{-2.0, -1.8}, {5.0, 4.4}});
  env.add_room_outline({{-2.0, -1.8}, {5.0, 4.4}}, Material::kConcrete);
  env.add_obstacle({{{4.0, 0.2}, {4.8, 2.2}}, Material::kMetal, "filing-cabinet"});
  env.add_obstacle({{{-1.8, 2.8}, {-0.4, 4.2}}, Material::kMetal, "metal-shelf"});
  env.add_obstacle({{{0.4, -1.6}, {2.4, -0.9}}, Material::kWood, "desk-row"});
  env.add_obstacle({{{-1.7, -1.6}, {-0.9, -0.6}}, Material::kWood, "desk"});
  env.channel_config.path_loss_exponent = 2.8;
  env.channel_config.rssi_at_1m_dbm = -58.0;
  env.channel_config.shadowing.sigma_db = 5.5;
  env.channel_config.shadowing.correlation_m = 1.3;
  env.channel_config.noise_sigma_db = 2.2;
  env.channel_config.multipath.max_reflection_order = 2;
  return env;
}

}  // namespace

Environment make_paper_environment(PaperEnvironment which) {
  switch (which) {
    case PaperEnvironment::kEnv1SemiOpen: return make_env1_semi_open();
    case PaperEnvironment::kEnv2Spacious: return make_env2_spacious();
    case PaperEnvironment::kEnv3Office: return make_env3_office();
  }
  throw std::invalid_argument("make_paper_environment: unknown locale");
}

}  // namespace vire::env
