#include "env/deployment.h"

#include <cmath>
#include <stdexcept>

namespace vire::env {

Deployment::Deployment(const DeploymentConfig& config)
    : config_(config),
      grid_(config.origin, config.spacing_m, config.cols, config.rows) {
  if (config.cols < 2 || config.rows < 2) {
    throw std::invalid_argument("Deployment: grid must be at least 2x2");
  }
  if (config.readers != 4 && config.readers != 8) {
    throw std::invalid_argument("Deployment: readers must be 4 or 8");
  }

  reference_positions_.reserve(grid_.node_count());
  for (std::size_t i = 0; i < grid_.node_count(); ++i) {
    reference_positions_.push_back(grid_.position(i));
  }

  const geom::Vec2 lo = grid_.min_corner();
  const geom::Vec2 hi = grid_.max_corner();
  const double diag = config.reader_offset_m / std::sqrt(2.0);
  const double off = config.reader_offset_m;
  const double mid_x = (lo.x + hi.x) * 0.5;
  const double mid_y = (lo.y + hi.y) * 0.5;

  // Corner readers, reader_offset_m from the nearest corner tag along the
  // outward diagonal (the paper's layout).
  const std::vector<geom::Vec2> corners = {
      {lo.x - diag, lo.y - diag},
      {hi.x + diag, lo.y - diag},
      {hi.x + diag, hi.y + diag},
      {lo.x - diag, hi.y + diag},
  };
  // Edge-midpoint readers, reader_offset_m straight out from each edge.
  const std::vector<geom::Vec2> midpoints = {
      {mid_x, lo.y - off},
      {hi.x + off, mid_y},
      {mid_x, hi.y + off},
      {lo.x - off, mid_y},
  };

  ReaderPlacement placement = config.placement;
  if (config.readers == 8) placement = ReaderPlacement::kCornersAndMidpoints;
  switch (placement) {
    case ReaderPlacement::kCorners:
      reader_positions_ = corners;
      break;
    case ReaderPlacement::kEdgeMidpoints:
      reader_positions_ = midpoints;
      break;
    case ReaderPlacement::kCornersAndMidpoints:
      reader_positions_ = corners;
      reader_positions_.insert(reader_positions_.end(), midpoints.begin(),
                               midpoints.end());
      break;
    case ReaderPlacement::kOneSided: {
      // Four readers spread along the south edge — nearly collinear
      // anchors, included as the cautionary layout.
      const double width = hi.x - lo.x;
      for (int i = 0; i < 4; ++i) {
        reader_positions_.push_back(
            {lo.x + width * static_cast<double>(i) / 3.0, lo.y - off});
      }
      break;
    }
  }
}

std::string_view to_string(ReaderPlacement p) noexcept {
  switch (p) {
    case ReaderPlacement::kCorners: return "corners";
    case ReaderPlacement::kEdgeMidpoints: return "edge midpoints";
    case ReaderPlacement::kCornersAndMidpoints: return "corners + midpoints";
    case ReaderPlacement::kOneSided: return "one-sided";
  }
  return "unknown";
}

Deployment Deployment::paper_testbed() { return Deployment(DeploymentConfig{}); }

geom::Aabb Deployment::sensing_area() const noexcept {
  return {grid_.min_corner(), grid_.max_corner()};
}

geom::Aabb Deployment::full_extent() const noexcept {
  geom::Aabb box = sensing_area();
  for (const auto& r : reader_positions_) {
    box.lo.x = std::min(box.lo.x, r.x);
    box.lo.y = std::min(box.lo.y, r.y);
    box.hi.x = std::max(box.hi.x, r.x);
    box.hi.y = std::max(box.hi.y, r.y);
  }
  return box;
}

bool Deployment::is_interior(geom::Vec2 p, double margin) const noexcept {
  const geom::Vec2 lo = grid_.min_corner();
  const geom::Vec2 hi = grid_.max_corner();
  return p.x >= lo.x + margin && p.x <= hi.x - margin && p.y >= lo.y + margin &&
         p.y <= hi.y - margin;
}

}  // namespace vire::env
