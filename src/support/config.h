#pragma once
// Minimal INI-style configuration parser for scenario files.
//
// Format:
//   # comment            ; comment
//   [section]
//   key = value
//   [section]            # repeated section names append a new instance
//
// Sections are ordered and may repeat (e.g. several [obstacle] sections);
// values are strings with typed accessors. This is deliberately tiny — a
// scenario description needs nothing more.

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vire::support {

/// One [section] instance with its key/value pairs.
class ConfigSection {
 public:
  ConfigSection(std::string name, std::size_t index)
      : name_(std::move(name)), index_(index) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Position of this section in the file (0-based across all sections).
  [[nodiscard]] std::size_t index() const noexcept { return index_; }

  void set(std::string key, std::string value);
  [[nodiscard]] bool has(std::string_view key) const;

  [[nodiscard]] std::optional<std::string> get_string(std::string_view key) const;
  [[nodiscard]] std::optional<double> get_double(std::string_view key) const;
  [[nodiscard]] std::optional<int> get_int(std::string_view key) const;
  [[nodiscard]] std::optional<bool> get_bool(std::string_view key) const;
  /// Comma-separated list of doubles ("1.5, 2.0, 3").
  [[nodiscard]] std::optional<std::vector<double>> get_doubles(std::string_view key) const;

  /// Typed accessors with defaults.
  [[nodiscard]] std::string string_or(std::string_view key, std::string fallback) const;
  [[nodiscard]] double double_or(std::string_view key, double fallback) const;
  [[nodiscard]] int int_or(std::string_view key, int fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const noexcept {
    return entries_;
  }

 private:
  std::string name_;
  std::size_t index_;
  std::map<std::string, std::string> entries_;
};

/// A parsed configuration file: ordered, repeatable sections.
class Config {
 public:
  /// Parses text; throws std::runtime_error with a line number on syntax
  /// errors (junk outside sections, lines without '=').
  static Config parse(std::string_view text);
  /// Loads and parses a file; throws std::runtime_error if unreadable.
  static Config load(const std::string& path);

  [[nodiscard]] const std::vector<ConfigSection>& sections() const noexcept {
    return sections_;
  }
  /// All sections with the given name, in file order.
  [[nodiscard]] std::vector<const ConfigSection*> sections_named(
      std::string_view name) const;
  /// The first section with the given name, or nullptr.
  [[nodiscard]] const ConfigSection* first(std::string_view name) const;

 private:
  std::vector<ConfigSection> sections_;
};

}  // namespace vire::support
