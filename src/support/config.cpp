#include "support/config.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vire::support {

namespace {

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return std::string(s.substr(begin, end - begin));
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string_view strip_comment(std::string_view line) {
  const auto pos = line.find_first_of("#;");
  return pos == std::string_view::npos ? line : line.substr(0, pos);
}

}  // namespace

void ConfigSection::set(std::string key, std::string value) {
  entries_[lower(std::move(key))] = std::move(value);
}

bool ConfigSection::has(std::string_view key) const {
  return entries_.count(lower(std::string(key))) > 0;
}

std::optional<std::string> ConfigSection::get_string(std::string_view key) const {
  const auto it = entries_.find(lower(std::string(key)));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> ConfigSection::get_double(std::string_view key) const {
  const auto raw = get_string(key);
  if (!raw) return std::nullopt;
  try {
    std::size_t pos = 0;
    const double v = std::stod(*raw, &pos);
    if (trim(raw->substr(pos)).empty()) return v;
  } catch (const std::exception&) {
  }
  throw std::runtime_error("Config: key '" + std::string(key) +
                           "' is not a number: '" + *raw + "'");
}

std::optional<int> ConfigSection::get_int(std::string_view key) const {
  const auto v = get_double(key);
  if (!v) return std::nullopt;
  return static_cast<int>(*v);
}

std::optional<bool> ConfigSection::get_bool(std::string_view key) const {
  const auto raw = get_string(key);
  if (!raw) return std::nullopt;
  const std::string v = lower(trim(*raw));
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  throw std::runtime_error("Config: key '" + std::string(key) +
                           "' is not a boolean: '" + *raw + "'");
}

std::optional<std::vector<double>> ConfigSection::get_doubles(
    std::string_view key) const {
  const auto raw = get_string(key);
  if (!raw) return std::nullopt;
  std::vector<double> out;
  std::stringstream stream(*raw);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const std::string t = trim(item);
    if (t.empty()) continue;
    try {
      out.push_back(std::stod(t));
    } catch (const std::exception&) {
      throw std::runtime_error("Config: key '" + std::string(key) +
                               "' has a non-numeric element: '" + t + "'");
    }
  }
  return out;
}

std::string ConfigSection::string_or(std::string_view key, std::string fallback) const {
  return get_string(key).value_or(std::move(fallback));
}
double ConfigSection::double_or(std::string_view key, double fallback) const {
  return get_double(key).value_or(fallback);
}
int ConfigSection::int_or(std::string_view key, int fallback) const {
  return get_int(key).value_or(fallback);
}
bool ConfigSection::bool_or(std::string_view key, bool fallback) const {
  return get_bool(key).value_or(fallback);
}

Config Config::parse(std::string_view text) {
  Config config;
  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto newline = text.find('\n', start);
    const std::string_view raw_line =
        text.substr(start, newline == std::string_view::npos ? std::string_view::npos
                                                             : newline - start);
    start = newline == std::string_view::npos ? text.size() + 1 : newline + 1;
    ++line_number;

    const std::string line = trim(strip_comment(raw_line));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw std::runtime_error("Config: malformed section header at line " +
                                 std::to_string(line_number));
      }
      config.sections_.emplace_back(lower(trim(line.substr(1, line.size() - 2))),
                                    config.sections_.size());
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("Config: expected 'key = value' at line " +
                               std::to_string(line_number));
    }
    if (config.sections_.empty()) {
      throw std::runtime_error("Config: key outside any [section] at line " +
                               std::to_string(line_number));
    }
    config.sections_.back().set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
  }
  return config;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::vector<const ConfigSection*> Config::sections_named(std::string_view name) const {
  const std::string wanted = lower(std::string(name));
  std::vector<const ConfigSection*> out;
  for (const auto& section : sections_) {
    if (section.name() == wanted) out.push_back(&section);
  }
  return out;
}

const ConfigSection* Config::first(std::string_view name) const {
  const auto all = sections_named(name);
  return all.empty() ? nullptr : all.front();
}

}  // namespace vire::support
