#pragma once
// Descriptive statistics used throughout the evaluation harness:
// streaming accumulators (Welford), order statistics, CDFs, confidence
// intervals, and simple regression used by shape-checks in the benches.

#include <cstddef>
#include <span>
#include <vector>

namespace vire::support {

/// Streaming mean/variance accumulator (Welford's algorithm).
/// Numerically stable for long Monte-Carlo runs.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Half-width of the ~95% normal-approximation confidence interval.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary of a sample: moments plus selected quantiles.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Quantile by linear interpolation between closest ranks (type-7, the
/// default of R/NumPy). `q` in [0,1]. Empty input returns 0.
[[nodiscard]] double quantile(std::span<const double> sorted_values, double q) noexcept;

/// Computes a full summary; the input need not be sorted (a copy is sorted).
[[nodiscard]] SampleSummary summarize(std::span<const double> values);

/// Empirical CDF evaluated at `x`: fraction of samples <= x.
[[nodiscard]] double ecdf(std::span<const double> sorted_values, double x) noexcept;

/// Ordinary least-squares fit y = a + b*x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};
[[nodiscard]] LinearFit fit_line(std::span<const double> x, std::span<const double> y);

/// Pearson correlation; 0 when either side is constant or sizes mismatch.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

/// Relative improvement of `candidate` over `baseline` in percent:
/// 100 * (baseline - candidate) / baseline. Returns 0 if baseline == 0.
[[nodiscard]] double improvement_percent(double baseline, double candidate) noexcept;

}  // namespace vire::support
