#include "support/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>

#include "support/log.h"

namespace vire::support {

namespace {

/// One write attempt: temp file, full write (with imposed faults), fsync,
/// rename. Returns false on a retryable failure, throws only on programmer
/// errors (unwritable parent that mkdir could not create).
bool try_write_once(const std::filesystem::path& path, std::string_view contents,
                    const std::filesystem::path& tmp, const AtomicWriteOptions& options,
                    std::string& error) {
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    error = "open(" + tmp.string() + "): " + std::strerror(errno);
    return false;
  }

  std::string buffer(contents);
  std::size_t write_len = buffer.size();
  bool fail_after_write = false;
  if (options.fault_hook != nullptr) {
    if (const auto fault = options.fault_hook->on_write(buffer.size())) {
      switch (fault->kind) {
        case IoFaultKind::kShortWrite:
          write_len = buffer.empty() ? 0 : fault->offset % buffer.size();
          fail_after_write = true;
          error = "short write (fault injected)";
          break;
        case IoFaultKind::kEnospc:
          ::close(fd);
          ::unlink(tmp.c_str());
          error = "write: No space left on device (fault injected)";
          return false;
        case IoFaultKind::kCorruptByte:
          // A silent media corruption: the write reports success. The caller
          // only finds out through its own CRC when reading back.
          if (!buffer.empty()) buffer[fault->offset % buffer.size()] ^= 0x40;
          break;
      }
    }
  }

  std::size_t written = 0;
  while (written < write_len) {
    const ssize_t n = ::write(fd, buffer.data() + written, write_len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      error = std::string("write: ") + std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (fail_after_write) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (options.fsync && ::fsync(fd) != 0) {
    error = std::string("fsync: ") + std::strerror(errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    error = std::string("close: ") + std::strerror(errno);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    error = std::string("rename: ") + std::strerror(errno);
    ::unlink(tmp.c_str());
    return false;
  }
  if (options.fsync) {
    // Make the rename itself durable: fsync the containing directory.
    const std::filesystem::path dir = path.parent_path();
    const int dfd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
      ::fsync(dfd);
      ::close(dfd);
    }
  }
  return true;
}

}  // namespace

void atomic_write_file(const std::filesystem::path& path, std::string_view contents,
                       const AtomicWriteOptions& options) {
  if (options.max_attempts < 1) {
    throw std::invalid_argument("atomic_write_file: max_attempts must be >= 1");
  }
  const std::filesystem::path dir = path.parent_path();
  if (!dir.empty()) std::filesystem::create_directories(dir);
  const std::filesystem::path tmp =
      path.string() + ".tmp." + std::to_string(static_cast<long>(::getpid()));

  std::string error;
  double backoff_s = options.initial_backoff_s;
  for (int attempt = 1; attempt <= options.max_attempts; ++attempt) {
    if (try_write_once(path, contents, tmp, options, error)) return;
    if (attempt < options.max_attempts) {
      log_warn("atomic_write_file(%s) attempt %d/%d failed (%s), retrying",
               path.string().c_str(), attempt, options.max_attempts, error.c_str());
      if (backoff_s > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
        backoff_s *= 2.0;
      }
    }
  }
  throw std::runtime_error("atomic_write_file(" + path.string() + ") failed after " +
                           std::to_string(options.max_attempts) +
                           " attempts: " + error);
}

}  // namespace vire::support
