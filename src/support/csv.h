#pragma once
// Minimal CSV writing/reading used by the benchmark harness to persist the
// series behind every reproduced figure (one CSV per figure, checked into
// the bench output directory so results can be re-plotted externally).

#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace vire::support {

/// Escapes a field per RFC 4180 (quotes fields containing comma/quote/newline).
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Streams rows to a CSV file. Throws std::runtime_error if the file cannot
/// be opened. Flushes on destruction (RAII).
class CsvWriter {
 public:
  explicit CsvWriter(const std::filesystem::path& path);

  /// Writes a header row; typically called once, first.
  void header(std::initializer_list<std::string_view> names);
  void header(const std::vector<std::string>& names);

  /// Row of already-formatted string fields.
  void row(const std::vector<std::string>& fields);

  /// Convenience: row of doubles formatted with %.6g.
  void row_numeric(const std::vector<double>& values);

  /// Mixed row: first field a label, remaining numeric.
  void row_labeled(std::string_view label, const std::vector<double>& values);

  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  void write_fields(const std::vector<std::string>& fields);

  std::filesystem::path path_;
  std::ofstream out_;
  std::size_t rows_ = 0;
};

/// Fully parsed CSV table (small files only; used by tests to round-trip).
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses a CSV file. Handles quoted fields and embedded commas/newlines.
/// The first row is treated as the header.
[[nodiscard]] CsvTable read_csv(const std::filesystem::path& path);

/// Formats a double with %.6g (shared by CSV and report rendering).
[[nodiscard]] std::string format_number(double v);

}  // namespace vire::support
