#include "support/thread_pool.h"

#include <algorithm>
#include <exception>

namespace vire::support {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { stop(); }

void ThreadPool::stop() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::attach_metrics(obs::MetricsRegistry& registry,
                                const std::string& prefix) {
  obs::Counter& tasks = registry.counter(
      prefix + "_tasks_total", {}, "Tasks executed by the thread pool workers");
  obs::Gauge& high_water =
      registry.gauge(prefix + "_queue_depth_high_water", {},
                     "Maximum queued-task backlog observed since start");
  tasks_total_.store(&tasks, std::memory_order_release);
  queue_high_water_.store(&high_water, std::memory_order_release);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    obs::Tracer* tracer = tracer_.load(std::memory_order_acquire);
    if (tracer != nullptr && tracer->enabled()) {
      const double start = tracer->now_us();
      task();
      tracer->complete("pool.task", start, tracer->now_us(),
                       "{\"worker\":" + std::to_string(worker_index) + "}");
    } else {
      task();
    }
    if (auto* counter = tasks_total_.load(std::memory_order_acquire)) counter->inc();
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for_chunked(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t, std::size_t)>& body,
                          ThreadPool* pool) {
  if (begin >= end) return;
  if (pool == nullptr) pool = &global_pool();
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, pool->size()));
  if (chunks == 1) {
    body(begin, end);
    return;
  }
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(pool->submit([&body, lo, hi] { body(lo, hi); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, ThreadPool* pool) {
  parallel_for_chunked(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      pool);
}

}  // namespace vire::support
