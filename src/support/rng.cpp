#include "support/rng.h"

#include <cmath>

namespace vire::support {

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller: draw u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::exponential(double lambda) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

}  // namespace vire::support
