#pragma once
// Lightweight leveled logging. Thread-safe (a single mutex around the sink),
// zero-cost when the level is filtered out before formatting. printf-style
// formatting (GCC 12's libstdc++ has no <format>).

#include <atomic>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>

namespace vire::support {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Global logger configuration. Defaults to kInfo on stderr.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance();

  /// Safe to call concurrently with log() from other threads (the level is
  /// atomic; the documented set_sink/log thread-safety now actually holds
  /// for the level check too).
  void set_level(LogLevel level) noexcept {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const noexcept {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= static_cast<int>(this->level());
  }

  /// Replaces the output sink (default writes "[LEVEL] msg\n" to stderr).
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view message);

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kInfo};
  Sink sink_;
};

/// printf-style formatting into a std::string.
[[nodiscard]] std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

template <typename... Args>
void log_at(LogLevel level, const char* fmt, Args&&... args) {
  auto& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  if constexpr (sizeof...(Args) == 0) {
    logger.log(level, fmt);
  } else {
    logger.log(level, strprintf(fmt, std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_debug(const char* fmt, Args&&... args) {
  log_at(LogLevel::kDebug, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(const char* fmt, Args&&... args) {
  log_at(LogLevel::kInfo, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(const char* fmt, Args&&... args) {
  log_at(LogLevel::kWarn, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(const char* fmt, Args&&... args) {
  log_at(LogLevel::kError, fmt, std::forward<Args>(args)...);
}

}  // namespace vire::support
