#pragma once
// Work-stealing-free, mutex/condvar based thread pool plus a blocking
// parallel_for used by the Monte-Carlo evaluation drivers. The evaluation
// workload is embarrassingly parallel (independent trials), so a simple
// chunked static/dynamic scheduler is both sufficient and predictable.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vire::support {

/// Fixed-size thread pool. Tasks are std::function<void()>; submit() returns
/// a future. Destruction joins all workers after draining queued tasks that
/// were already submitted (no new tasks accepted once stopping).
class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Stops the pool: already-queued tasks are drained, workers are joined,
  /// and subsequent submit() calls throw std::runtime_error. Idempotent;
  /// the destructor calls it.
  void stop();

  /// Registers pool metrics with `registry` and starts recording:
  ///   <prefix>_tasks_total              tasks executed by the workers
  ///   <prefix>_queue_depth_high_water   max queued-task backlog observed
  /// Metric objects must outlive the pool (the engine owns both). Counting
  /// is relaxed-atomic; attaching mid-flight only misses events already
  /// past, it never blocks the hot path.
  void attach_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "vire_threadpool");

  /// Attaches a tracer: every executed task emits a "pool.task" complete
  /// span tagged with the executing worker's index. Pass nullptr to detach.
  /// The tracer must outlive the pool. Same contract as attach_metrics: a
  /// missing or disabled tracer costs one relaxed atomic load per task.
  void attach_tracer(obs::Tracer* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }

  /// Enqueues a task; throws std::runtime_error if the pool is stopping.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace_back([task] { (*task)(); });
      if (auto* gauge = queue_high_water_.load(std::memory_order_acquire)) {
        gauge->record_max(static_cast<double>(queue_.size()));
      }
    }
    cv_.notify_one();
    return result;
  }

 private:
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  /// Optional instrumentation (null until attach_metrics). Atomic pointers:
  /// workers read them without the queue mutex.
  std::atomic<obs::Counter*> tasks_total_{nullptr};
  std::atomic<obs::Gauge*> queue_high_water_{nullptr};
  std::atomic<obs::Tracer*> tracer_{nullptr};
};

/// Shared process-wide pool (lazily constructed, hardware-concurrency sized).
ThreadPool& global_pool();

/// Runs body(i) for i in [begin, end) across the pool, blocking until done.
/// Work is split into contiguous chunks (one per worker by default) so that
/// per-iteration state (e.g. an Rng split per index) stays cache-friendly.
/// Exceptions from the body are propagated (first one wins).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool = nullptr);

/// Chunked variant: body(chunk_begin, chunk_end) once per chunk.
void parallel_for_chunked(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t, std::size_t)>& body,
                          ThreadPool* pool = nullptr);

}  // namespace vire::support
