#include "support/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace vire::support {

namespace {

struct Range {
  double lo = 0.0;
  double hi = 1.0;
};

Range find_range(const std::vector<double>& x) {
  Range r{std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};
  for (double v : x) {
    if (!std::isfinite(v)) continue;
    r.lo = std::min(r.lo, v);
    r.hi = std::max(r.hi, v);
  }
  if (!std::isfinite(r.lo)) return {0.0, 1.0};
  if (r.hi == r.lo) {
    r.lo -= 0.5;
    r.hi += 0.5;
  }
  return r;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

// Bresenham-style rasterisation between two plot-area cells.
void draw_segment(std::vector<std::string>& canvas, int x0, int y0, int x1, int y1,
                  char glyph) {
  const int dx = std::abs(x1 - x0);
  const int dy = -std::abs(y1 - y0);
  const int sx = x0 < x1 ? 1 : -1;
  const int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  int x = x0, y = y0;
  while (true) {
    if (y >= 0 && y < static_cast<int>(canvas.size()) && x >= 0 &&
        x < static_cast<int>(canvas[0].size())) {
      canvas[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = glyph;
    }
    if (x == x1 && y == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y += sy;
    }
  }
}

}  // namespace

std::string render_line_chart(const std::vector<double>& x,
                              const std::vector<Series>& series,
                              const ChartOptions& opt) {
  const int w = std::max(opt.width, 10);
  const int h = std::max(opt.height, 5);
  const Range xr = find_range(x);

  std::vector<double> all_y;
  for (const auto& s : series)
    for (double v : s.y)
      if (std::isfinite(v)) all_y.push_back(v);
  Range yr = find_range(all_y);
  if (opt.y_from_zero) yr.lo = std::min(yr.lo, 0.0);
  // Pad the top slightly so maxima are not clipped onto the border.
  yr.hi += (yr.hi - yr.lo) * 0.05;

  std::vector<std::string> canvas(static_cast<std::size_t>(h),
                                  std::string(static_cast<std::size_t>(w), ' '));
  auto to_col = [&](double v) {
    return static_cast<int>(std::lround((v - xr.lo) / (xr.hi - xr.lo) * (w - 1)));
  };
  auto to_row = [&](double v) {
    return (h - 1) -
           static_cast<int>(std::lround((v - yr.lo) / (yr.hi - yr.lo) * (h - 1)));
  };

  for (const auto& s : series) {
    int prev_c = -1, prev_r = -1;
    const std::size_t n = std::min(x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(s.y[i]) || !std::isfinite(x[i])) {
        prev_c = -1;
        continue;
      }
      const int c = to_col(x[i]);
      const int r = to_row(s.y[i]);
      if (opt.connect && prev_c >= 0) {
        draw_segment(canvas, prev_c, prev_r, c, r, s.glyph);
      } else if (r >= 0 && r < h && c >= 0 && c < w) {
        canvas[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = s.glyph;
      }
      prev_c = c;
      prev_r = r;
    }
  }

  std::ostringstream out;
  if (!opt.title.empty()) out << "  " << opt.title << '\n';
  const int label_w = 9;
  for (int r = 0; r < h; ++r) {
    std::string label(static_cast<std::size_t>(label_w), ' ');
    if (r == 0 || r == h - 1 || r == h / 2) {
      const double frac = 1.0 - static_cast<double>(r) / (h - 1);
      const double v = yr.lo + frac * (yr.hi - yr.lo);
      std::string t = fmt(v);
      label = std::string(static_cast<std::size_t>(
                              std::max(0, label_w - 1 - static_cast<int>(t.size()))),
                          ' ') +
              t + " ";
    }
    out << label << '|' << canvas[static_cast<std::size_t>(r)] << '\n';
  }
  out << std::string(static_cast<std::size_t>(label_w), ' ') << '+'
      << std::string(static_cast<std::size_t>(w), '-') << '\n';
  // X-axis end labels.
  std::string lo = fmt(xr.lo), hi = fmt(xr.hi);
  out << std::string(static_cast<std::size_t>(label_w + 1), ' ') << lo
      << std::string(static_cast<std::size_t>(std::max(
             1, w - static_cast<int>(lo.size()) - static_cast<int>(hi.size()))),
                     ' ')
      << hi << '\n';
  if (!opt.x_label.empty() || !opt.y_label.empty()) {
    out << std::string(static_cast<std::size_t>(label_w + 1), ' ') << opt.x_label;
    if (!opt.y_label.empty()) out << "   [y: " << opt.y_label << "]";
    out << '\n';
  }
  // Legend.
  out << std::string(static_cast<std::size_t>(label_w + 1), ' ');
  for (const auto& s : series) out << s.glyph << "=" << s.label << "  ";
  out << '\n';
  return out.str();
}

std::string render_bar_chart(const std::vector<std::string>& categories,
                             const std::vector<Series>& series,
                             const ChartOptions& opt) {
  double max_v = 0.0;
  for (const auto& s : series)
    for (double v : s.y)
      if (std::isfinite(v)) max_v = std::max(max_v, v);
  if (max_v <= 0.0) max_v = 1.0;

  const int bar_w = std::max(opt.width, 30);
  std::ostringstream out;
  if (!opt.title.empty()) out << "  " << opt.title << '\n';
  std::size_t label_w = 0;
  for (const auto& c : categories) label_w = std::max(label_w, c.size());
  std::size_t series_w = 0;
  for (const auto& s : series) series_w = std::max(series_w, s.label.size());

  for (std::size_t ci = 0; ci < categories.size(); ++ci) {
    for (std::size_t si = 0; si < series.size(); ++si) {
      const auto& s = series[si];
      const double v = ci < s.y.size() ? s.y[ci] : 0.0;
      const int len = static_cast<int>(std::lround(v / max_v * bar_w));
      out << "  ";
      if (si == 0) {
        out << categories[ci]
            << std::string(label_w - categories[ci].size(), ' ');
      } else {
        out << std::string(label_w, ' ');
      }
      out << ' ' << s.label << std::string(series_w - s.label.size(), ' ') << " |"
          << std::string(static_cast<std::size_t>(std::max(0, len)), s.glyph) << ' '
          << fmt(v) << '\n';
    }
    out << '\n';
  }
  if (!opt.x_label.empty()) out << "  [" << opt.x_label << "]\n";
  return out.str();
}

std::string render_heatmap(const std::vector<double>& values, int rows, int cols,
                           std::string_view title) {
  static constexpr std::string_view kShades = " .:-=+*#%@";
  std::ostringstream out;
  if (!title.empty()) out << "  " << title << '\n';
  if (rows <= 0 || cols <= 0 ||
      values.size() < static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
    out << "  (empty heatmap)\n";
    return out.str();
  }
  Range r = find_range(values);
  // Render row 0 at the bottom so the map matches (x,y) plot orientation.
  for (int row = rows - 1; row >= 0; --row) {
    out << "  ";
    for (int col = 0; col < cols; ++col) {
      const double v = values[static_cast<std::size_t>(row) *
                                  static_cast<std::size_t>(cols) +
                              static_cast<std::size_t>(col)];
      if (!std::isfinite(v)) {
        out << ' ';
        continue;
      }
      const double t = (v - r.lo) / (r.hi - r.lo);
      const auto idx = static_cast<std::size_t>(
          std::clamp(t, 0.0, 1.0) * static_cast<double>(kShades.size() - 1));
      out << kShades[idx];
    }
    out << '\n';
  }
  return out.str();
}

std::string render_mask(const std::vector<bool>& mask, int rows, int cols,
                        std::string_view title) {
  std::ostringstream out;
  if (!title.empty()) out << "  " << title << '\n';
  if (rows <= 0 || cols <= 0 ||
      mask.size() < static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
    out << "  (empty mask)\n";
    return out.str();
  }
  for (int row = rows - 1; row >= 0; --row) {
    out << "  ";
    for (int col = 0; col < cols; ++col) {
      const bool on = mask[static_cast<std::size_t>(row) *
                               static_cast<std::size_t>(cols) +
                           static_cast<std::size_t>(col)];
      out << (on ? '#' : '.');
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace vire::support
