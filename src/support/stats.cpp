#include "support/stats.h"

#include <algorithm>
#include <cmath>

namespace vire::support {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double RunningStats::ci95_halfwidth() const noexcept { return 1.96 * sem(); }

double quantile(std::span<const double> sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

SampleSummary summarize(std::span<const double> values) {
  SampleSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  RunningStats rs;
  for (double v : sorted) rs.add(v);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = quantile(sorted, 0.25);
  s.median = quantile(sorted, 0.50);
  s.p75 = quantile(sorted, 0.75);
  s.p90 = quantile(sorted, 0.90);
  s.p95 = quantile(sorted, 0.95);
  return s;
}

double ecdf(std::span<const double> sorted, double x) noexcept {
  if (sorted.empty()) return 0.0;
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
  return static_cast<double>(it - sorted.begin()) / static_cast<double>(sorted.size());
}

LinearFit fit_line(std::span<const double> x, std::span<const double> y) {
  LinearFit f;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return f;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  f.r2 = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return f;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  const LinearFit f = fit_line(x.subspan(0, n), y.subspan(0, n));
  if (f.r2 <= 0.0) return 0.0;
  const double r = std::sqrt(f.r2);
  return f.slope >= 0 ? r : -r;
}

double improvement_percent(double baseline, double candidate) noexcept {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (baseline - candidate) / baseline;
}

}  // namespace vire::support
