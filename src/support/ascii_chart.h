#pragma once
// Terminal rendering of the reproduced figures: line/scatter charts, grouped
// bar charts (per-tag comparisons like Fig. 2(b)/Fig. 6), and heat maps
// (proximity-map visualisation, Fig. 5). Pure text output so every bench can
// show the figure it regenerates without a plotting dependency.

#include <string>
#include <string_view>
#include <vector>

namespace vire::support {

/// One plotted series: a label, a glyph used for its points, and y-values.
struct Series {
  std::string label;
  char glyph = '*';
  std::vector<double> y;
};

struct ChartOptions {
  int width = 72;        ///< plot-area columns
  int height = 20;       ///< plot-area rows
  std::string title;
  std::string x_label;
  std::string y_label;
  bool y_from_zero = false;  ///< force the y-axis to start at 0
  bool connect = true;       ///< draw line segments between points
};

/// Renders one or more series against a shared numeric x-axis.
/// Series shorter than `x` are padded by omission (only defined points drawn).
[[nodiscard]] std::string render_line_chart(const std::vector<double>& x,
                                            const std::vector<Series>& series,
                                            const ChartOptions& options);

/// Renders a grouped bar chart: one group per category (e.g. tracking tag),
/// one bar per series within the group. Values must be >= 0.
[[nodiscard]] std::string render_bar_chart(const std::vector<std::string>& categories,
                                           const std::vector<Series>& series,
                                           const ChartOptions& options);

/// Renders a dense 2D field (row-major, `rows` x `cols`) as a shaded grid.
/// Values are min-max normalised; NaN cells render as spaces.
[[nodiscard]] std::string render_heatmap(const std::vector<double>& values,
                                         int rows, int cols,
                                         std::string_view title);

/// Renders a binary mask (e.g. a proximity map) with '#' for true cells.
[[nodiscard]] std::string render_mask(const std::vector<bool>& mask, int rows, int cols,
                                      std::string_view title);

}  // namespace vire::support
