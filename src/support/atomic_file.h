#pragma once
// Crash-safe file writing: write-temp-then-atomic-rename with bounded
// retry/backoff on transient IO errors (see docs/robustness.md, "Crash
// recovery"). A reader never observes a half-written file at `path`: either
// the old content is intact or the new content is complete, because the
// final step is a single rename(2) on the same filesystem. Used by the
// persistence layer (src/persist/) for engine checkpoints and by the
// engine's anomaly provenance dumps, which previously could leave truncated
// JSON behind a crash.
//
// The IoFaultHook seam lets the fault subsystem (fault::DiskFaultInjector)
// deterministically impose short writes, ENOSPC and silent byte corruption
// on any physical write, so the recovery paths are testable without a real
// failing disk.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string_view>

namespace vire::support {

/// The disk failures the persistence tests care about (docs/robustness.md).
enum class IoFaultKind : std::uint8_t {
  kShortWrite,   ///< only a prefix of the buffer reaches the file (torn write)
  kEnospc,       ///< the write fails outright, as if the disk were full
  kCorruptByte,  ///< the write "succeeds" but one byte is flipped on media
};

/// One imposed fault. `offset` selects the short-write cut point or the
/// corrupted byte (clamped into the buffer).
struct IoFault {
  IoFaultKind kind = IoFaultKind::kEnospc;
  std::size_t offset = 0;
};

/// Consulted once per physical write by the persistence layer. Returning
/// nullopt lets the write through untouched. Implementations must be
/// deterministic (see fault::DiskFaultInjector); the hook exists for fault
/// drills and tests only and must never be installed in production paths.
class IoFaultHook {
 public:
  virtual ~IoFaultHook() = default;
  virtual std::optional<IoFault> on_write(std::size_t size) = 0;
};

struct AtomicWriteOptions {
  /// Total attempts before atomic_write_file throws (>= 1).
  int max_attempts = 3;
  /// Sleep before the first retry; doubles on every further retry.
  double initial_backoff_s = 0.005;
  /// fsync the temp file before the rename (and the directory after), so
  /// the rename is durable, not just atomic. Benches may turn this off.
  bool fsync = true;
  /// Testing seam; nullptr in production.
  IoFaultHook* fault_hook = nullptr;
};

/// Writes `contents` to `path` atomically: temp file in the same directory,
/// optional fsync, rename over `path`. Parent directories are created.
/// Transient failures (short write, ENOSPC, ...) are retried with
/// exponential backoff up to `max_attempts`; std::runtime_error after that.
void atomic_write_file(const std::filesystem::path& path, std::string_view contents,
                       const AtomicWriteOptions& options = {});

}  // namespace vire::support
