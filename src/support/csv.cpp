#include "support/csv.h"

#include <cstdio>
#include <stdexcept>

namespace vire::support {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string format_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

CsvWriter::CsvWriter(const std::filesystem::path& path) : path_(path) {
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  out_.open(path);
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path.string());
  }
}

void CsvWriter::header(std::initializer_list<std::string_view> names) {
  std::vector<std::string> fields;
  fields.reserve(names.size());
  for (auto n : names) fields.emplace_back(n);
  write_fields(fields);
}

void CsvWriter::header(const std::vector<std::string>& names) { write_fields(names); }

void CsvWriter::row(const std::vector<std::string>& fields) { write_fields(fields); }

void CsvWriter::row_numeric(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(format_number(v));
  write_fields(fields);
}

void CsvWriter::row_labeled(std::string_view label, const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size() + 1);
  fields.emplace_back(label);
  for (double v : values) fields.push_back(format_number(v));
  write_fields(fields);
}

void CsvWriter::write_fields(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
  ++rows_;
}

CsvTable read_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path.string());
  CsvTable table;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool file_has_rows = false;
  char c;
  auto end_field = [&] {
    current.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&] {
    end_field();
    if (!file_has_rows) {
      table.header = std::move(current);
      file_has_rows = true;
    } else {
      table.rows.push_back(std::move(current));
    }
    current.clear();
  };
  bool any_char = false;
  while (in.get(c)) {
    any_char = true;
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get(c);
          field.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else {
      switch (c) {
        case '"':
          in_quotes = true;
          break;
        case ',':
          end_field();
          break;
        case '\r':
          break;  // tolerate CRLF
        case '\n':
          end_row();
          break;
        default:
          field.push_back(c);
      }
    }
  }
  if (any_char && (!field.empty() || !current.empty())) end_row();
  return table;
}

}  // namespace vire::support
