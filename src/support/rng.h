#pragma once
// Deterministic, splittable random number generation for reproducible
// simulation experiments.
//
// All stochastic components of the library (shadowing fields, measurement
// noise, interference, walker processes, Monte-Carlo trial drivers) draw
// from Rng instances that are derived from a single experiment seed via
// stable stream-splitting, so that
//   * a whole experiment is reproducible from one 64-bit seed, and
//   * adding trials / components does not perturb the streams of others.

#include <cstdint>
#include <limits>
#include <string_view>

namespace vire::support {

/// splitmix64 step; used both as a seeding mixer and for stream derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a hash of a label, used to derive named sub-streams.
[[nodiscard]] constexpr std::uint64_t hash_label(std::string_view label) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : label) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xoshiro256** PRNG. Fast, high quality, 2^256-1 period.
/// Satisfies the UniformRandomBitGenerator concept so it can be used with
/// <random> distributions, but the common distributions (uniform, normal,
/// exponential) are provided as members for portability of exact streams
/// across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
    // xoshiro must not start from the all-zero state.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t s1 = state_[1];
    const std::uint64_t result = rotl(s1 * 5, 7) * 9;
    const std::uint64_t t = s1 << 17;
    state_[2] ^= state_[0];
    state_[3] ^= s1;
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded generation (bias negligible for
    // simulation use; the rejection step keeps it exact).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t t = (0 - n) % n;
      while (lo < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller with caching of the second variate.
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Exponential with given rate lambda (> 0).
  double exponential(double lambda) noexcept;

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derives an independent child stream. The parent stream advances by one
  /// draw; the child is seeded from the draw mixed with `label`, so children
  /// with different labels are decorrelated even for the same parent state.
  [[nodiscard]] Rng split(std::string_view label) noexcept {
    std::uint64_t s = (*this)() ^ hash_label(label);
    return Rng(splitmix64(s));
  }

  /// Derives an independent child stream by index (e.g. per-trial streams).
  [[nodiscard]] Rng split(std::uint64_t index) noexcept {
    std::uint64_t s = (*this)() ^ (0x9e3779b97f4a7c15ULL * (index + 1));
    return Rng(splitmix64(s));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace vire::support
