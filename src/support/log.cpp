#include "support/log.h"

#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <vector>

namespace vire::support {

namespace {
std::mutex g_log_mutex;
}

std::string strprintf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view msg) {
    std::fprintf(stderr, "[%.*s] %.*s\n",
                 static_cast<int>(to_string(level).size()), to_string(level).data(),
                 static_cast<int>(msg.size()), msg.data());
  };
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard lock(g_log_mutex);
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, std::string_view message) {
  std::lock_guard lock(g_log_mutex);
  if (sink_) sink_(level, message);
}

}  // namespace vire::support
