#include "fault/disk_fault.h"

namespace vire::fault {

DiskFaultPlan& DiskFaultPlan::short_write_at(std::uint64_t at_write,
                                             std::size_t offset) {
  entries.push_back({support::IoFaultKind::kShortWrite, at_write, offset});
  return *this;
}

DiskFaultPlan& DiskFaultPlan::enospc_at(std::uint64_t at_write) {
  entries.push_back({support::IoFaultKind::kEnospc, at_write, 0});
  return *this;
}

DiskFaultPlan& DiskFaultPlan::corrupt_byte_at(std::uint64_t at_write,
                                              std::size_t offset) {
  entries.push_back({support::IoFaultKind::kCorruptByte, at_write, offset});
  return *this;
}

std::optional<support::IoFault> DiskFaultInjector::on_write(std::size_t size) {
  (void)size;
  const std::uint64_t index = writes_++;
  for (const DiskFaultEntry& entry : plan_.entries) {
    if (entry.at_write == index) {
      ++imposed_;
      return support::IoFault{entry.kind, entry.offset};
    }
  }
  return std::nullopt;
}

}  // namespace vire::fault
