#pragma once
// Disk-fault schedule for the persistence layer (src/persist/), the storage
// counterpart of FaultPlan's reading-stream entries. Deployed WAL and
// checkpoint writers fail in three characteristic ways — a torn (short)
// write at the moment of a crash, a full disk (ENOSPC), and silent media
// corruption that only a later CRC check can see. Each entry arms one such
// fault at the Nth physical write observed by the hook (0-based), so a test
// can aim a failure at exactly the frame or checkpoint it wants to break.
//
// Like the reading-stream injector, realisations are deterministic: the
// injector holds nothing but the plan and a monotone write counter, so the
// same plan against the same write sequence imposes the same faults.

#include <cstdint>
#include <optional>
#include <vector>

#include "support/atomic_file.h"

namespace vire::fault {

/// One armed disk fault: impose `kind` on write number `at_write`.
struct DiskFaultEntry {
  support::IoFaultKind kind = support::IoFaultKind::kEnospc;
  std::uint64_t at_write = 0;
  /// Cut point (short write) or corrupted byte (corrupt), modulo buffer size.
  std::size_t offset = 0;
};

/// The schedule. Compose with the fluent builders, mirroring FaultPlan.
struct DiskFaultPlan {
  std::vector<DiskFaultEntry> entries;

  DiskFaultPlan& short_write_at(std::uint64_t at_write, std::size_t offset = 0);
  DiskFaultPlan& enospc_at(std::uint64_t at_write);
  DiskFaultPlan& corrupt_byte_at(std::uint64_t at_write, std::size_t offset = 0);

  [[nodiscard]] bool empty() const noexcept { return entries.empty(); }
};

/// Executes a DiskFaultPlan as a support::IoFaultHook: every physical write
/// of the attached writer bumps a counter, and a write whose index matches
/// an armed entry suffers that entry's fault. Multiple entries on the same
/// index: the first one in plan order wins.
class DiskFaultInjector final : public support::IoFaultHook {
 public:
  explicit DiskFaultInjector(DiskFaultPlan plan) : plan_(std::move(plan)) {}

  std::optional<support::IoFault> on_write(std::size_t size) override;

  [[nodiscard]] std::uint64_t writes_seen() const noexcept { return writes_; }
  [[nodiscard]] std::uint64_t faults_imposed() const noexcept { return imposed_; }
  [[nodiscard]] const DiskFaultPlan& plan() const noexcept { return plan_; }

 private:
  DiskFaultPlan plan_;
  std::uint64_t writes_ = 0;
  std::uint64_t imposed_ = 0;
};

}  // namespace vire::fault
