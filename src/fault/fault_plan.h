#pragma once
// FaultPlan: a composable, schedule-based description of everything that can
// go wrong between the readers and the middleware. VIRE's own
// walker-disturbance experiments (paper Fig. 8) show corrupted RSSI is the
// dominant field failure; deployed systems additionally lose whole readers,
// see per-link packet loss, receive biased or spiking values from
// misbehaving hardware, and get readings late, duplicated or with skewed
// timestamps. A FaultPlan expresses each of these as a typed entry with a
// time window; the FaultInjector executes the plan deterministically from a
// single seed (see fault_injector.h).
//
// Every entry targets one reader. Windows are half-open [start, end): a
// reader outage with end = 30 restarts exactly at t = 30.

#include <limits>
#include <vector>

#include "sim/types.h"

namespace vire::fault {

/// Half-open activity window [start, end) in simulation seconds.
struct TimeWindow {
  sim::SimTime start = 0.0;
  sim::SimTime end = std::numeric_limits<double>::infinity();
  [[nodiscard]] bool contains(sim::SimTime t) const noexcept {
    return t >= start && t < end;
  }
};

/// Reader completely silent during the window (power loss, crash); readings
/// resume the instant the window closes (restart).
struct ReaderOutage {
  sim::ReaderId reader = 0;
  TimeWindow window;
};

/// Intermittent per-link loss: each reading from the reader is dropped
/// independently with probability `drop_rate`.
struct LinkDropout {
  sim::ReaderId reader = 0;
  double drop_rate = 0.0;  ///< in [0, 1]
  TimeWindow window;
};

/// Constant RSSI offset on every reading from the reader (miscalibrated or
/// drifting front end).
struct RssiBias {
  sim::ReaderId reader = 0;
  double bias_db = 0.0;
  TimeWindow window;
};

/// Burst noise: each reading is independently hit with probability
/// `probability`, adding +/- `magnitude_db` (sign drawn per reading).
struct RssiSpikes {
  sim::ReaderId reader = 0;
  double probability = 0.0;  ///< in [0, 1]
  double magnitude_db = 10.0;
  TimeWindow window;
};

/// Reader clock skew: reported timestamps are shifted by `offset_s` while
/// delivery time is unaffected (the reading arrives on time but lies about
/// when it was taken).
struct ClockSkew {
  sim::ReaderId reader = 0;
  double offset_s = 0.0;
  TimeWindow window;
};

/// Delivery delay: each reading is independently held back with probability
/// `probability` for a uniform delay in [min_delay_s, max_delay_s], which
/// also reorders it relative to later on-time readings.
struct DeliveryDelay {
  sim::ReaderId reader = 0;
  double probability = 0.0;  ///< in [0, 1]
  double min_delay_s = 0.0;
  double max_delay_s = 1.0;
  TimeWindow window;
};

/// Duplication: each reading is independently re-delivered a second time
/// `echo_delay_s` later with probability `probability` (retry storms,
/// at-least-once transports).
struct Duplication {
  sim::ReaderId reader = 0;
  double probability = 0.0;  ///< in [0, 1]
  double echo_delay_s = 0.5;
  TimeWindow window;
};

/// The full schedule. Build with the fluent helpers (each appends one entry
/// and returns *this, so plans compose in one expression) or fill the
/// vectors directly.
struct FaultPlan {
  std::vector<ReaderOutage> outages;
  std::vector<LinkDropout> dropouts;
  std::vector<RssiBias> biases;
  std::vector<RssiSpikes> spikes;
  std::vector<ClockSkew> skews;
  std::vector<DeliveryDelay> delays;
  std::vector<Duplication> duplications;

  FaultPlan& kill_reader(sim::ReaderId reader, sim::SimTime start,
                         sim::SimTime end = std::numeric_limits<double>::infinity());
  FaultPlan& drop_links(sim::ReaderId reader, double drop_rate, TimeWindow window = {});
  FaultPlan& bias_rssi(sim::ReaderId reader, double bias_db, TimeWindow window = {});
  FaultPlan& spike_rssi(sim::ReaderId reader, double probability, double magnitude_db,
                        TimeWindow window = {});
  FaultPlan& skew_clock(sim::ReaderId reader, double offset_s, TimeWindow window = {});
  FaultPlan& delay_readings(sim::ReaderId reader, double probability,
                            double min_delay_s, double max_delay_s,
                            TimeWindow window = {});
  FaultPlan& duplicate_readings(sim::ReaderId reader, double probability,
                                double echo_delay_s, TimeWindow window = {});

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] std::size_t entry_count() const noexcept;

  /// Throws std::invalid_argument on malformed entries (probabilities
  /// outside [0, 1], inverted windows or delay ranges, non-finite
  /// magnitudes). Called by the FaultInjector constructor.
  void validate() const;
};

}  // namespace vire::fault
