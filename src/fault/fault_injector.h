#pragma once
// FaultInjector: executes a FaultPlan on the reading stream between the
// readers and Middleware::ingest (plugged into RfidSimulator via
// set_interceptor()).
//
// Determinism: every random decision (drop? spike? delay by how much?) is a
// pure hash of (seed, tag, reader, emission-time bits, fault entry) — no
// internal RNG state advances. Two runs with the same seed and the same
// reading stream therefore make identical decisions regardless of how the
// readings are interleaved with drain() calls, and adding a fault entry
// never perturbs the draws of another. This is the same
// order-independence principle the simulator's split RNG streams follow
// (support/rng.h), taken to its stateless limit.
//
// Delayed and duplicated readings are buffered in a min-heap keyed by
// (delivery time, insertion sequence); the sequence tie-break keeps the
// drain order reproducible even when two readings land on the same instant.

#include <cstdint>
#include <queue>
#include <vector>

#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/types.h"

namespace vire::fault {

/// Injection counts by fault type (always maintained; mirrored into a
/// MetricsRegistry after attach_metrics()).
struct InjectionStats {
  std::uint64_t processed = 0;        ///< readings seen by process()
  std::uint64_t outage_drops = 0;
  std::uint64_t link_drops = 0;
  std::uint64_t biased = 0;
  std::uint64_t spiked = 0;
  std::uint64_t skewed = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return outage_drops + link_drops;
  }
};

class FaultInjector final : public sim::ReadingInterceptor {
 public:
  /// Validates the plan (throws std::invalid_argument on malformed entries).
  /// The whole fault realisation is reproducible from `seed` alone.
  explicit FaultInjector(FaultPlan plan, std::uint64_t seed = 1);

  void process(const sim::RssiReading& reading,
               std::vector<sim::RssiReading>& out) override;
  void drain(sim::SimTime now, std::vector<sim::RssiReading>& out) override;

  /// Registers vire_fault_injected_total{type=...} counters and the
  /// vire_fault_pending_readings gauge. The registry must outlive the
  /// injector. Pure side channel: injection decisions are unchanged.
  void attach_metrics(obs::MetricsRegistry& registry);

  /// Attaches a tracer: every injected fault becomes a global-scope instant
  /// event ("fault.<type>" with tag/reader/sim-time args), so cause lines up
  /// visually with the engine's quality transitions in Perfetto. Pass
  /// nullptr to detach. Pure side channel: injection decisions are unchanged.
  void attach_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  [[nodiscard]] const InjectionStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  /// Readings currently buffered for later delivery.
  [[nodiscard]] std::size_t pending_count() const noexcept { return pending_.size(); }

 private:
  /// Uniform [0,1) draw for one (reading, fault entry) decision — a pure
  /// hash, see the file comment.
  [[nodiscard]] double draw(const sim::RssiReading& reading, std::uint64_t salt,
                            std::uint64_t* extra_bits = nullptr) const noexcept;
  void buffer(sim::SimTime delivery, const sim::RssiReading& reading);
  void update_pending_gauge();
  /// Emits the "fault.<type>" instant event if a tracer is attached+enabled.
  void mark(const char* type, const sim::RssiReading& reading);

  struct Pending {
    sim::SimTime delivery;
    std::uint64_t sequence;
    sim::RssiReading reading;
    /// Min-heap ordering: earliest delivery first, insertion order on ties.
    bool operator>(const Pending& other) const noexcept {
      if (delivery != other.delivery) return delivery > other.delivery;
      return sequence > other.sequence;
    }
  };

  FaultPlan plan_;
  std::uint64_t seed_;
  std::uint64_t sequence_ = 0;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending_;
  InjectionStats stats_;

  struct Instruments {
    obs::Counter* outage_drops = nullptr;
    obs::Counter* link_drops = nullptr;
    obs::Counter* biased = nullptr;
    obs::Counter* spiked = nullptr;
    obs::Counter* skewed = nullptr;
    obs::Counter* delayed = nullptr;
    obs::Counter* duplicated = nullptr;
    obs::Gauge* pending = nullptr;
  };
  Instruments inst_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace vire::fault
