#include "fault/fault_plan.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace vire::fault {

namespace {

void check_window(const TimeWindow& w, const char* what) {
  if (std::isnan(w.start) || std::isnan(w.end) || w.end < w.start) {
    throw std::invalid_argument(std::string("FaultPlan: bad window on ") + what);
  }
}

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string("FaultPlan: probability outside [0,1] on ") +
                                what);
  }
}

}  // namespace

FaultPlan& FaultPlan::kill_reader(sim::ReaderId reader, sim::SimTime start,
                                  sim::SimTime end) {
  outages.push_back({reader, {start, end}});
  return *this;
}

FaultPlan& FaultPlan::drop_links(sim::ReaderId reader, double drop_rate,
                                 TimeWindow window) {
  dropouts.push_back({reader, drop_rate, window});
  return *this;
}

FaultPlan& FaultPlan::bias_rssi(sim::ReaderId reader, double bias_db,
                                TimeWindow window) {
  biases.push_back({reader, bias_db, window});
  return *this;
}

FaultPlan& FaultPlan::spike_rssi(sim::ReaderId reader, double probability,
                                 double magnitude_db, TimeWindow window) {
  spikes.push_back({reader, probability, magnitude_db, window});
  return *this;
}

FaultPlan& FaultPlan::skew_clock(sim::ReaderId reader, double offset_s,
                                 TimeWindow window) {
  skews.push_back({reader, offset_s, window});
  return *this;
}

FaultPlan& FaultPlan::delay_readings(sim::ReaderId reader, double probability,
                                     double min_delay_s, double max_delay_s,
                                     TimeWindow window) {
  delays.push_back({reader, probability, min_delay_s, max_delay_s, window});
  return *this;
}

FaultPlan& FaultPlan::duplicate_readings(sim::ReaderId reader, double probability,
                                         double echo_delay_s, TimeWindow window) {
  duplications.push_back({reader, probability, echo_delay_s, window});
  return *this;
}

bool FaultPlan::empty() const noexcept { return entry_count() == 0; }

std::size_t FaultPlan::entry_count() const noexcept {
  return outages.size() + dropouts.size() + biases.size() + spikes.size() +
         skews.size() + delays.size() + duplications.size();
}

void FaultPlan::validate() const {
  for (const auto& e : outages) check_window(e.window, "outage");
  for (const auto& e : dropouts) {
    check_window(e.window, "dropout");
    check_probability(e.drop_rate, "dropout");
  }
  for (const auto& e : biases) {
    check_window(e.window, "bias");
    if (!std::isfinite(e.bias_db)) {
      throw std::invalid_argument("FaultPlan: non-finite bias_db");
    }
  }
  for (const auto& e : spikes) {
    check_window(e.window, "spikes");
    check_probability(e.probability, "spikes");
    if (!std::isfinite(e.magnitude_db)) {
      throw std::invalid_argument("FaultPlan: non-finite spike magnitude");
    }
  }
  for (const auto& e : skews) {
    check_window(e.window, "skew");
    if (!std::isfinite(e.offset_s)) {
      throw std::invalid_argument("FaultPlan: non-finite clock offset");
    }
  }
  for (const auto& e : delays) {
    check_window(e.window, "delay");
    check_probability(e.probability, "delay");
    if (!(e.min_delay_s >= 0.0) || !(e.max_delay_s >= e.min_delay_s) ||
        !std::isfinite(e.max_delay_s)) {
      throw std::invalid_argument("FaultPlan: bad delay range");
    }
  }
  for (const auto& e : duplications) {
    check_window(e.window, "duplication");
    check_probability(e.probability, "duplication");
    if (!(e.echo_delay_s >= 0.0) || !std::isfinite(e.echo_delay_s)) {
      throw std::invalid_argument("FaultPlan: bad echo delay");
    }
  }
}

}  // namespace vire::fault
