#include "fault/fault_injector.h"

#include <cstring>

#include "support/rng.h"

namespace vire::fault {

namespace {

/// Distinct salt spaces per fault family so entry i of one family never
/// shares a draw with entry i of another.
constexpr std::uint64_t kSaltDropout = 1ULL << 32;
constexpr std::uint64_t kSaltSpike = 2ULL << 32;
constexpr std::uint64_t kSaltDelay = 3ULL << 32;
constexpr std::uint64_t kSaltDuplicate = 4ULL << 32;

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed) {
  plan_.validate();
}

void FaultInjector::attach_metrics(obs::MetricsRegistry& registry) {
  const auto counter = [&](const char* type) -> obs::Counter* {
    return &registry.counter("vire_fault_injected_total",
                             std::string("type=\"") + type + "\"",
                             "Faults injected into the reading stream, by type");
  };
  inst_.outage_drops = counter("reader_outage");
  inst_.link_drops = counter("link_drop");
  inst_.biased = counter("rssi_bias");
  inst_.spiked = counter("rssi_spike");
  inst_.skewed = counter("clock_skew");
  inst_.delayed = counter("delay");
  inst_.duplicated = counter("duplicate");
  inst_.pending = &registry.gauge("vire_fault_pending_readings", {},
                                  "Readings buffered for delayed delivery");
  // Replay counts accumulated before attachment so the export is complete.
  inst_.outage_drops->inc(stats_.outage_drops);
  inst_.link_drops->inc(stats_.link_drops);
  inst_.biased->inc(stats_.biased);
  inst_.spiked->inc(stats_.spiked);
  inst_.skewed->inc(stats_.skewed);
  inst_.delayed->inc(stats_.delayed);
  inst_.duplicated->inc(stats_.duplicated);
  update_pending_gauge();
}

double FaultInjector::draw(const sim::RssiReading& reading, std::uint64_t salt,
                           std::uint64_t* extra_bits) const noexcept {
  std::uint64_t time_bits = 0;
  std::memcpy(&time_bits, &reading.time, sizeof(time_bits));
  std::uint64_t state = seed_;
  state ^= (static_cast<std::uint64_t>(reading.tag) + 1) * 0x9e3779b97f4a7c15ULL;
  state ^= (static_cast<std::uint64_t>(reading.reader) + 1) * 0xbf58476d1ce4e5b9ULL;
  state ^= time_bits * 0x94d049bb133111ebULL;
  state ^= salt * 0xd6e8feb86659fd93ULL;
  const std::uint64_t mixed = support::splitmix64(state);
  if (extra_bits != nullptr) *extra_bits = support::splitmix64(state);
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

void FaultInjector::buffer(sim::SimTime delivery, const sim::RssiReading& reading) {
  pending_.push({delivery, sequence_++, reading});
  update_pending_gauge();
}

void FaultInjector::update_pending_gauge() {
  if (inst_.pending != nullptr) {
    inst_.pending->set(static_cast<double>(pending_.size()));
  }
}

void FaultInjector::mark(const char* type, const sim::RssiReading& reading) {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  tracer_->instant(std::string("fault.") + type,
                   "{\"tag\":" + std::to_string(reading.tag) +
                       ",\"reader\":" + std::to_string(reading.reader) +
                       ",\"sim_time\":" + std::to_string(reading.time) + "}",
                   'g');
}

void FaultInjector::process(const sim::RssiReading& reading,
                            std::vector<sim::RssiReading>& out) {
  ++stats_.processed;
  const sim::SimTime t = reading.time;  // windows key off the emission time

  for (const auto& outage : plan_.outages) {
    if (outage.reader == reading.reader && outage.window.contains(t)) {
      ++stats_.outage_drops;
      if (inst_.outage_drops != nullptr) inst_.outage_drops->inc();
      mark("reader_outage", reading);
      return;
    }
  }
  for (std::size_t i = 0; i < plan_.dropouts.size(); ++i) {
    const auto& drop = plan_.dropouts[i];
    if (drop.reader != reading.reader || !drop.window.contains(t)) continue;
    if (draw(reading, kSaltDropout + i) < drop.drop_rate) {
      ++stats_.link_drops;
      if (inst_.link_drops != nullptr) inst_.link_drops->inc();
      mark("link_drop", reading);
      return;
    }
  }

  sim::RssiReading delivered = reading;
  for (const auto& bias : plan_.biases) {
    if (bias.reader != reading.reader || !bias.window.contains(t)) continue;
    delivered.rssi_dbm += bias.bias_db;
    ++stats_.biased;
    if (inst_.biased != nullptr) inst_.biased->inc();
    mark("rssi_bias", reading);
  }
  for (std::size_t i = 0; i < plan_.spikes.size(); ++i) {
    const auto& spike = plan_.spikes[i];
    if (spike.reader != reading.reader || !spike.window.contains(t)) continue;
    std::uint64_t sign_bits = 0;
    if (draw(reading, kSaltSpike + i, &sign_bits) < spike.probability) {
      delivered.rssi_dbm +=
          ((sign_bits & 1) != 0 ? spike.magnitude_db : -spike.magnitude_db);
      ++stats_.spiked;
      if (inst_.spiked != nullptr) inst_.spiked->inc();
      mark("rssi_spike", reading);
    }
  }
  for (const auto& skew : plan_.skews) {
    if (skew.reader != reading.reader || !skew.window.contains(t)) continue;
    delivered.time += skew.offset_s;
    ++stats_.skewed;
    if (inst_.skewed != nullptr) inst_.skewed->inc();
    mark("clock_skew", reading);
  }

  bool held_back = false;
  for (std::size_t i = 0; i < plan_.delays.size(); ++i) {
    const auto& delay = plan_.delays[i];
    if (delay.reader != reading.reader || !delay.window.contains(t)) continue;
    std::uint64_t span_bits = 0;
    if (draw(reading, kSaltDelay + i, &span_bits) < delay.probability) {
      const double u = static_cast<double>(span_bits >> 11) * 0x1.0p-53;
      const double wait =
          delay.min_delay_s + (delay.max_delay_s - delay.min_delay_s) * u;
      buffer(t + wait, delivered);
      ++stats_.delayed;
      if (inst_.delayed != nullptr) inst_.delayed->inc();
      mark("delay", reading);
      held_back = true;
      break;  // one hold-back is enough; further delay entries are moot
    }
  }
  for (std::size_t i = 0; i < plan_.duplications.size(); ++i) {
    const auto& dup = plan_.duplications[i];
    if (dup.reader != reading.reader || !dup.window.contains(t)) continue;
    if (draw(reading, kSaltDuplicate + i) < dup.probability) {
      buffer(t + dup.echo_delay_s, delivered);
      ++stats_.duplicated;
      if (inst_.duplicated != nullptr) inst_.duplicated->inc();
      mark("duplicate", reading);
    }
  }

  if (!held_back) out.push_back(delivered);
}

void FaultInjector::drain(sim::SimTime now, std::vector<sim::RssiReading>& out) {
  while (!pending_.empty() && pending_.top().delivery <= now) {
    out.push_back(pending_.top().reading);
    pending_.pop();
  }
  update_pending_gauge();
}

}  // namespace vire::fault
