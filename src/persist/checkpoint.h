#pragma once
// Engine checkpoints: a versioned, CRC-protected snapshot of everything the
// localization pipeline mutates between updates (see docs/robustness.md,
// "Crash recovery"). A checkpoint plus the WAL suffix written after it is a
// complete recipe for reconstructing the crashed process bit for bit.
//
// File format (checkpoint_<wal_sequence>.ckpt, all little-endian):
//   "VCKP" magic | body | u32 crc32(body)
//   body: u32 version | u64 config_fingerprint | u64 wal_sequence
//         | f64 sim_time | engine state | middleware window | counter samples
//
// Checkpoints are written through support::atomic_write_file (temp file +
// rename), so a crash mid-write leaves the previous checkpoint intact. The
// store keeps the newest `keep` files; loading walks newest-to-oldest and
// falls back past any file whose CRC, version or config fingerprint does not
// match, counting each rejection.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "engine/localization_engine.h"
#include "obs/metrics.h"
#include "persist/binary_io.h"
#include "sim/middleware.h"
#include "support/atomic_file.h"

namespace vire::persist {

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Reusable binary codecs for the pipeline's state snapshots. The checkpoint
/// file format is built on these; the wire layer reuses them verbatim for
/// cross-process tag migration (kExportTag/kImportTag) and reference seeding
/// (kSeedExport/kSeedImport), so exported state is byte-compatible with
/// checkpointed state. The read_* functions return false (leaving the output
/// partially written) on any structural error.
void write_engine_state(ByteWriter& w, const engine::EngineStateSnapshot& s);
bool read_engine_state(ByteReader& r, engine::EngineStateSnapshot& s);
void write_middleware_snapshot(ByteWriter& w, const sim::Middleware::Snapshot& s);
bool read_middleware_snapshot(ByteReader& r, sim::Middleware::Snapshot& s);
void write_tag_state(ByteWriter& w, const engine::TagStateSnapshot& s);
bool read_tag_state(ByteReader& r, engine::TagStateSnapshot& s);

/// Fingerprint of every EngineConfig field that affects fix values — the
/// algorithm, degradation and tracking knobs. parallel_workers and the
/// observability block are deliberately EXCLUDED: both are pure side
/// channels (fixes are bit-identical across them), so a checkpoint taken at
/// workers=4 restores cleanly into an engine running workers=1.
[[nodiscard]] std::uint64_t engine_config_fingerprint(
    const engine::EngineConfig& config) noexcept;

struct Checkpoint {
  std::uint64_t config_fingerprint = 0;
  /// WAL sequence the next frame would get at snapshot time: recovery
  /// replays frames with sequence >= this.
  std::uint64_t wal_sequence = 0;
  /// Simulation time of the last completed engine update.
  sim::SimTime sim_time = 0.0;
  engine::EngineStateSnapshot engine;
  sim::Middleware::Snapshot middleware;
  /// Counter values at snapshot time; restored registry-wide on recovery so
  /// post-replay counters match the uninterrupted run.
  struct CounterSample {
    std::string name;
    std::string labels;
    std::uint64_t value = 0;
  };
  std::vector<CounterSample> counters;
};

/// Body + magic + CRC, ready for atomic_write_file.
[[nodiscard]] std::string serialize(const Checkpoint& checkpoint);
/// nullopt when the magic, CRC, version or structure is invalid.
[[nodiscard]] std::optional<Checkpoint> deserialize(std::string_view data);

/// Every counter currently in `registry`, in registration order.
[[nodiscard]] std::vector<Checkpoint::CounterSample> sample_counters(
    const obs::MetricsRegistry& registry);
/// Raises each named counter to its sampled value (counters are monotonic —
/// a current value above the sample is left alone, with a warning).
void restore_counters(obs::MetricsRegistry& registry,
                      const std::vector<Checkpoint::CounterSample>& samples);

struct CheckpointStoreConfig {
  std::filesystem::path dir;
  /// Newest checkpoints kept on disk; older ones are pruned after a write.
  std::size_t keep = 3;
  /// Durability/retry knobs (and the disk-fault testing seam).
  support::AtomicWriteOptions write_options;
};

class CheckpointStore {
 public:
  explicit CheckpointStore(CheckpointStoreConfig config);

  /// Serializes and atomically writes checkpoint_<wal_sequence>.ckpt, then
  /// prunes beyond `keep`. Throws std::runtime_error when every write
  /// attempt fails (the previous checkpoint file is untouched either way).
  void write(const Checkpoint& checkpoint);

  struct LoadResult {
    std::optional<Checkpoint> checkpoint;  ///< newest valid, if any
    std::uint64_t rejected = 0;  ///< files skipped (CRC/version/config mismatch)
  };
  /// Walks checkpoints newest-to-oldest and returns the first that
  /// deserializes AND matches `expected_config_fingerprint`. Never throws on
  /// bad files — that is the fallback path working as designed.
  [[nodiscard]] LoadResult load_newest_valid(
      std::uint64_t expected_config_fingerprint) const;

  /// Sequences present on disk, oldest first (diagnostics/tests).
  [[nodiscard]] std::vector<std::uint64_t> stored_sequences() const;

  /// Registers vire_persist_checkpoint_{written,loaded,rejected}_total.
  void attach_metrics(obs::MetricsRegistry& registry);

  [[nodiscard]] const CheckpointStoreConfig& config() const noexcept {
    return config_;
  }

 private:
  CheckpointStoreConfig config_;
  obs::Counter* written_metric_ = nullptr;
  obs::Counter* loaded_metric_ = nullptr;
  obs::Counter* rejected_metric_ = nullptr;
};

}  // namespace vire::persist
