#include "persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "persist/binary_io.h"
#include "support/log.h"

namespace vire::persist {

namespace {

constexpr char kMagic[4] = {'V', 'W', 'A', 'L'};
constexpr std::size_t kHeaderSize = 4 + 4 + 8;  // magic + version + start_seq
constexpr std::size_t kFrameOverhead = 4 + 1 + 4;  // len + type + crc

double monotonic_seconds() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::filesystem::path segment_path(const std::filesystem::path& dir,
                                   std::uint64_t start_sequence) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%012llu.log",
                static_cast<unsigned long long>(start_sequence));
  return dir / name;
}

/// Parses `wal-<digits>.log`; nullopt for anything else.
std::optional<std::uint64_t> segment_start(const std::filesystem::path& path) {
  const std::string name = path.filename().string();
  if (name.size() < 9 || name.rfind("wal-", 0) != 0 ||
      name.substr(name.size() - 4) != ".log") {
    return std::nullopt;
  }
  const std::string digits = name.substr(4, name.size() - 8);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::stoull(digits);
}

std::vector<std::pair<std::uint64_t, std::filesystem::path>> list_segments(
    const std::filesystem::path& dir) {
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> segments;
  if (!std::filesystem::exists(dir)) return segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (const auto start = segment_start(entry.path())) {
      segments.emplace_back(*start, entry.path());
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

std::string encode_payload(FrameType type, const sim::RssiReading& reading,
                           sim::SimTime time) {
  ByteWriter w;
  if (type == FrameType::kReading) {
    w.f64(reading.time);
    w.u32(reading.tag);
    w.u16(reading.reader);
    w.f64(reading.rssi_dbm);
  } else {
    w.f64(time);
  }
  return w.take();
}

std::string encode_ack_payload(std::uint64_t ack_sequence) {
  ByteWriter w;
  w.u64(ack_sequence);
  return w.take();
}

bool decode_payload(FrameType type, std::string_view payload, WalFrame& frame) {
  ByteReader r(payload);
  switch (type) {
    case FrameType::kReading: {
      const auto time = r.f64();
      const auto tag = r.u32();
      const auto reader = r.u16();
      const auto rssi = r.f64();
      if (!r.exhausted() || !time || !tag || !reader || !rssi) return false;
      frame.reading = {*time, *tag, *reader, *rssi};
      return true;
    }
    case FrameType::kEvict:
    case FrameType::kUpdate: {
      const auto now = r.f64();
      if (!r.exhausted() || !now) return false;
      frame.time = *now;
      return true;
    }
    case FrameType::kAck: {
      const auto ack = r.u64();
      if (!r.exhausted() || !ack) return false;
      frame.ack_sequence = *ack;
      return true;
    }
  }
  return false;
}

std::string encode_frame(FrameType type, const std::string& payload) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u8(static_cast<std::uint8_t>(type));
  w.raw(payload);
  std::string checked;
  checked.reserve(1 + payload.size());
  checked.push_back(static_cast<char>(type));
  checked.append(payload);
  w.u32(crc32(checked));
  return w.take();
}

struct SegmentScan {
  std::uint64_t start_sequence = 0;
  std::uint64_t frames = 0;        ///< valid frames
  std::size_t valid_bytes = 0;     ///< header + valid frames
  bool corrupt_tail = false;       ///< bytes after the valid prefix
  std::vector<WalFrame> decoded;   ///< filled only when `keep_frames`
};

/// Scans one segment file: validates the header, walks frames until the
/// first CRC/decode failure or EOF. Returns nullopt when the header itself
/// is unreadable (the whole segment is then treated as corrupt).
std::optional<SegmentScan> scan_segment(const std::filesystem::path& path,
                                        bool keep_frames) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();

  if (data.size() < kHeaderSize || std::memcmp(data.data(), kMagic, 4) != 0) {
    return std::nullopt;
  }
  ByteReader header(std::string_view(data).substr(4, kHeaderSize - 4));
  const auto version = header.u32();
  const auto start_sequence = header.u64();
  if (!version || *version != kWalVersion || !start_sequence) return std::nullopt;

  SegmentScan scan;
  scan.start_sequence = *start_sequence;
  scan.valid_bytes = kHeaderSize;
  std::size_t pos = kHeaderSize;
  const std::string_view view(data);
  while (pos < data.size()) {
    if (data.size() - pos < kFrameOverhead) {
      scan.corrupt_tail = true;
      break;
    }
    ByteReader len_reader(view.substr(pos, 4));
    const std::uint32_t payload_len = *len_reader.u32();
    if (data.size() - pos < kFrameOverhead + payload_len) {
      scan.corrupt_tail = true;
      break;
    }
    const std::string_view checked = view.substr(pos + 4, 1 + payload_len);
    ByteReader crc_reader(view.substr(pos + 4 + 1 + payload_len, 4));
    if (crc32(checked) != *crc_reader.u32()) {
      scan.corrupt_tail = true;
      break;
    }
    const auto type = static_cast<FrameType>(static_cast<std::uint8_t>(checked[0]));
    WalFrame frame;
    frame.type = type;
    frame.sequence = scan.start_sequence + scan.frames;
    if (!decode_payload(type, checked.substr(1), frame)) {
      scan.corrupt_tail = true;
      break;
    }
    if (keep_frames) scan.decoded.push_back(frame);
    ++scan.frames;
    pos += kFrameOverhead + payload_len;
    scan.valid_bytes = pos;
  }
  return scan;
}

}  // namespace

WalReadResult read_wal(const std::filesystem::path& dir,
                       std::uint64_t from_sequence) {
  WalReadResult result;
  const auto segments = list_segments(dir);
  bool stopped = false;
  for (const auto& [start, path] : segments) {
    if (stopped) break;  // sequence continuity ends at the first bad frame
    const auto scan = scan_segment(path, /*keep_frames=*/true);
    if (!scan) {
      // Unreadable header: the whole segment is one corrupt unit.
      ++result.corrupt_frames;
      break;
    }
    // A gap between segments (rotation lost to a crash before any frame was
    // appended is fine; missing frames are not) also ends the log.
    if (result.next_sequence != 0 && scan->start_sequence != result.next_sequence) {
      break;
    }
    for (const WalFrame& frame : scan->decoded) {
      if (frame.sequence >= from_sequence) result.frames.push_back(frame);
    }
    result.next_sequence = scan->start_sequence + scan->frames;
    if (scan->corrupt_tail) {
      ++result.corrupt_frames;
      stopped = true;
    }
  }
  return result;
}

WalWriter::WalWriter(WalConfig config) : config_(std::move(config)) {
  if (config_.dir.empty()) {
    throw std::invalid_argument("WalWriter: dir must be set");
  }
  if (config_.segment_max_frames == 0) {
    throw std::invalid_argument("WalWriter: segment_max_frames must be >= 1");
  }
  std::filesystem::create_directories(config_.dir);

  // Resume after the valid prefix of any existing log: truncate the first
  // torn segment at its last valid frame and drop every later segment, so
  // appended frames extend a log read_wal() fully accepts.
  const auto segments = list_segments(config_.dir);
  std::uint64_t resume_start = 1;  // sequences are 1-based; 0 = "no frames"
  std::uint64_t resume_frames = 0;
  std::filesystem::path resume_path;
  bool broken = false;
  for (const auto& [start, path] : segments) {
    if (broken) {
      std::filesystem::remove(path);
      continue;
    }
    const auto scan = scan_segment(path, /*keep_frames=*/false);
    if (!scan) {
      // Unreadable header: drop this and every later segment.
      ++truncated_;
      std::filesystem::remove(path);
      broken = true;
      continue;
    }
    if (!resume_path.empty() && scan->start_sequence != resume_start + resume_frames) {
      // Sequence gap: frames are missing, the log ends at the previous segment.
      std::filesystem::remove(path);
      broken = true;
      continue;
    }
    resume_start = scan->start_sequence;
    resume_frames = scan->frames;
    resume_path = path;
    if (scan->corrupt_tail) {
      ++truncated_;
      std::filesystem::resize_file(path, scan->valid_bytes);
      broken = true;
    }
  }

  if (!resume_path.empty()) {
    sequence_ = resume_start + resume_frames;
    if (resume_frames < config_.segment_max_frames) {
      // Keep appending to the (now clean) last segment.
      fd_ = ::open(resume_path.c_str(), O_WRONLY | O_APPEND);
      if (fd_ < 0) {
        throw std::runtime_error("WalWriter: open(" + resume_path.string() +
                                 "): " + std::strerror(errno));
      }
      segment_frames_ = resume_frames;
    } else {
      open_segment(sequence_);
    }
  } else {
    sequence_ = 1;
    open_segment(sequence_);
  }
  last_sync_monotonic_s_ = monotonic_seconds();
}

WalWriter::~WalWriter() {
  if (fd_ >= 0 && config_.fsync != FsyncPolicy::kOff && unsynced_ > 0) {
    ::fsync(fd_);
  }
  close_segment();
}

void WalWriter::attach_metrics(obs::MetricsRegistry& registry) {
  appended_metric_ =
      &registry.counter("vire_persist_wal_appended_total", {},
                        "Frames appended to the write-ahead journal");
  corrupt_metric_ = &registry.counter(
      "vire_persist_wal_corrupt_total", {},
      "Torn/corrupt WAL frames dropped (truncated at open or skipped at read)");
  appended_metric_->inc(appended_);
  corrupt_metric_->inc(truncated_);
}

void WalWriter::open_segment(std::uint64_t start_sequence) {
  close_segment();
  const std::filesystem::path path = segment_path(config_.dir, start_sequence);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("WalWriter: open(" + path.string() +
                             "): " + std::strerror(errno));
  }
  ByteWriter header;
  header.raw(std::string_view(kMagic, 4));
  header.u32(kWalVersion);
  header.u64(start_sequence);
  physical_write(header.bytes());
  segment_frames_ = 0;
}

void WalWriter::close_segment() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void WalWriter::physical_write(const std::string& bytes) {
  std::string buffer = bytes;
  std::size_t write_len = buffer.size();
  bool fail_after_write = false;
  if (config_.fault_hook != nullptr) {
    if (const auto fault = config_.fault_hook->on_write(buffer.size())) {
      switch (fault->kind) {
        case support::IoFaultKind::kShortWrite:
          write_len = buffer.empty() ? 0 : fault->offset % buffer.size();
          fail_after_write = true;
          break;
        case support::IoFaultKind::kEnospc:
          throw std::runtime_error("WalWriter: write: No space left on device "
                                   "(fault injected)");
        case support::IoFaultKind::kCorruptByte:
          // Silent media corruption: the append "succeeds"; only the CRC at
          // read time reveals it.
          if (!buffer.empty()) buffer[fault->offset % buffer.size()] ^= 0x40;
          break;
      }
    }
  }
  std::size_t written = 0;
  while (written < write_len) {
    const ssize_t n = ::write(fd_, buffer.data() + written, write_len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("WalWriter: write: ") +
                               std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  if (fail_after_write) {
    throw std::runtime_error("WalWriter: short write (fault injected)");
  }
}

void WalWriter::append_frame(FrameType type, const std::string& payload) {
  if (segment_frames_ >= config_.segment_max_frames) {
    if (config_.fsync != FsyncPolicy::kOff && unsynced_ > 0) {
      ::fsync(fd_);
      unsynced_ = 0;
    }
    open_segment(sequence_);
  }
  physical_write(encode_frame(type, payload));
  ++sequence_;
  ++segment_frames_;
  ++appended_;
  ++unsynced_;
  if (appended_metric_ != nullptr) appended_metric_->inc();
  maybe_fsync();
}

void WalWriter::maybe_fsync() {
  bool due = false;
  switch (config_.fsync) {
    case FsyncPolicy::kOff:
      return;
    case FsyncPolicy::kEveryN:
      due = unsynced_ >= config_.fsync_every_n;
      break;
    case FsyncPolicy::kInterval:
      due = monotonic_seconds() - last_sync_monotonic_s_ >= config_.fsync_interval_s;
      break;
  }
  if (due) sync();
}

void WalWriter::sync() {
  if (fd_ < 0 || unsynced_ == 0) return;
  const obs::TraceSpan span(tracer_, "persist.wal_fsync");
  if (::fsync(fd_) != 0) {
    support::log_warn("WalWriter: fsync failed: %s", std::strerror(errno));
  }
  unsynced_ = 0;
  last_sync_monotonic_s_ = monotonic_seconds();
}

void WalWriter::on_accepted(const sim::RssiReading& reading) {
  append_frame(FrameType::kReading, encode_payload(FrameType::kReading, reading, 0.0));
}

void WalWriter::on_evict(sim::SimTime now) {
  append_frame(FrameType::kEvict, encode_payload(FrameType::kEvict, {}, now));
}

void WalWriter::append_update_marker(sim::SimTime now) {
  append_frame(FrameType::kUpdate, encode_payload(FrameType::kUpdate, {}, now));
}

void WalWriter::append_ack_marker(std::uint64_t ack_sequence) {
  append_frame(FrameType::kAck, encode_ack_payload(ack_sequence));
}

std::size_t WalWriter::prune(std::uint64_t up_to_sequence) {
  std::size_t removed = 0;
  const auto segments = list_segments(config_.dir);
  // The next segment's start is this segment's end, so a segment goes only
  // when it lies wholly before the checkpoint. The open segment is the last
  // in sorted order and is never a candidate.
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first <= up_to_sequence) {
      std::filesystem::remove(segments[i].second);
      ++removed;
    }
  }
  return removed;
}

}  // namespace vire::persist
