#pragma once
// Generic segmented CRC-framed append-only log — the WAL's on-disk discipline
// (docs/robustness.md, "Crash recovery") factored out for other journals.
// The supervisor's durable control journal (src/service/control_journal.h)
// is the first client; the reading WAL keeps its own writer because its
// "VWAL" byte format predates this class and must stay stable.
//
// On-disk format (all integers little-endian):
//   segment file <prefix>-<start_sequence>.log:
//     magic[4] | u32 version | u64 start_sequence        (header)
//     record*                                            (append-only)
//   record:
//     u32 payload_len | u8 type | payload | u32 crc32(type byte + payload)
//
// Records carry a 1-based global sequence (segment header start + position)
// that survives rotation. A crash can tear at most the tail of the newest
// segment: both the reader and the writer treat the first CRC failure as
// end-of-log — the reader stops there (counting the bad record), the writer
// truncates the segment at the same byte and deletes any later segments, so
// the log is again a valid prefix of history.

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "persist/wal.h"  // FsyncPolicy
#include "support/atomic_file.h"

namespace vire::persist {

/// Identity of one log family: header magic, format version, file prefix.
/// Two logs with different formats never read each other's segments.
struct FramedLogFormat {
  char magic[4] = {'V', 'L', 'O', 'G'};
  std::uint32_t version = 1;
  /// Segment files are named <file_prefix>-<%012 start_sequence>.log.
  std::string file_prefix = "log";
};

struct FramedLogConfig {
  std::filesystem::path dir;
  FramedLogFormat format;
  /// Records per segment before rotating to a new file.
  std::uint64_t segment_max_records = 8192;
  FsyncPolicy fsync = FsyncPolicy::kOff;
  std::uint64_t fsync_every_n = 64;
  double fsync_interval_s = 0.2;
  /// Testing seam (fault::DiskFaultInjector); nullptr in production.
  support::IoFaultHook* fault_hook = nullptr;
  /// Optional payload validator: a CRC-valid record whose payload fails this
  /// check is treated exactly like a torn record (end-of-log). Lets typed
  /// journals extend torn-tail semantics to undecodable payloads.
  std::function<bool(std::uint8_t type, std::string_view payload)> validate;
};

struct LogRecord {
  std::uint64_t sequence = 0;  ///< 1-based global sequence
  std::uint8_t type = 0;
  std::string payload;
};

struct FramedLogReadResult {
  std::vector<LogRecord> records;  ///< sequence >= from_sequence, in order
  /// Records dropped at the first CRC/validate failure (torn tail).
  std::uint64_t corrupt_records = 0;
  /// Sequence the next appended record would get.
  std::uint64_t next_sequence = 0;
};

/// Reads every valid record with sequence >= `from_sequence` from the
/// segments under `dir` that match `format`. Stops at the first corrupt
/// record (counting it); a missing directory reads as an empty log.
[[nodiscard]] FramedLogReadResult read_framed_log(
    const std::filesystem::path& dir, const FramedLogFormat& format,
    std::uint64_t from_sequence = 0,
    const std::function<bool(std::uint8_t, std::string_view)>& validate = {});

/// Append-only segmented writer. Reopening an existing directory resumes
/// after the valid prefix: the torn tail, if any, is truncated (and counted)
/// exactly as read_framed_log would skip it.
class FramedLog {
 public:
  explicit FramedLog(FramedLogConfig config);
  ~FramedLog();

  FramedLog(const FramedLog&) = delete;
  FramedLog& operator=(const FramedLog&) = delete;

  /// Appends one record; returns the global sequence it received.
  std::uint64_t append(std::uint8_t type, std::string_view payload);

  /// Force an fsync of the current segment now, regardless of policy.
  void sync();

  /// Deletes segments whose every record has sequence < `up_to_sequence`
  /// (safe after a checkpoint covering that prefix). The open segment is
  /// never removed. Returns segments removed.
  std::size_t prune(std::uint64_t up_to_sequence);

  /// Sequence the next record will get.
  [[nodiscard]] std::uint64_t next_sequence() const noexcept { return sequence_; }
  /// Records appended by this writer instance.
  [[nodiscard]] std::uint64_t appended_count() const noexcept { return appended_; }
  /// Torn records dropped from the tail when this writer (re)opened the log.
  [[nodiscard]] std::uint64_t truncated_records() const noexcept {
    return truncated_;
  }

  /// Emits `span_name` spans around fsyncs. Pass nullptr to detach.
  void attach_tracer(obs::Tracer* tracer, std::string span_name) noexcept {
    tracer_ = tracer;
    fsync_span_name_ = std::move(span_name);
  }

  [[nodiscard]] const FramedLogConfig& config() const noexcept { return config_; }

 private:
  void open_segment(std::uint64_t start_sequence);
  void close_segment() noexcept;
  void physical_write(const std::string& bytes);
  void maybe_fsync();

  FramedLogConfig config_;
  int fd_ = -1;
  std::uint64_t sequence_ = 0;        ///< next record's global sequence
  std::uint64_t segment_records_ = 0; ///< records in the open segment
  std::uint64_t appended_ = 0;
  std::uint64_t truncated_ = 0;
  std::uint64_t unsynced_ = 0;        ///< records since the last fsync
  double last_sync_monotonic_s_ = 0.0;
  obs::Tracer* tracer_ = nullptr;
  std::string fsync_span_name_ = "persist.log_fsync";
};

}  // namespace vire::persist
