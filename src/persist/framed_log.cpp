#include "persist/framed_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "persist/binary_io.h"
#include "support/log.h"

namespace vire::persist {

namespace {

constexpr std::size_t kHeaderSize = 4 + 4 + 8;      // magic + version + start_seq
constexpr std::size_t kRecordOverhead = 4 + 1 + 4;  // len + type + crc

double monotonic_seconds() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::filesystem::path segment_path(const std::filesystem::path& dir,
                                   const FramedLogFormat& format,
                                   std::uint64_t start_sequence) {
  char digits[24];
  std::snprintf(digits, sizeof(digits), "%012llu",
                static_cast<unsigned long long>(start_sequence));
  return dir / (format.file_prefix + "-" + digits + ".log");
}

/// Parses `<prefix>-<digits>.log`; nullopt for anything else.
std::optional<std::uint64_t> segment_start(const FramedLogFormat& format,
                                           const std::filesystem::path& path) {
  const std::string name = path.filename().string();
  const std::string prefix = format.file_prefix + "-";
  if (name.size() < prefix.size() + 5 || name.rfind(prefix, 0) != 0 ||
      name.substr(name.size() - 4) != ".log") {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - 4);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::stoull(digits);
}

std::vector<std::pair<std::uint64_t, std::filesystem::path>> list_segments(
    const std::filesystem::path& dir, const FramedLogFormat& format) {
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> segments;
  if (!std::filesystem::exists(dir)) return segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (const auto start = segment_start(format, entry.path())) {
      segments.emplace_back(*start, entry.path());
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

std::string encode_record(std::uint8_t type, std::string_view payload) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u8(type);
  w.raw(payload);
  std::string checked;
  checked.reserve(1 + payload.size());
  checked.push_back(static_cast<char>(type));
  checked.append(payload);
  w.u32(crc32(checked));
  return w.take();
}

struct SegmentScan {
  std::uint64_t start_sequence = 0;
  std::uint64_t records = 0;        ///< valid records
  std::size_t valid_bytes = 0;      ///< header + valid records
  bool corrupt_tail = false;        ///< bytes after the valid prefix
  std::vector<LogRecord> decoded;   ///< filled only when `keep_records`
};

/// Scans one segment file: validates the header, walks records until the
/// first CRC/validate failure or EOF. Returns nullopt when the header itself
/// is unreadable (the whole segment is then treated as corrupt).
std::optional<SegmentScan> scan_segment(
    const std::filesystem::path& path, const FramedLogFormat& format,
    bool keep_records,
    const std::function<bool(std::uint8_t, std::string_view)>& validate) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();

  if (data.size() < kHeaderSize ||
      std::memcmp(data.data(), format.magic, 4) != 0) {
    return std::nullopt;
  }
  ByteReader header(std::string_view(data).substr(4, kHeaderSize - 4));
  const auto version = header.u32();
  const auto start_sequence = header.u64();
  if (!version || *version != format.version || !start_sequence) {
    return std::nullopt;
  }

  SegmentScan scan;
  scan.start_sequence = *start_sequence;
  scan.valid_bytes = kHeaderSize;
  std::size_t pos = kHeaderSize;
  const std::string_view view(data);
  while (pos < data.size()) {
    if (data.size() - pos < kRecordOverhead) {
      scan.corrupt_tail = true;
      break;
    }
    ByteReader len_reader(view.substr(pos, 4));
    const std::uint32_t payload_len = *len_reader.u32();
    if (data.size() - pos < kRecordOverhead + payload_len) {
      scan.corrupt_tail = true;
      break;
    }
    const std::string_view checked = view.substr(pos + 4, 1 + payload_len);
    ByteReader crc_reader(view.substr(pos + 4 + 1 + payload_len, 4));
    if (crc32(checked) != *crc_reader.u32()) {
      scan.corrupt_tail = true;
      break;
    }
    const auto type = static_cast<std::uint8_t>(checked[0]);
    const std::string_view payload = checked.substr(1);
    if (validate && !validate(type, payload)) {
      scan.corrupt_tail = true;
      break;
    }
    if (keep_records) {
      LogRecord record;
      record.sequence = scan.start_sequence + scan.records;
      record.type = type;
      record.payload = std::string(payload);
      scan.decoded.push_back(std::move(record));
    }
    ++scan.records;
    pos += kRecordOverhead + payload_len;
    scan.valid_bytes = pos;
  }
  return scan;
}

}  // namespace

FramedLogReadResult read_framed_log(
    const std::filesystem::path& dir, const FramedLogFormat& format,
    std::uint64_t from_sequence,
    const std::function<bool(std::uint8_t, std::string_view)>& validate) {
  FramedLogReadResult result;
  const auto segments = list_segments(dir, format);
  bool stopped = false;
  for (const auto& [start, path] : segments) {
    if (stopped) break;  // sequence continuity ends at the first bad record
    auto scan = scan_segment(path, format, /*keep_records=*/true, validate);
    if (!scan) {
      // Unreadable header: the whole segment is one corrupt unit.
      ++result.corrupt_records;
      break;
    }
    // A gap between segments (rotation lost to a crash before any record was
    // appended is fine; missing records are not) also ends the log.
    if (result.next_sequence != 0 && scan->start_sequence != result.next_sequence) {
      break;
    }
    for (LogRecord& record : scan->decoded) {
      if (record.sequence >= from_sequence) {
        result.records.push_back(std::move(record));
      }
    }
    result.next_sequence = scan->start_sequence + scan->records;
    if (scan->corrupt_tail) {
      ++result.corrupt_records;
      stopped = true;
    }
  }
  return result;
}

FramedLog::FramedLog(FramedLogConfig config) : config_(std::move(config)) {
  if (config_.dir.empty()) {
    throw std::invalid_argument("FramedLog: dir must be set");
  }
  if (config_.segment_max_records == 0) {
    throw std::invalid_argument("FramedLog: segment_max_records must be >= 1");
  }
  std::filesystem::create_directories(config_.dir);

  // Resume after the valid prefix of any existing log: truncate the first
  // torn segment at its last valid record and drop every later segment, so
  // appended records extend a log read_framed_log() fully accepts.
  const auto segments = list_segments(config_.dir, config_.format);
  std::uint64_t resume_start = 1;  // sequences are 1-based; 0 = "no records"
  std::uint64_t resume_records = 0;
  std::filesystem::path resume_path;
  bool broken = false;
  for (const auto& [start, path] : segments) {
    if (broken) {
      std::filesystem::remove(path);
      continue;
    }
    const auto scan = scan_segment(path, config_.format, /*keep_records=*/false,
                                   config_.validate);
    if (!scan) {
      // Unreadable header: drop this and every later segment.
      ++truncated_;
      std::filesystem::remove(path);
      broken = true;
      continue;
    }
    if (!resume_path.empty() &&
        scan->start_sequence != resume_start + resume_records) {
      // Sequence gap: records are missing, the log ends at the previous segment.
      std::filesystem::remove(path);
      broken = true;
      continue;
    }
    resume_start = scan->start_sequence;
    resume_records = scan->records;
    resume_path = path;
    if (scan->corrupt_tail) {
      ++truncated_;
      std::filesystem::resize_file(path, scan->valid_bytes);
      broken = true;
    }
  }

  if (!resume_path.empty()) {
    sequence_ = resume_start + resume_records;
    if (resume_records < config_.segment_max_records) {
      // Keep appending to the (now clean) last segment.
      fd_ = ::open(resume_path.c_str(), O_WRONLY | O_APPEND);
      if (fd_ < 0) {
        throw std::runtime_error("FramedLog: open(" + resume_path.string() +
                                 "): " + std::strerror(errno));
      }
      segment_records_ = resume_records;
    } else {
      open_segment(sequence_);
    }
  } else {
    sequence_ = 1;
    open_segment(sequence_);
  }
  last_sync_monotonic_s_ = monotonic_seconds();
}

FramedLog::~FramedLog() {
  if (fd_ >= 0 && config_.fsync != FsyncPolicy::kOff && unsynced_ > 0) {
    ::fsync(fd_);
  }
  close_segment();
}

void FramedLog::open_segment(std::uint64_t start_sequence) {
  close_segment();
  const std::filesystem::path path =
      segment_path(config_.dir, config_.format, start_sequence);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("FramedLog: open(" + path.string() +
                             "): " + std::strerror(errno));
  }
  ByteWriter header;
  header.raw(std::string_view(config_.format.magic, 4));
  header.u32(config_.format.version);
  header.u64(start_sequence);
  physical_write(header.bytes());
  segment_records_ = 0;
}

void FramedLog::close_segment() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FramedLog::physical_write(const std::string& bytes) {
  std::string buffer = bytes;
  std::size_t write_len = buffer.size();
  bool fail_after_write = false;
  if (config_.fault_hook != nullptr) {
    if (const auto fault = config_.fault_hook->on_write(buffer.size())) {
      switch (fault->kind) {
        case support::IoFaultKind::kShortWrite:
          write_len = buffer.empty() ? 0 : fault->offset % buffer.size();
          fail_after_write = true;
          break;
        case support::IoFaultKind::kEnospc:
          throw std::runtime_error("FramedLog: write: No space left on device "
                                   "(fault injected)");
        case support::IoFaultKind::kCorruptByte:
          // Silent media corruption: the append "succeeds"; only the CRC at
          // read time reveals it.
          if (!buffer.empty()) buffer[fault->offset % buffer.size()] ^= 0x40;
          break;
      }
    }
  }
  std::size_t written = 0;
  while (written < write_len) {
    const ssize_t n = ::write(fd_, buffer.data() + written, write_len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("FramedLog: write: ") +
                               std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  if (fail_after_write) {
    throw std::runtime_error("FramedLog: short write (fault injected)");
  }
}

std::uint64_t FramedLog::append(std::uint8_t type, std::string_view payload) {
  if (segment_records_ >= config_.segment_max_records) {
    if (config_.fsync != FsyncPolicy::kOff && unsynced_ > 0) {
      ::fsync(fd_);
      unsynced_ = 0;
    }
    open_segment(sequence_);
  }
  physical_write(encode_record(type, payload));
  const std::uint64_t assigned = sequence_;
  ++sequence_;
  ++segment_records_;
  ++appended_;
  ++unsynced_;
  maybe_fsync();
  return assigned;
}

void FramedLog::maybe_fsync() {
  bool due = false;
  switch (config_.fsync) {
    case FsyncPolicy::kOff:
      return;
    case FsyncPolicy::kEveryN:
      due = unsynced_ >= config_.fsync_every_n;
      break;
    case FsyncPolicy::kInterval:
      due = monotonic_seconds() - last_sync_monotonic_s_ >= config_.fsync_interval_s;
      break;
  }
  if (due) sync();
}

void FramedLog::sync() {
  if (fd_ < 0 || unsynced_ == 0) return;
  const obs::TraceSpan span(tracer_, fsync_span_name_.c_str());
  if (::fsync(fd_) != 0) {
    support::log_warn("FramedLog: fsync failed: %s", std::strerror(errno));
  }
  unsynced_ = 0;
  last_sync_monotonic_s_ = monotonic_seconds();
}

std::size_t FramedLog::prune(std::uint64_t up_to_sequence) {
  std::size_t removed = 0;
  const auto segments = list_segments(config_.dir, config_.format);
  // The next segment's start is this segment's end, so a segment goes only
  // when it lies wholly before the checkpoint. The open segment is the last
  // in sorted order and is never a candidate.
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first <= up_to_sequence) {
      std::filesystem::remove(segments[i].second);
      ++removed;
    }
  }
  return removed;
}

}  // namespace vire::persist
