#pragma once
// Little-endian binary encoding + CRC32 for the persistence layer's on-disk
// formats (WAL frames, checkpoints — see docs/robustness.md, "Crash
// recovery"). Doubles are serialized by bit pattern, never by text round-
// trip, so a value read back is the *identical* IEEE-754 double — the whole
// bit-identical recovery contract rests on this.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace vire::persist {

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `data`. Used as the per-frame
/// and per-checkpoint integrity check; a torn or bit-flipped record fails it.
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

/// Appends fixed-width little-endian fields to a byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Bit-pattern encoding: the exact IEEE-754 double, NaN payloads included.
  void f64(double v);
  /// u32 length prefix + raw bytes.
  void str(std::string_view v);
  void raw(std::string_view v) { buffer_.append(v); }

  [[nodiscard]] const std::string& bytes() const noexcept { return buffer_; }
  [[nodiscard]] std::string take() noexcept { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Reads fixed-width little-endian fields back. Every accessor returns
/// nullopt once the buffer is exhausted (or a length prefix overruns it) and
/// the reader stays failed — callers check ok() once at the end instead of
/// after every field.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) noexcept : data_(data) {}

  std::optional<std::uint8_t> u8() noexcept;
  std::optional<std::uint16_t> u16() noexcept;
  std::optional<std::uint32_t> u32() noexcept;
  std::optional<std::uint64_t> u64() noexcept;
  std::optional<double> f64() noexcept;
  std::optional<std::string> str();

  [[nodiscard]] bool ok() const noexcept { return !failed_; }
  /// True when every byte was consumed and nothing failed.
  [[nodiscard]] bool exhausted() const noexcept {
    return !failed_ && pos_ == data_.size();
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

 private:
  [[nodiscard]] bool take(std::size_t n) noexcept;

  std::string_view data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace vire::persist
