#include "persist/recovery.h"

#include <stdexcept>
#include <string>

#include "obs/trace.h"
#include "support/log.h"

namespace vire::persist {

RecoveryManager::RecoveryManager(RecoveryConfig config)
    : config_(std::move(config)) {
  if (config_.wal_dir.empty() || config_.checkpoint_dir.empty()) {
    throw std::invalid_argument(
        "RecoveryManager: wal_dir and checkpoint_dir must be set");
  }
}

RecoveryReport RecoveryManager::recover(engine::LocalizationEngine& engine,
                                        sim::Middleware& middleware) {
  RecoveryReport report;
  const obs::Stopwatch watch;
  obs::MetricsRegistry& metrics = engine.metrics();
  obs::Tracer& tracer = engine.tracer();

  obs::Counter& replayed_metric =
      metrics.counter("vire_persist_wal_replayed_total", {},
                      "WAL frames replayed through the pipeline at recovery");
  obs::Counter& corrupt_metric = metrics.counter(
      "vire_persist_wal_corrupt_total", {},
      "Torn/corrupt WAL frames dropped (truncated at open or skipped at read)");
  obs::Histogram& recovery_seconds = metrics.histogram(
      "vire_persist_recovery_seconds", obs::default_latency_buckets_s(), {},
      "Wall time of checkpoint load + WAL replay at recovery");

  // 1. Newest valid checkpoint, falling back past corrupt/mismatched files.
  std::uint64_t from_sequence = 0;
  {
    const obs::TraceSpan span(&tracer, "persist.checkpoint_load");
    CheckpointStoreConfig store_config;
    store_config.dir = config_.checkpoint_dir;
    CheckpointStore store(store_config);
    store.attach_metrics(metrics);
    auto [checkpoint, rejected] =
        store.load_newest_valid(engine_config_fingerprint(engine.config()));
    report.checkpoints_rejected = rejected;
    if (checkpoint.has_value()) {
      report.checkpoint_loaded = true;
      report.checkpoint_sequence = checkpoint->wal_sequence;
      report.recovered_time = checkpoint->sim_time;
      from_sequence = checkpoint->wal_sequence;
      // Counters first: engine/monitor restore() never touch metric
      // counters, exactly so this is the single place they are set.
      restore_counters(metrics, checkpoint->counters);
      engine.restore(checkpoint->engine);
      middleware.restore(checkpoint->middleware);
    }
  }

  // 2. Replay the WAL suffix through the normal pipeline entry points.
  const WalReadResult wal = read_wal(config_.wal_dir, from_sequence);
  report.corrupt_frames = wal.corrupt_frames;
  corrupt_metric.inc(wal.corrupt_frames);
  report.next_wal_sequence =
      wal.next_sequence != 0 ? wal.next_sequence
                             : (from_sequence != 0 ? from_sequence : 1);
  {
    const obs::TraceSpan span(
        &tracer, "persist.replay",
        tracer.enabled()
            ? "{\"frames\":" + std::to_string(wal.frames.size()) + "}"
            : std::string{});
    for (const WalFrame& frame : wal.frames) {
      switch (frame.type) {
        case FrameType::kReading:
          middleware.ingest(frame.reading);
          ++report.readings_replayed;
          break;
        case FrameType::kEvict:
          middleware.evict_stale(frame.time);
          ++report.evicts_replayed;
          break;
        case FrameType::kUpdate:
          report.replayed_fixes.push_back(engine.update(middleware, frame.time));
          report.recovered_time = frame.time;
          ++report.updates_replayed;
          break;
        case FrameType::kAck:
          // Pure bookkeeping for the sender-side resend window; never touches
          // the middleware or engine.
          if (frame.ack_sequence > report.last_ack_sequence) {
            report.last_ack_sequence = frame.ack_sequence;
          }
          break;
      }
      ++report.frames_replayed;
      replayed_metric.inc();
    }
  }

  report.recovery_seconds = watch.elapsed_seconds();
  recovery_seconds.observe(report.recovery_seconds);
  if (report.checkpoint_loaded || report.frames_replayed > 0) {
    support::log_info(
        "recovery: checkpoint@%llu %s, %llu frames replayed "
        "(%llu readings, %llu evicts, %llu updates), %llu corrupt, t=%.3f",
        static_cast<unsigned long long>(report.checkpoint_sequence),
        report.checkpoint_loaded ? "loaded" : "absent",
        static_cast<unsigned long long>(report.frames_replayed),
        static_cast<unsigned long long>(report.readings_replayed),
        static_cast<unsigned long long>(report.evicts_replayed),
        static_cast<unsigned long long>(report.updates_replayed),
        static_cast<unsigned long long>(report.corrupt_frames),
        report.recovered_time);
  }
  return report;
}

}  // namespace vire::persist
