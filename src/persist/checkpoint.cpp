#include "persist/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "persist/binary_io.h"
#include "support/log.h"

namespace vire::persist {

namespace {

constexpr char kMagic[4] = {'V', 'C', 'K', 'P'};

// ---- config fingerprint -----------------------------------------------

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::string_view data) noexcept {
  std::uint64_t hash = kFnvOffset;
  for (const char ch : data) {
    hash ^= static_cast<std::uint8_t>(ch);
    hash *= kFnvPrime;
  }
  return hash;
}

// ---- engine/middleware state encoding ---------------------------------

void write_vec2(ByteWriter& w, const geom::Vec2& v) {
  w.f64(v.x);
  w.f64(v.y);
}

std::optional<geom::Vec2> read_vec2(ByteReader& r) {
  const auto x = r.f64();
  const auto y = r.f64();
  if (!x || !y) return std::nullopt;
  return geom::Vec2{*x, *y};
}

void write_rssi_rows(ByteWriter& w, const std::vector<sim::RssiVector>& rows) {
  w.u32(static_cast<std::uint32_t>(rows.size()));
  for (const sim::RssiVector& row : rows) {
    w.u32(static_cast<std::uint32_t>(row.size()));
    for (const double v : row) w.f64(v);
  }
}

bool read_rssi_rows(ByteReader& r, std::vector<sim::RssiVector>& rows) {
  const auto count = r.u32();
  if (!count) return false;
  rows.clear();
  rows.reserve(*count);
  for (std::uint32_t j = 0; j < *count; ++j) {
    const auto len = r.u32();
    if (!len) return false;
    sim::RssiVector row;
    row.reserve(*len);
    for (std::uint32_t k = 0; k < *len; ++k) {
      const auto v = r.f64();
      if (!v) return false;
      row.push_back(*v);
    }
    rows.push_back(std::move(row));
  }
  return true;
}

}  // namespace

// ---- reusable state codecs ---------------------------------------------
// Exposed in the header: the wire layer reuses them for cross-process tag
// migration (kExportTag/kImportTag) and reference seeding (kSeedExport), so
// a shard's exported state is byte-compatible with its checkpoints.

void write_engine_state(ByteWriter& w, const engine::EngineStateSnapshot& s) {
  w.u32(static_cast<std::uint32_t>(s.reference_ids.size()));
  for (const sim::TagId id : s.reference_ids) w.u32(id);

  w.u32(static_cast<std::uint32_t>(s.tracked.size()));
  for (const auto& [id, name] : s.tracked) {
    w.u32(id);
    w.str(name);
  }

  w.u32(static_cast<std::uint32_t>(s.health.readers.size()));
  for (const auto& reader : s.health.readers) {
    w.u8(reader.quarantined ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(reader.suspect_streak));
    w.u32(static_cast<std::uint32_t>(reader.clean_streak));
    w.u32(static_cast<std::uint32_t>(reader.last_rssi.size()));
    for (const double v : reader.last_rssi) w.f64(v);
    w.f64(reader.last_change);
    w.u8(reader.seen ? 1 : 0);
  }
  w.u64(s.health.quarantines);
  w.u64(s.health.recoveries);

  w.u8(s.has_last_refresh ? 1 : 0);
  w.f64(s.last_refresh);
  write_rssi_rows(w, s.last_reference_rssi);
  w.u32(static_cast<std::uint32_t>(s.grid_rebuilds));
  w.u64(s.fix_sequence);
  w.u32(static_cast<std::uint32_t>(s.auto_dumps));

  w.u32(static_cast<std::uint32_t>(s.trackers.size()));
  for (const auto& t : s.trackers) {
    w.u32(t.tag);
    w.u8(t.state.initialized ? 1 : 0);
    write_vec2(w, t.state.position);
    write_vec2(w, t.state.velocity);
    w.f64(t.state.last_time);
    write_vec2(w, t.state.last_measurement);
    w.f64(t.state.last_measurement_time);
    w.u32(static_cast<std::uint32_t>(t.state.consecutive_outliers));
  }

  w.u32(static_cast<std::uint32_t>(s.last_good.size()));
  for (const auto& h : s.last_good) {
    w.u32(h.tag);
    w.f64(h.time);
    write_vec2(w, h.position);
    write_vec2(w, h.smoothed);
  }

  w.u32(static_cast<std::uint32_t>(s.last_quality.size()));
  for (const auto& q : s.last_quality) {
    w.u32(q.tag);
    w.u8(static_cast<std::uint8_t>(q.quality));
  }
}

bool read_engine_state(ByteReader& r, engine::EngineStateSnapshot& s) {
  const auto n_refs = r.u32();
  if (!n_refs) return false;
  s.reference_ids.clear();
  for (std::uint32_t i = 0; i < *n_refs; ++i) {
    const auto id = r.u32();
    if (!id) return false;
    s.reference_ids.push_back(*id);
  }

  const auto n_tracked = r.u32();
  if (!n_tracked) return false;
  s.tracked.clear();
  for (std::uint32_t i = 0; i < *n_tracked; ++i) {
    const auto id = r.u32();
    auto name = r.str();
    if (!id || !name) return false;
    s.tracked.emplace_back(*id, std::move(*name));
  }

  const auto n_readers = r.u32();
  if (!n_readers) return false;
  s.health.readers.clear();
  for (std::uint32_t i = 0; i < *n_readers; ++i) {
    engine::HealthMonitorState::Reader reader;
    const auto quarantined = r.u8();
    const auto suspect = r.u32();
    const auto clean = r.u32();
    const auto n_rssi = r.u32();
    if (!quarantined || !suspect || !clean || !n_rssi) return false;
    reader.quarantined = *quarantined != 0;
    reader.suspect_streak = static_cast<int>(*suspect);
    reader.clean_streak = static_cast<int>(*clean);
    for (std::uint32_t k = 0; k < *n_rssi; ++k) {
      const auto v = r.f64();
      if (!v) return false;
      reader.last_rssi.push_back(*v);
    }
    const auto last_change = r.f64();
    const auto seen = r.u8();
    if (!last_change || !seen) return false;
    reader.last_change = *last_change;
    reader.seen = *seen != 0;
    s.health.readers.push_back(std::move(reader));
  }
  const auto quarantines = r.u64();
  const auto recoveries = r.u64();
  if (!quarantines || !recoveries) return false;
  s.health.quarantines = *quarantines;
  s.health.recoveries = *recoveries;

  const auto has_refresh = r.u8();
  const auto last_refresh = r.f64();
  if (!has_refresh || !last_refresh) return false;
  s.has_last_refresh = *has_refresh != 0;
  s.last_refresh = *last_refresh;
  if (!read_rssi_rows(r, s.last_reference_rssi)) return false;
  const auto rebuilds = r.u32();
  const auto fix_sequence = r.u64();
  const auto auto_dumps = r.u32();
  if (!rebuilds || !fix_sequence || !auto_dumps) return false;
  s.grid_rebuilds = static_cast<int>(*rebuilds);
  s.fix_sequence = *fix_sequence;
  s.auto_dumps = static_cast<int>(*auto_dumps);

  const auto n_trackers = r.u32();
  if (!n_trackers) return false;
  s.trackers.clear();
  for (std::uint32_t i = 0; i < *n_trackers; ++i) {
    engine::EngineStateSnapshot::Tracker t;
    const auto tag = r.u32();
    const auto initialized = r.u8();
    const auto position = read_vec2(r);
    const auto velocity = read_vec2(r);
    const auto last_time = r.f64();
    const auto last_measurement = read_vec2(r);
    const auto last_measurement_time = r.f64();
    const auto outliers = r.u32();
    if (!tag || !initialized || !position || !velocity || !last_time ||
        !last_measurement || !last_measurement_time || !outliers) {
      return false;
    }
    t.tag = *tag;
    t.state.initialized = *initialized != 0;
    t.state.position = *position;
    t.state.velocity = *velocity;
    t.state.last_time = *last_time;
    t.state.last_measurement = *last_measurement;
    t.state.last_measurement_time = *last_measurement_time;
    t.state.consecutive_outliers = static_cast<int>(*outliers);
    s.trackers.push_back(t);
  }

  const auto n_holds = r.u32();
  if (!n_holds) return false;
  s.last_good.clear();
  for (std::uint32_t i = 0; i < *n_holds; ++i) {
    engine::EngineStateSnapshot::Hold h;
    const auto tag = r.u32();
    const auto time = r.f64();
    const auto position = read_vec2(r);
    const auto smoothed = read_vec2(r);
    if (!tag || !time || !position || !smoothed) return false;
    h.tag = *tag;
    h.time = *time;
    h.position = *position;
    h.smoothed = *smoothed;
    s.last_good.push_back(h);
  }

  const auto n_quality = r.u32();
  if (!n_quality) return false;
  s.last_quality.clear();
  for (std::uint32_t i = 0; i < *n_quality; ++i) {
    const auto tag = r.u32();
    const auto quality = r.u8();
    if (!tag || !quality) return false;
    s.last_quality.push_back(
        {*tag, static_cast<engine::FixQuality>(*quality)});
  }
  return true;
}

void write_middleware_snapshot(ByteWriter& w, const sim::Middleware::Snapshot& s) {
  w.u32(static_cast<std::uint32_t>(s.links.size()));
  for (const auto& link : s.links) {
    w.u32(link.tag);
    w.u16(link.reader);
    w.u32(static_cast<std::uint32_t>(link.samples.size()));
    for (const auto& sample : link.samples) {
      w.f64(sample.time);
      w.f64(sample.rssi_dbm);
    }
  }
}

bool read_middleware_snapshot(ByteReader& r, sim::Middleware::Snapshot& s) {
  const auto n_links = r.u32();
  if (!n_links) return false;
  s.links.clear();
  s.links.reserve(*n_links);
  for (std::uint32_t i = 0; i < *n_links; ++i) {
    sim::Middleware::Snapshot::Link link;
    const auto tag = r.u32();
    const auto reader = r.u16();
    const auto n_samples = r.u32();
    if (!tag || !reader || !n_samples) return false;
    link.tag = *tag;
    link.reader = *reader;
    link.samples.reserve(*n_samples);
    for (std::uint32_t k = 0; k < *n_samples; ++k) {
      const auto time = r.f64();
      const auto rssi = r.f64();
      if (!time || !rssi) return false;
      link.samples.push_back({*time, *rssi});
    }
    s.links.push_back(std::move(link));
  }
  return true;
}

void write_tag_state(ByteWriter& w, const engine::TagStateSnapshot& s) {
  w.str(s.name);
  w.u8(s.has_tracker ? 1 : 0);
  w.u8(s.tracker.initialized ? 1 : 0);
  write_vec2(w, s.tracker.position);
  write_vec2(w, s.tracker.velocity);
  w.f64(s.tracker.last_time);
  write_vec2(w, s.tracker.last_measurement);
  w.f64(s.tracker.last_measurement_time);
  w.u32(static_cast<std::uint32_t>(s.tracker.consecutive_outliers));
  w.u8(s.has_last_good ? 1 : 0);
  w.f64(s.last_good_time);
  write_vec2(w, s.last_good_position);
  write_vec2(w, s.last_good_smoothed);
  w.u8(s.has_last_quality ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(s.last_quality));
}

bool read_tag_state(ByteReader& r, engine::TagStateSnapshot& s) {
  auto name = r.str();
  const auto has_tracker = r.u8();
  const auto initialized = r.u8();
  const auto position = read_vec2(r);
  const auto velocity = read_vec2(r);
  const auto last_time = r.f64();
  const auto last_measurement = read_vec2(r);
  const auto last_measurement_time = r.f64();
  const auto outliers = r.u32();
  const auto has_last_good = r.u8();
  const auto last_good_time = r.f64();
  const auto last_good_position = read_vec2(r);
  const auto last_good_smoothed = read_vec2(r);
  const auto has_last_quality = r.u8();
  const auto last_quality = r.u8();
  if (!name || !has_tracker || !initialized || !position || !velocity ||
      !last_time || !last_measurement || !last_measurement_time || !outliers ||
      !has_last_good || !last_good_time || !last_good_position ||
      !last_good_smoothed || !has_last_quality || !last_quality) {
    return false;
  }
  s.name = std::move(*name);
  s.has_tracker = *has_tracker != 0;
  s.tracker.initialized = *initialized != 0;
  s.tracker.position = *position;
  s.tracker.velocity = *velocity;
  s.tracker.last_time = *last_time;
  s.tracker.last_measurement = *last_measurement;
  s.tracker.last_measurement_time = *last_measurement_time;
  s.tracker.consecutive_outliers = static_cast<int>(*outliers);
  s.has_last_good = *has_last_good != 0;
  s.last_good_time = *last_good_time;
  s.last_good_position = *last_good_position;
  s.last_good_smoothed = *last_good_smoothed;
  s.has_last_quality = *has_last_quality != 0;
  s.last_quality = static_cast<engine::FixQuality>(*last_quality);
  return true;
}

namespace {

std::filesystem::path checkpoint_path(const std::filesystem::path& dir,
                                      std::uint64_t wal_sequence) {
  char name[48];
  std::snprintf(name, sizeof(name), "checkpoint_%012llu.ckpt",
                static_cast<unsigned long long>(wal_sequence));
  return dir / name;
}

std::optional<std::uint64_t> checkpoint_sequence(const std::filesystem::path& path) {
  const std::string name = path.filename().string();
  constexpr std::string_view prefix = "checkpoint_";
  constexpr std::string_view suffix = ".ckpt";
  if (name.size() <= prefix.size() + suffix.size() ||
      name.rfind(prefix, 0) != 0 ||
      name.substr(name.size() - suffix.size()) != suffix) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::stoull(digits);
}

}  // namespace

std::uint64_t engine_config_fingerprint(
    const engine::EngineConfig& config) noexcept {
  // Canonical byte encoding of every fix-affecting field. parallel_workers
  // and observability are excluded on purpose (see header).
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(config.vire.virtual_grid.subdivision));
  w.u8(static_cast<std::uint8_t>(config.vire.virtual_grid.method));
  w.u32(static_cast<std::uint32_t>(
      config.vire.virtual_grid.boundary_extension_cells));
  w.u8(static_cast<std::uint8_t>(config.vire.elimination.mode));
  w.f64(config.vire.elimination.fixed_threshold_db);
  w.f64(config.vire.elimination.initial_threshold_db);
  w.f64(config.vire.elimination.step_db);
  w.f64(config.vire.elimination.min_threshold_db);
  w.f64(config.vire.elimination.min_area_cell_fraction);
  w.u8(static_cast<std::uint8_t>(config.vire.weighting));
  w.f64(config.vire.w1_exponent);
  w.f64(config.tracking.alpha);
  w.f64(config.tracking.beta);
  w.f64(config.tracking.outlier_gate_m);
  w.f64(config.tracking.outlier_gain_scale);
  w.u32(static_cast<std::uint32_t>(config.tracking.outlier_relock_count));
  w.f64(config.tracking.max_speed_mps);
  w.u8(config.enable_tracking ? 1 : 0);
  w.f64(config.min_refresh_interval_s);
  w.u32(static_cast<std::uint32_t>(config.min_valid_readers));
  const engine::DegradationConfig& d = config.degradation;
  w.u8(d.health.enabled ? 1 : 0);
  w.f64(d.health.min_valid_fraction);
  w.f64(d.health.max_median_jump_db);
  w.f64(d.health.stale_after_s);
  w.u32(static_cast<std::uint32_t>(d.health.quarantine_after));
  w.u32(static_cast<std::uint32_t>(d.health.recover_after));
  w.u8(d.enable_fallback ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(d.fallback.k_nearest));
  w.f64(d.fallback.epsilon);
  w.u32(static_cast<std::uint32_t>(d.fallback.min_common_readers));
  w.u32(static_cast<std::uint32_t>(d.fallback_min_readers));
  w.f64(d.hold_max_age_s);
  return fnv1a(w.bytes());
}

std::string serialize(const Checkpoint& checkpoint) {
  ByteWriter body;
  body.u32(kCheckpointVersion);
  body.u64(checkpoint.config_fingerprint);
  body.u64(checkpoint.wal_sequence);
  body.f64(checkpoint.sim_time);
  write_engine_state(body, checkpoint.engine);
  write_middleware_snapshot(body, checkpoint.middleware);
  body.u32(static_cast<std::uint32_t>(checkpoint.counters.size()));
  for (const auto& sample : checkpoint.counters) {
    body.str(sample.name);
    body.str(sample.labels);
    body.u64(sample.value);
  }

  ByteWriter file;
  file.raw(std::string_view(kMagic, 4));
  file.raw(body.bytes());
  file.u32(crc32(body.bytes()));
  return file.take();
}

std::optional<Checkpoint> deserialize(std::string_view data) {
  if (data.size() < 4 + 4 + 4 || std::memcmp(data.data(), kMagic, 4) != 0) {
    return std::nullopt;
  }
  const std::string_view body = data.substr(4, data.size() - 8);
  ByteReader crc_reader(data.substr(data.size() - 4));
  if (crc32(body) != *crc_reader.u32()) return std::nullopt;

  ByteReader r(body);
  const auto version = r.u32();
  if (!version || *version != kCheckpointVersion) return std::nullopt;

  Checkpoint ckpt;
  const auto fingerprint = r.u64();
  const auto wal_sequence = r.u64();
  const auto sim_time = r.f64();
  if (!fingerprint || !wal_sequence || !sim_time) return std::nullopt;
  ckpt.config_fingerprint = *fingerprint;
  ckpt.wal_sequence = *wal_sequence;
  ckpt.sim_time = *sim_time;
  if (!read_engine_state(r, ckpt.engine)) return std::nullopt;
  if (!read_middleware_snapshot(r, ckpt.middleware)) return std::nullopt;
  const auto n_counters = r.u32();
  if (!n_counters) return std::nullopt;
  for (std::uint32_t i = 0; i < *n_counters; ++i) {
    auto name = r.str();
    auto labels = r.str();
    const auto value = r.u64();
    if (!name || !labels || !value) return std::nullopt;
    ckpt.counters.push_back({std::move(*name), std::move(*labels), *value});
  }
  if (!r.exhausted()) return std::nullopt;
  return ckpt;
}

std::vector<Checkpoint::CounterSample> sample_counters(
    const obs::MetricsRegistry& registry) {
  std::vector<Checkpoint::CounterSample> samples;
  for (const obs::MetricSnapshot& metric : registry.snapshot()) {
    if (metric.kind != obs::MetricKind::kCounter) continue;
    samples.push_back({metric.name, metric.labels, metric.counter_value});
  }
  return samples;
}

void restore_counters(obs::MetricsRegistry& registry,
                      const std::vector<Checkpoint::CounterSample>& samples) {
  for (const auto& sample : samples) {
    obs::Counter& counter = registry.counter(sample.name, sample.labels);
    const std::uint64_t current = counter.value();
    if (current > sample.value) {
      // A zero sample just means the counter only started moving in THIS
      // process (e.g. the recovery's own vire_persist_* metrics) — normal,
      // not worth a warning. A non-zero mismatch is a real anomaly.
      if (sample.value == 0) continue;
      support::log_warn(
          "restore_counters: %s{%s} already at %llu > checkpointed %llu, "
          "leaving it",
          sample.name.c_str(), sample.labels.c_str(),
          static_cast<unsigned long long>(current),
          static_cast<unsigned long long>(sample.value));
      continue;
    }
    counter.inc(sample.value - current);
  }
}

CheckpointStore::CheckpointStore(CheckpointStoreConfig config)
    : config_(std::move(config)) {
  if (config_.dir.empty()) {
    throw std::invalid_argument("CheckpointStore: dir must be set");
  }
  if (config_.keep == 0) {
    throw std::invalid_argument("CheckpointStore: keep must be >= 1");
  }
  std::filesystem::create_directories(config_.dir);
}

void CheckpointStore::attach_metrics(obs::MetricsRegistry& registry) {
  written_metric_ = &registry.counter("vire_persist_checkpoint_written_total", {},
                                      "Checkpoints written (atomic rename)");
  loaded_metric_ = &registry.counter("vire_persist_checkpoint_loaded_total", {},
                                     "Checkpoints successfully loaded");
  rejected_metric_ = &registry.counter(
      "vire_persist_checkpoint_rejected_total", {},
      "Checkpoint files rejected at load (CRC/version/config mismatch)");
}

void CheckpointStore::write(const Checkpoint& checkpoint) {
  support::atomic_write_file(checkpoint_path(config_.dir, checkpoint.wal_sequence),
                             serialize(checkpoint), config_.write_options);
  if (written_metric_ != nullptr) written_metric_->inc();

  auto sequences = stored_sequences();
  while (sequences.size() > config_.keep) {
    std::filesystem::remove(checkpoint_path(config_.dir, sequences.front()));
    sequences.erase(sequences.begin());
  }
}

std::vector<std::uint64_t> CheckpointStore::stored_sequences() const {
  std::vector<std::uint64_t> sequences;
  if (!std::filesystem::exists(config_.dir)) return sequences;
  for (const auto& entry : std::filesystem::directory_iterator(config_.dir)) {
    if (!entry.is_regular_file()) continue;
    if (const auto seq = checkpoint_sequence(entry.path())) {
      sequences.push_back(*seq);
    }
  }
  std::sort(sequences.begin(), sequences.end());
  return sequences;
}

CheckpointStore::LoadResult CheckpointStore::load_newest_valid(
    std::uint64_t expected_config_fingerprint) const {
  LoadResult result;
  auto sequences = stored_sequences();
  for (auto it = sequences.rbegin(); it != sequences.rend(); ++it) {
    const std::filesystem::path path = checkpoint_path(config_.dir, *it);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      ++result.rejected;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto ckpt = deserialize(buf.str());
    if (!ckpt || ckpt->config_fingerprint != expected_config_fingerprint) {
      support::log_warn("CheckpointStore: rejecting %s (%s)",
                        path.string().c_str(),
                        !ckpt ? "corrupt or wrong version"
                              : "config fingerprint mismatch");
      ++result.rejected;
      continue;
    }
    result.checkpoint = std::move(ckpt);
    break;
  }
  if (loaded_metric_ != nullptr && result.checkpoint.has_value()) {
    loaded_metric_->inc();
  }
  if (rejected_metric_ != nullptr) rejected_metric_->inc(result.rejected);
  return result;
}

}  // namespace vire::persist
