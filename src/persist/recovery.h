#pragma once
// RecoveryManager: deterministic crash recovery = newest valid checkpoint +
// WAL-suffix replay through the normal pipeline (docs/robustness.md, "Crash
// recovery").
//
// Recovery is NOT a special interpretation layer: after restoring the
// checkpointed engine/middleware/counter state, the manager feeds each WAL
// frame back through the exact same entry points the live process used —
// Middleware::ingest(), Middleware::evict_stale(), LocalizationEngine::
// update(). Because every one of those is a deterministic function of its
// input stream, the recovered process's fixes are bit-identical to an
// uninterrupted run, at any parallel_workers setting (the crash drill in
// examples/crash_drill.cpp locks this).
//
// Call order on restart:
//   1. build engine + middleware from the SAME config as the crashed run;
//   2. RecoveryManager::recover(engine, middleware)  — with NO journal
//      attached, so replay does not re-journal itself;
//   3. construct the WalWriter (it resumes after the valid prefix) and
//      attach it; continue operating.

#include <cstdint>
#include <filesystem>
#include <vector>

#include "engine/localization_engine.h"
#include "persist/checkpoint.h"
#include "persist/wal.h"
#include "sim/middleware.h"

namespace vire::persist {

struct RecoveryConfig {
  std::filesystem::path wal_dir;
  std::filesystem::path checkpoint_dir;
};

struct RecoveryReport {
  bool checkpoint_loaded = false;
  /// WAL sequence of the loaded checkpoint (replay starts there).
  std::uint64_t checkpoint_sequence = 0;
  std::uint64_t checkpoints_rejected = 0;
  std::uint64_t frames_replayed = 0;
  std::uint64_t readings_replayed = 0;
  std::uint64_t evicts_replayed = 0;
  std::uint64_t updates_replayed = 0;
  /// Highest ingest-batch ack marker replayed (0 when none) — the sender
  /// resends only batches past this sequence after a restart.
  std::uint64_t last_ack_sequence = 0;
  /// Torn/corrupt frames dropped at the WAL tail.
  std::uint64_t corrupt_frames = 0;
  /// Sequence the next WAL frame will get (a fresh WalWriter agrees).
  std::uint64_t next_wal_sequence = 0;
  /// Simulation time the pipeline is restored to: the last replayed update
  /// marker, else the checkpoint's time, else 0.
  sim::SimTime recovered_time = 0.0;
  double recovery_seconds = 0.0;
  /// Fixes produced by each replayed update marker, in order — the replay
  /// half of the bit-identity contract, diffable against a golden trace.
  std::vector<std::vector<engine::Fix>> replayed_fixes;
};

/// Deterministic catch-up helper for recovered *simulated* pipelines. The
/// recovered middleware already holds every reading up to the WAL's end, so
/// when the driving simulator is re-run from t=0 to regenerate its stream,
/// deliveries must be suppressed until the recovered time — after that the
/// gate opens and the stream flows again. Readings regenerated for the
/// overlap window re-deliver idempotently anyway (the middleware's
/// last-write-wins duplicate policy replaces them in place with identical
/// values), so an approximately-placed gate still converges; closing it
/// during catch-up just keeps the replayed window byte-for-byte untouched.
/// Optionally wraps an inner interceptor (e.g. a fault::FaultInjector) so
/// the inner one consumes the exact same stream as in the original run —
/// its internal state stays deterministic while the gate drops the output.
class CatchUpGate final : public sim::ReadingInterceptor {
 public:
  explicit CatchUpGate(sim::ReadingInterceptor* inner = nullptr) noexcept
      : inner_(inner) {}

  void set_open(bool open) noexcept { open_ = open; }
  [[nodiscard]] bool open() const noexcept { return open_; }

  void process(const sim::RssiReading& reading,
               std::vector<sim::RssiReading>& out) override {
    buffer_.clear();
    if (inner_ != nullptr) {
      inner_->process(reading, buffer_);
    } else {
      buffer_.push_back(reading);
    }
    if (open_) out.insert(out.end(), buffer_.begin(), buffer_.end());
  }

  void drain(sim::SimTime now, std::vector<sim::RssiReading>& out) override {
    buffer_.clear();
    if (inner_ != nullptr) inner_->drain(now, buffer_);
    if (open_) out.insert(out.end(), buffer_.begin(), buffer_.end());
  }

 private:
  sim::ReadingInterceptor* inner_;
  bool open_ = true;
  std::vector<sim::RssiReading> buffer_;
};

class RecoveryManager {
 public:
  explicit RecoveryManager(RecoveryConfig config);

  /// Restores `engine` and `middleware` to the crashed process's state.
  /// Registers and updates vire_persist_checkpoint_{loaded,rejected}_total,
  /// vire_persist_wal_{replayed,corrupt}_total and the
  /// vire_persist_recovery_seconds histogram in engine.metrics(), and emits
  /// persist.checkpoint_load / persist.replay spans on engine.tracer().
  /// A missing WAL/checkpoint directory is a cold start: returns an empty
  /// report, the engine is untouched.
  RecoveryReport recover(engine::LocalizationEngine& engine,
                         sim::Middleware& middleware);

  [[nodiscard]] const RecoveryConfig& config() const noexcept { return config_; }

 private:
  RecoveryConfig config_;
};

}  // namespace vire::persist
