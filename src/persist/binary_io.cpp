#include "persist/binary_io.h"

#include <array>
#include <cstring>

namespace vire::persist {

namespace {

std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1U) : c >> 1U;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xFFU] ^ (crc >> 8U);
  }
  return crc ^ 0xFFFFFFFFU;
}

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v & 0xFFU));
  u8(static_cast<std::uint8_t>(v >> 8U));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v & 0xFFFFU));
  u16(static_cast<std::uint16_t>(v >> 16U));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v & 0xFFFFFFFFU));
  u32(static_cast<std::uint32_t>(v >> 32U));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buffer_.append(v);
}

bool ByteReader::take(std::size_t n) noexcept {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

std::optional<std::uint8_t> ByteReader::u8() noexcept {
  if (!take(1)) return std::nullopt;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::optional<std::uint16_t> ByteReader::u16() noexcept {
  const auto lo = u8();
  const auto hi = u8();
  if (!lo || !hi) return std::nullopt;
  return static_cast<std::uint16_t>(*lo | (static_cast<std::uint16_t>(*hi) << 8U));
}

std::optional<std::uint32_t> ByteReader::u32() noexcept {
  const auto lo = u16();
  const auto hi = u16();
  if (!lo || !hi) return std::nullopt;
  return *lo | (static_cast<std::uint32_t>(*hi) << 16U);
}

std::optional<std::uint64_t> ByteReader::u64() noexcept {
  const auto lo = u32();
  const auto hi = u32();
  if (!lo || !hi) return std::nullopt;
  return *lo | (static_cast<std::uint64_t>(*hi) << 32U);
}

std::optional<double> ByteReader::f64() noexcept {
  const auto bits = u64();
  if (!bits) return std::nullopt;
  double v = 0.0;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

std::optional<std::string> ByteReader::str() {
  const auto len = u32();
  if (!len || !take(*len)) return std::nullopt;
  std::string out(data_.substr(pos_, *len));
  pos_ += *len;
  return out;
}

}  // namespace vire::persist
