#pragma once
// Write-ahead journal of the localization pipeline's accepted input (see
// docs/robustness.md, "Crash recovery").
//
// The middleware's aggregates — and therefore the engine's fixes — are a
// pure deterministic function of the accepted-reading stream plus the
// evict/update call sequence. Journaling exactly that stream, in order,
// makes the whole pipeline replayable: restore the latest checkpoint, re-run
// the WAL suffix through the normal ingest()/evict_stale()/update() path,
// and the recovered process is bit-identical to one that never crashed.
//
// On-disk format (all integers little-endian, doubles by bit pattern):
//   segment file wal-<start_sequence>.log:
//     "VWAL" magic | u32 version | u64 start_sequence      (header)
//     frame*                                               (append-only)
//   frame:
//     u32 payload_len | u8 type | payload | u32 crc32(type byte + payload)
//   payloads:
//     kReading: f64 time | u32 tag | u16 reader | f64 rssi_dbm
//     kEvict:   f64 now
//     kUpdate:  f64 now
//     kAck:     u64 ingest-batch sequence
//
// A crash can tear at most the tail of the newest segment. Both the reader
// and the writer treat the first CRC/decode failure as end-of-log: the
// reader stops there (counting the bad frame), the writer truncates the
// segment at the same point and deletes any later segments, so the log is
// again a valid prefix of history. Frames are numbered by a global sequence
// (header start + position) that survives rotation.

#include <cstdint>
#include <filesystem>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/types.h"
#include "support/atomic_file.h"

namespace vire::persist {

inline constexpr std::uint32_t kWalVersion = 1;

enum class FrameType : std::uint8_t {
  kReading = 1,  ///< one reading accepted by Middleware::ingest
  kEvict = 2,    ///< Middleware::evict_stale(now)
  kUpdate = 3,   ///< engine update(now) boundary — written BEFORE the update
                 ///< runs, so a crash mid-update replays it after recovery
  kAck = 4,      ///< supervisor ingest-batch ack boundary — written AFTER the
                 ///< batch's readings, so a recovered shard reports exactly
                 ///< the batches whose readings are durably journaled
};

struct WalFrame {
  FrameType type = FrameType::kReading;
  std::uint64_t sequence = 0;
  sim::RssiReading reading;         ///< valid for kReading
  sim::SimTime time = 0.0;          ///< valid for kEvict / kUpdate
  std::uint64_t ack_sequence = 0;   ///< valid for kAck
};

enum class FsyncPolicy {
  kOff,      ///< never fsync (benches; data loss bounded only by the OS)
  kEveryN,   ///< fsync after every N appended frames
  kInterval, ///< fsync when more than `fsync_interval_s` passed since the last
};

struct WalConfig {
  std::filesystem::path dir;
  /// Frames per segment before rotating to a new file.
  std::uint64_t segment_max_frames = 8192;
  FsyncPolicy fsync = FsyncPolicy::kEveryN;
  std::uint64_t fsync_every_n = 64;
  double fsync_interval_s = 0.2;
  /// Testing seam (fault::DiskFaultInjector); nullptr in production.
  support::IoFaultHook* fault_hook = nullptr;
};

struct WalReadResult {
  std::vector<WalFrame> frames;  ///< sequence >= from_sequence, in order
  /// Frames dropped at the first CRC/decode failure (torn tail).
  std::uint64_t corrupt_frames = 0;
  /// Sequence the next appended frame would get.
  std::uint64_t next_sequence = 0;
};

/// Reads every valid frame with sequence >= `from_sequence` from the
/// segments under `dir`. Stops at the first corrupt frame (counting it);
/// missing directory reads as an empty log. Throws std::runtime_error only
/// on environmental I/O errors (unreadable directory).
[[nodiscard]] WalReadResult read_wal(const std::filesystem::path& dir,
                                     std::uint64_t from_sequence = 0);

/// Append-only journal writer. Plugs into the middleware as its
/// ReadingJournal (attach_journal) and additionally records engine-update
/// markers. Reopening an existing directory resumes after the valid prefix:
/// the torn tail, if any, is truncated (and counted) exactly as read_wal
/// would skip it.
class WalWriter final : public sim::ReadingJournal {
 public:
  explicit WalWriter(WalConfig config);
  ~WalWriter() override;

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  void on_accepted(const sim::RssiReading& reading) override;
  void on_evict(sim::SimTime now) override;
  /// Journal an engine-update boundary. Call immediately BEFORE
  /// engine.update(middleware, now): recovery then replays an update the
  /// crash interrupted, instead of losing it.
  void append_update_marker(sim::SimTime now);
  /// Journal an ingest-batch ack boundary. Call AFTER every reading of the
  /// batch has been journaled: recovery then reports the highest ack marker
  /// it replayed, and the sender resends only batches past it (resends are
  /// idempotent under the middleware's last-write-wins duplicate policy).
  void append_ack_marker(std::uint64_t ack_sequence);

  /// Force an fsync of the current segment now, regardless of policy.
  void sync();

  /// Sequence the next frame will get.
  [[nodiscard]] std::uint64_t next_sequence() const noexcept { return sequence_; }
  /// Frames appended by this writer instance.
  [[nodiscard]] std::uint64_t appended_count() const noexcept { return appended_; }
  /// Torn frames dropped from the tail when this writer (re)opened the log.
  [[nodiscard]] std::uint64_t truncated_frames() const noexcept {
    return truncated_;
  }

  /// Deletes segments whose every frame has sequence < `up_to_sequence`
  /// (safe after a checkpoint at that sequence). Returns segments removed.
  std::size_t prune(std::uint64_t up_to_sequence);

  /// Registers vire_persist_wal_{appended,corrupt}_total. Pure side channel.
  void attach_metrics(obs::MetricsRegistry& registry);
  /// Emits persist.wal_fsync spans. Pass nullptr to detach.
  void attach_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  [[nodiscard]] const WalConfig& config() const noexcept { return config_; }

 private:
  void open_segment(std::uint64_t start_sequence);
  void close_segment() noexcept;
  void append_frame(FrameType type, const std::string& payload);
  void physical_write(const std::string& bytes);
  void maybe_fsync();

  WalConfig config_;
  int fd_ = -1;
  std::uint64_t sequence_ = 0;          ///< next frame's global sequence
  std::uint64_t segment_frames_ = 0;    ///< frames in the open segment
  std::uint64_t appended_ = 0;
  std::uint64_t truncated_ = 0;
  std::uint64_t unsynced_ = 0;          ///< frames since the last fsync
  double last_sync_monotonic_s_ = 0.0;  ///< for FsyncPolicy::kInterval
  obs::Counter* appended_metric_ = nullptr;
  obs::Counter* corrupt_metric_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace vire::persist
