#pragma once
// Line segments and intersection predicates used by the RF ray tracer
// (wall reflections and through-wall attenuation both need robust
// segment/segment tests).

#include <optional>

#include "geom/vec2.h"

namespace vire::geom {

struct Segment {
  Vec2 a;
  Vec2 b;

  [[nodiscard]] double length() const noexcept { return a.distance_to(b); }
  [[nodiscard]] Vec2 direction() const noexcept { return (b - a).normalized(); }
  [[nodiscard]] Vec2 midpoint() const noexcept { return (a + b) * 0.5; }
  /// Point at parameter t in [0,1].
  [[nodiscard]] Vec2 at(double t) const noexcept { return lerp(a, b, t); }
  /// Unit normal (CCW perpendicular of the direction).
  [[nodiscard]] Vec2 normal() const noexcept { return direction().perp(); }

  /// Closest point on the segment to p.
  [[nodiscard]] Vec2 closest_point(Vec2 p) const noexcept;
  [[nodiscard]] double distance_to(Vec2 p) const noexcept {
    return closest_point(p).distance_to(p);
  }
};

/// Result of a segment/segment intersection.
struct SegmentHit {
  Vec2 point;   ///< intersection point
  double t;     ///< parameter along the first segment, in [0,1]
  double u;     ///< parameter along the second segment, in [0,1]
};

/// Proper intersection of two segments (parallel/collinear overlap returns
/// nullopt — adequate for RF ray tracing where grazing rays carry no power).
/// `eps` widens/narrows the inclusive parameter range.
[[nodiscard]] std::optional<SegmentHit> intersect(const Segment& s1, const Segment& s2,
                                                  double eps = 1e-12) noexcept;

/// Mirrors point p across the infinite line through the segment.
/// Used by the image method to construct reflected transmitter images.
[[nodiscard]] Vec2 mirror_across(const Segment& wall, Vec2 p) noexcept;

}  // namespace vire::geom
