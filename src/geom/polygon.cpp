#include "geom/polygon.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace vire::geom {

std::vector<Segment> Aabb::edges() const {
  return {Segment{{lo.x, lo.y}, {hi.x, lo.y}}, Segment{{hi.x, lo.y}, {hi.x, hi.y}},
          Segment{{hi.x, hi.y}, {lo.x, hi.y}}, Segment{{lo.x, hi.y}, {lo.x, lo.y}}};
}

Polygon::Polygon(std::vector<Vec2> vertices) : vertices_(std::move(vertices)) {
  if (vertices_.size() < 3) {
    throw std::invalid_argument("Polygon: needs at least 3 vertices");
  }
}

Polygon Polygon::rectangle(Vec2 lo, Vec2 hi) {
  return Polygon({{lo.x, lo.y}, {hi.x, lo.y}, {hi.x, hi.y}, {lo.x, hi.y}});
}

std::vector<Segment> Polygon::edges() const {
  std::vector<Segment> out;
  out.reserve(vertices_.size());
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    out.push_back({vertices_[i], vertices_[(i + 1) % vertices_.size()]});
  }
  return out;
}

Aabb Polygon::bounding_box() const {
  Aabb box{{std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()},
           {-std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity()}};
  for (const auto& v : vertices_) {
    box.lo.x = std::min(box.lo.x, v.x);
    box.lo.y = std::min(box.lo.y, v.y);
    box.hi.x = std::max(box.hi.x, v.x);
    box.hi.y = std::max(box.hi.y, v.y);
  }
  return box;
}

double Polygon::area() const noexcept {
  double twice = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2 a = vertices_[i];
    const Vec2 b = vertices_[(i + 1) % vertices_.size()];
    twice += a.cross(b);
  }
  return std::abs(twice) * 0.5;
}

bool Polygon::contains(Vec2 p) const noexcept {
  constexpr double kBoundaryTol = 1e-9;
  bool inside = false;
  for (std::size_t i = 0, j = vertices_.size() - 1; i < vertices_.size(); j = i++) {
    const Vec2 a = vertices_[j];
    const Vec2 b = vertices_[i];
    if (Segment{a, b}.distance_to(p) <= kBoundaryTol) return true;
    const bool crosses = (b.y > p.y) != (a.y > p.y);
    if (crosses) {
      const double x_at = b.x + (p.y - b.y) / (a.y - b.y) * (a.x - b.x);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

}  // namespace vire::geom
