#pragma once
// Regular 2D grid index math. Used for (a) the real reference-tag grid,
// (b) the virtual reference grid / proximity maps, and (c) the correlated
// shadowing field lattice. Cells are addressed (col, row) with the origin
// at the lower-left; linear indices are row-major.

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "geom/vec2.h"

namespace vire::geom {

/// Integer grid coordinate.
struct GridIndex {
  int col = 0;  ///< x direction
  int row = 0;  ///< y direction
  friend constexpr bool operator==(GridIndex, GridIndex) noexcept = default;
};

/// A regular lattice of `cols x rows` nodes with spacing `step` (metres),
/// anchored at `origin` (node (0,0) sits exactly at origin).
class RegularGrid {
 public:
  RegularGrid(Vec2 origin, double step, int cols, int rows);

  [[nodiscard]] Vec2 origin() const noexcept { return origin_; }
  [[nodiscard]] double step() const noexcept { return step_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }
  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  }

  /// Physical position of node (col, row). No bounds check (hot path).
  [[nodiscard]] Vec2 position(GridIndex idx) const noexcept {
    return {origin_.x + idx.col * step_, origin_.y + idx.row * step_};
  }
  [[nodiscard]] Vec2 position(std::size_t linear) const noexcept {
    return position(from_linear(linear));
  }

  /// Row-major linear index.
  [[nodiscard]] std::size_t to_linear(GridIndex idx) const noexcept {
    return static_cast<std::size_t>(idx.row) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(idx.col);
  }
  [[nodiscard]] GridIndex from_linear(std::size_t linear) const noexcept {
    return {static_cast<int>(linear % static_cast<std::size_t>(cols_)),
            static_cast<int>(linear / static_cast<std::size_t>(cols_))};
  }

  [[nodiscard]] bool contains(GridIndex idx) const noexcept {
    return idx.col >= 0 && idx.col < cols_ && idx.row >= 0 && idx.row < rows_;
  }

  /// Nearest node to a physical position (clamped to the grid).
  [[nodiscard]] GridIndex nearest(Vec2 p) const noexcept;

  /// The cell (lower-left node index) containing p, clamped so that the cell
  /// is valid (i.e. col in [0, cols-2], row in [0, rows-2]).
  [[nodiscard]] GridIndex cell_of(Vec2 p) const;

  /// Fractional coordinates of p inside its (clamped) cell, each in [0,1].
  struct CellLocal {
    GridIndex cell;
    double fx = 0.0;
    double fy = 0.0;
  };
  [[nodiscard]] CellLocal locate(Vec2 p) const;

  /// Physical bounding box spanned by the nodes.
  [[nodiscard]] Vec2 min_corner() const noexcept { return origin_; }
  [[nodiscard]] Vec2 max_corner() const noexcept {
    return {origin_.x + (cols_ - 1) * step_, origin_.y + (rows_ - 1) * step_};
  }
  [[nodiscard]] bool covers(Vec2 p) const noexcept {
    const Vec2 lo = min_corner(), hi = max_corner();
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  /// 4-connected neighbours of a node that lie inside the grid.
  [[nodiscard]] std::vector<GridIndex> neighbors4(GridIndex idx) const;

 private:
  Vec2 origin_;
  double step_;
  int cols_;
  int rows_;
};

/// Dense scalar field over a RegularGrid with bilinear sampling, used by the
/// correlated shadowing model and by diagnostic heatmaps.
class GridField {
 public:
  explicit GridField(RegularGrid grid, double initial = 0.0);

  [[nodiscard]] const RegularGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] double& at(GridIndex idx) { return values_[grid_.to_linear(idx)]; }
  [[nodiscard]] double at(GridIndex idx) const { return values_[grid_.to_linear(idx)]; }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }
  [[nodiscard]] std::vector<double>& values() noexcept { return values_; }

  /// Bilinear interpolation at a physical position; positions outside the
  /// grid are clamped to the boundary.
  [[nodiscard]] double sample(Vec2 p) const;

 private:
  RegularGrid grid_;
  std::vector<double> values_;
};

}  // namespace vire::geom
