#include "geom/grid.h"

#include <algorithm>
#include <cmath>

namespace vire::geom {

RegularGrid::RegularGrid(Vec2 origin, double step, int cols, int rows)
    : origin_(origin), step_(step), cols_(cols), rows_(rows) {
  if (step <= 0.0) throw std::invalid_argument("RegularGrid: step must be > 0");
  if (cols < 1 || rows < 1) {
    throw std::invalid_argument("RegularGrid: needs at least 1x1 nodes");
  }
}

GridIndex RegularGrid::nearest(Vec2 p) const noexcept {
  const int col = static_cast<int>(std::lround((p.x - origin_.x) / step_));
  const int row = static_cast<int>(std::lround((p.y - origin_.y) / step_));
  return {std::clamp(col, 0, cols_ - 1), std::clamp(row, 0, rows_ - 1)};
}

GridIndex RegularGrid::cell_of(Vec2 p) const {
  if (cols_ < 2 || rows_ < 2) {
    throw std::logic_error("RegularGrid::cell_of: grid has no cells");
  }
  const int col = static_cast<int>(std::floor((p.x - origin_.x) / step_));
  const int row = static_cast<int>(std::floor((p.y - origin_.y) / step_));
  return {std::clamp(col, 0, cols_ - 2), std::clamp(row, 0, rows_ - 2)};
}

RegularGrid::CellLocal RegularGrid::locate(Vec2 p) const {
  const GridIndex cell = cell_of(p);
  const Vec2 base = position(cell);
  CellLocal out;
  out.cell = cell;
  out.fx = std::clamp((p.x - base.x) / step_, 0.0, 1.0);
  out.fy = std::clamp((p.y - base.y) / step_, 0.0, 1.0);
  return out;
}

std::vector<GridIndex> RegularGrid::neighbors4(GridIndex idx) const {
  std::vector<GridIndex> out;
  out.reserve(4);
  const GridIndex candidates[4] = {{idx.col - 1, idx.row},
                                   {idx.col + 1, idx.row},
                                   {idx.col, idx.row - 1},
                                   {idx.col, idx.row + 1}};
  for (const auto& c : candidates) {
    if (contains(c)) out.push_back(c);
  }
  return out;
}

GridField::GridField(RegularGrid grid, double initial)
    : grid_(grid), values_(grid.node_count(), initial) {}

double GridField::sample(Vec2 p) const {
  if (grid_.cols() < 2 || grid_.rows() < 2) return values_.empty() ? 0.0 : values_[0];
  const auto loc = grid_.locate(p);
  const GridIndex c = loc.cell;
  const double v00 = at({c.col, c.row});
  const double v10 = at({c.col + 1, c.row});
  const double v01 = at({c.col, c.row + 1});
  const double v11 = at({c.col + 1, c.row + 1});
  const double bottom = v00 + (v10 - v00) * loc.fx;
  const double top = v01 + (v11 - v01) * loc.fx;
  return bottom + (top - bottom) * loc.fy;
}

}  // namespace vire::geom
