#pragma once
// Simple polygons (room outlines, obstacle footprints) with containment and
// edge extraction for the RF ray tracer.

#include <vector>

#include "geom/segment.h"
#include "geom/vec2.h"

namespace vire::geom {

/// Axis-aligned bounding box.
struct Aabb {
  Vec2 lo;
  Vec2 hi;

  [[nodiscard]] bool contains(Vec2 p) const noexcept {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  [[nodiscard]] Vec2 center() const noexcept { return (lo + hi) * 0.5; }
  [[nodiscard]] double width() const noexcept { return hi.x - lo.x; }
  [[nodiscard]] double height() const noexcept { return hi.y - lo.y; }
  /// Grows the box symmetrically by `margin` on all sides.
  [[nodiscard]] Aabb expanded(double margin) const noexcept {
    return {{lo.x - margin, lo.y - margin}, {hi.x + margin, hi.y + margin}};
  }
  /// Four edges as segments, counter-clockwise starting at the bottom edge.
  [[nodiscard]] std::vector<Segment> edges() const;
};

/// Simple (non-self-intersecting) polygon, vertices in order (CW or CCW).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Vec2> vertices);

  /// Axis-aligned rectangle helper.
  static Polygon rectangle(Vec2 lo, Vec2 hi);

  [[nodiscard]] const std::vector<Vec2>& vertices() const noexcept { return vertices_; }
  [[nodiscard]] std::size_t size() const noexcept { return vertices_.size(); }
  [[nodiscard]] std::vector<Segment> edges() const;
  [[nodiscard]] Aabb bounding_box() const;
  [[nodiscard]] double area() const noexcept;  ///< signed-area magnitude

  /// Even-odd (crossing-number) point containment; boundary points count
  /// as inside within a small tolerance.
  [[nodiscard]] bool contains(Vec2 p) const noexcept;

 private:
  std::vector<Vec2> vertices_;
};

}  // namespace vire::geom
