#pragma once
// 2D vector/point primitives. The whole system operates in a planar metric
// space (metres), matching the paper's 2D regular reference-tag grid.

#include <cmath>
#include <compare>
#include <cstdio>
#include <string>

namespace vire::geom {

/// 2D point / vector in metres.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const noexcept { return {x / s, y / s}; }
  constexpr Vec2 operator-() const noexcept { return {-x, -y}; }
  constexpr Vec2& operator+=(Vec2 o) noexcept { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) noexcept { x -= o.x; y -= o.y; return *this; }
  constexpr Vec2& operator*=(double s) noexcept { x *= s; y *= s; return *this; }

  friend constexpr bool operator==(Vec2 a, Vec2 b) noexcept = default;

  [[nodiscard]] constexpr double dot(Vec2 o) const noexcept { return x * o.x + y * o.y; }
  /// 2D cross product (z-component of the 3D cross product).
  [[nodiscard]] constexpr double cross(Vec2 o) const noexcept { return x * o.y - y * o.x; }
  [[nodiscard]] constexpr double norm2() const noexcept { return x * x + y * y; }
  [[nodiscard]] double norm() const noexcept { return std::hypot(x, y); }
  [[nodiscard]] double distance_to(Vec2 o) const noexcept { return (*this - o).norm(); }
  /// Unit vector; returns {0,0} for the zero vector.
  [[nodiscard]] Vec2 normalized() const noexcept {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
  /// Counter-clockwise perpendicular.
  [[nodiscard]] constexpr Vec2 perp() const noexcept { return {-y, x}; }
  [[nodiscard]] std::string to_string() const {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "(%.3f, %.3f)", x, y);
    return buf;
  }
};

constexpr Vec2 operator*(double s, Vec2 v) noexcept { return v * s; }

/// Linear interpolation: a + t*(b-a).
constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) noexcept { return a + (b - a) * t; }

/// Euclidean distance — the paper's estimation-error metric
/// e = sqrt((x-x0)^2 + (y-y0)^2).
inline double distance(Vec2 a, Vec2 b) noexcept { return a.distance_to(b); }

}  // namespace vire::geom
