#include "geom/segment.h"

#include <algorithm>

namespace vire::geom {

Vec2 Segment::closest_point(Vec2 p) const noexcept {
  const Vec2 d = b - a;
  const double len2 = d.norm2();
  if (len2 <= 0.0) return a;
  const double t = std::clamp((p - a).dot(d) / len2, 0.0, 1.0);
  return a + d * t;
}

std::optional<SegmentHit> intersect(const Segment& s1, const Segment& s2,
                                    double eps) noexcept {
  const Vec2 r = s1.b - s1.a;
  const Vec2 s = s2.b - s2.a;
  const double denom = r.cross(s);
  if (std::abs(denom) < 1e-15) return std::nullopt;  // parallel or degenerate
  const Vec2 qp = s2.a - s1.a;
  const double t = qp.cross(s) / denom;
  const double u = qp.cross(r) / denom;
  if (t < -eps || t > 1.0 + eps || u < -eps || u > 1.0 + eps) return std::nullopt;
  return SegmentHit{s1.at(std::clamp(t, 0.0, 1.0)), t, u};
}

Vec2 mirror_across(const Segment& wall, Vec2 p) noexcept {
  const Vec2 d = wall.b - wall.a;
  const double len2 = d.norm2();
  if (len2 <= 0.0) return p;
  const double t = (p - wall.a).dot(d) / len2;  // unclamped: infinite line
  const Vec2 foot = wall.a + d * t;
  return foot * 2.0 - p;
}

}  // namespace vire::geom
