#pragma once
// ShardedService: N LocalizationEngine shards behind one ingest + query
// front door (docs/service.md) — the scale-out layer the ROADMAP calls the
// "logistics network" leap.
//
// Architecture:
//   ingest(reading) -> ShardRouter -> per-shard bounded ShardQueue
//     -> one worker thread per shard: Middleware -> LocalizationEngine
//          (each shard owns its own WAL segment dir + CheckpointStore)
//   poll(now) -> evict+update barrier on every shard -> k-merged fixes
//   latest_fix / explain / merged metrics -> query API
//
// Determinism contract (the core acceptance bar, locked by
// tests/service/shard_equivalence_test.cpp): a sharded run's poll() output
// is fix-for-fix BIT-IDENTICAL to a single-engine run over the same reading
// stream and poll schedule, at any shard count and any parallel_workers —
// including after crash+recovery and across live rebalances. Mechanism:
//   * reference-tag readings are broadcast to every shard, so every shard
//     evolves the same reader-health state and the same virtual grid;
//   * tracked-tag readings are partitioned by the router, and per-tag
//     locate() depends only on the grid plus that tag's own window;
//   * each shard's queue is FIFO with a single consumer, so the shard's
//     engine sees ingest/evict/update in exactly the stream order;
//   * poll() merges the per-shard fix vectors in tag order — the same order
//     a single engine (which iterates its tag map) would emit.
//
// Threading model: the service spawns one worker thread per shard; all
// public methods must be called from ONE driver thread (the UDS server's
// event loop in production). Metrics export is the exception — registries
// are internally synchronized, so merged_prometheus()/merged_json() may be
// called from anywhere.
//
// Crash recovery: construct with ServiceConfig::recover = true over the
// same data_dir and call recover() before use. Each shard restores its
// newest checkpoint and replays its own WAL suffix through the normal
// pipeline. Shards crash with skewed progress, so each recovered shard
// carries a resume gate: re-fed readings at or before its resume time are
// dropped (the shard already holds them), and a poll at or before it is
// answered from the replayed fixes instead of re-running the update. Tag
// registration is not journaled — register tags before streaming; the
// service re-applies its registry to recovered shards before replay.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "engine/localization_engine.h"
#include "env/deployment.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "persist/checkpoint.h"
#include "persist/recovery.h"
#include "persist/wal.h"
#include "service/frontend.h"
#include "service/shard_queue.h"
#include "service/shard_router.h"
#include "sim/middleware.h"
#include "sim/types.h"

namespace vire::service {

/// Quadrant zone of a position within the deployment's sensing area (2x2
/// zones, row-major: 0 = lower-left .. 3 = upper-right). The default zone id
/// source for zone-affinity pins; callers with richer floor plans can supply
/// their own ids — the router only matches them.
[[nodiscard]] std::uint32_t zone_for_position(const env::Deployment& deployment,
                                              geom::Vec2 position) noexcept;

struct ServiceConfig {
  int shards = 1;
  engine::EngineConfig engine;
  sim::MiddlewareConfig middleware;
  ShardRouterConfig router;
  /// Reading batches a shard queue buffers before backpressure engages.
  std::size_t queue_capacity = 1024;
  /// Readings per enqueued batch; a partial batch is flushed by poll().
  std::size_t ingest_batch = 64;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Per-shard persistence root (shard-<id>/{wal,checkpoints} under it);
  /// empty disables persistence.
  std::filesystem::path data_dir;
  /// Checkpoint every N update boundaries per shard (0 = never; the WAL
  /// alone still recovers, just with a longer replay).
  int checkpoint_every_updates = 8;
  persist::FsyncPolicy fsync = persist::FsyncPolicy::kEveryN;
  /// Construct for crash recovery: WAL writers stay detached until
  /// recover() has replayed each shard (requires a non-empty data_dir).
  bool recover = false;
  /// Test seam for fleet clock alignment: shifts every shard engine's trace
  /// clock by this constant (obs::Tracer::set_clock_skew_us), simulating a
  /// host whose monotonic clock disagrees with the supervisor's.
  double obs_clock_skew_us = 0.0;
};

struct RebalanceReport {
  /// The shard added or removed.
  std::uint32_t shard = 0;
  std::size_t moved_tags = 0;
  /// Readings replayed from source WALs (or middleware windows when
  /// persistence is off) into the moved tags' new owners.
  std::uint64_t replayed_readings = 0;
};

struct ServiceRecoveryReport {
  struct ShardRecovery {
    std::uint32_t shard = 0;
    persist::RecoveryReport report;
    /// The shard's resume gate: polls at or before this time are served
    /// from replayed fixes; later polls run live.
    sim::SimTime resume_time = 0.0;
  };
  std::vector<ShardRecovery> shards;
};

class ShardedService : public Frontend {
 public:
  ShardedService(const env::Deployment& deployment, ServiceConfig config);
  ~ShardedService() override;

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Reference tag ids (broadcast set), forwarded to every shard engine.
  void set_reference_ids(std::vector<sim::TagId> ids) override;

  /// Registers a tag for localization. `zone` (see zone_for_position) makes
  /// the tag eligible for zone-affinity pins. Register tags and pins before
  /// streaming readings — registration is not journaled.
  void track(sim::TagId tag, std::string name = {},
             std::optional<std::uint32_t> zone = std::nullopt) override;
  void untrack(sim::TagId tag);

  /// Affinity pins (ShardRouter precedence: tag pin > zone pin > ring).
  void pin_zone(std::uint32_t zone, std::uint32_t shard);
  void pin_tag(sim::TagId tag, std::uint32_t shard);

  /// Routes one reading (or a batch) to its shard's queue — reference-tag
  /// readings broadcast to every shard. Readings to a crashed shard are
  /// counted as lost; readings at or before a recovered shard's resume time
  /// are dropped by the resume gate (the shard already holds them).
  void ingest(const sim::RssiReading& reading);
  void ingest(const std::vector<sim::RssiReading>& readings) override;
  /// Sequenced ingest (kIngestSeq): ingests the batch, then journals a
  /// FrameType::kAck marker behind its readings on every live shard's WAL —
  /// so heartbeat()'s last_ack_sequence reports exactly the batches whose
  /// readings are durably journaled. A batch at or below the current ack
  /// cursor is dropped whole (idempotent redelivery after a sender retry).
  void ingest_sequenced(const std::vector<sim::RssiReading>& readings,
                        std::uint64_t sequence) override;
  /// Sequenced ingest with an adopted trace context (wire v3): records a
  /// capture-only "wire.ingest_batch" instant carrying the sender's trace id
  /// on each receiving shard's tracer, then ingests normally. Localization
  /// output is bit-identical with or without a context.
  void ingest_sequenced(const std::vector<sim::RssiReading>& readings,
                        std::uint64_t sequence,
                        const obs::TraceContext& ctx) override;

  /// Flushes pending batches, runs evict_stale + update on every shard at
  /// `now`, and returns the merged fixes in tag order — bit-identical to a
  /// single engine polled at the same times over the same stream. Blocks
  /// until every shard finished (poll is the service's barrier).
  std::vector<engine::Fix> poll(sim::SimTime now) override;

  /// Latest fix of a tag from the most recent poll that produced one.
  [[nodiscard]] std::optional<engine::Fix> latest_fix(
      sim::TagId tag) const override;

  /// Flight-recorder provenance of the tag's most recent fix, fetched from
  /// the owning shard (nullopt when unknown/disabled/crashed).
  [[nodiscard]] std::optional<obs::FixRecord> explain(sim::TagId tag);
  std::optional<std::string> explain_json(sim::TagId tag) override;

  /// Recovers every shard after a crash (ServiceConfig::recover must be
  /// set). Call once, before any ingest/poll.
  ServiceRecoveryReport recover();
  /// Idempotent wire-facing recovery (kRecover): runs recover() when this
  /// service was constructed for recovery and has not recovered yet, then
  /// returns last_ack_sequence(). Safe to call on an already-live service.
  std::uint64_t recover_now() override;

  /// Durability cursor: highest kAck marker durably journaled by EVERY live
  /// shard (0 when none). Batches at or below it survive any crash.
  [[nodiscard]] std::uint64_t last_ack_sequence() const;
  /// Liveness + durability cursor served to kHeartbeat. Drains each shard
  /// queue to read the WAL frontier, so the answer reflects every op
  /// enqueued before the probe. Also reports the first shard engine's trace
  /// clock (for supervisor clock alignment) and the fleet-visible anomaly
  /// auto-dump count.
  HeartbeatInfo heartbeat() override;

  /// Span ring of the first live shard's engine tracer (kTraceDump). In a
  /// vire_shardd process there is exactly one shard, so this is the whole
  /// process's timeline; multi-shard in-process services export their first
  /// shard only (each engine tracer has its own epoch — mixing them would
  /// interleave unrelated clocks).
  obs::TraceDump trace_dump(std::size_t max_events) override;

  /// Flight-recorder provenance of every shard, merged as
  /// {"shards":[{"shard":N,"provenance":{...}},...]} (kProvenanceDump).
  std::optional<std::string> provenance_json() override;

  /// Simulates a hard shard failure: queued work and in-memory state are
  /// discarded (exactly what a SIGKILL loses); the shard's WAL/checkpoints
  /// stay on disk and the shard stops contributing until recover_shard().
  void crash_shard(std::uint32_t shard);
  /// Rebuilds a crashed shard from its own disk state and re-arms it.
  persist::RecoveryReport recover_shard(std::uint32_t shard);

  /// Live rebalancing. add_shard() brings up a new shard (seeded with the
  /// fleet's reference/health state), moves every tag the ring now assigns
  /// to it, and replays each moved tag's WAL suffix through the new owner's
  /// normal ingest path. remove_shard() migrates the doomed shard's tags
  /// out, then retires it (its data dir is left on disk). Post-rebalance
  /// fixes stay bit-identical to the single-engine run.
  std::pair<std::uint32_t, RebalanceReport> add_shard();
  RebalanceReport remove_shard(std::uint32_t shard);

  /// Elastic membership over the wire (wire v4 Frontend overrides). The
  /// supervisor drives these against vire_shardd processes to move tag state
  /// across process boundaries: export_tag_state atomically exports and
  /// untracks one tag on its owner's thread; import_tag_state registers the
  /// tag and adopts the state; seed_export/seed_import carry the same
  /// reference-only seed seed_reference_state uses in-process. The admin_*
  /// calls expose the in-process add_shard()/remove_shard() rebalancers.
  std::optional<engine::TagStateSnapshot> export_tag_state(
      sim::TagId tag) override;
  void import_tag_state(sim::TagId tag, std::optional<std::uint32_t> zone,
                        const engine::TagStateSnapshot& state) override;
  std::pair<engine::EngineStateSnapshot, sim::Middleware::Snapshot> seed_export()
      override;
  void seed_import(const engine::EngineStateSnapshot& engine_seed,
                   const sim::Middleware::Snapshot& middleware_seed) override;
  std::uint64_t admin_add_shard() override;
  std::uint64_t admin_remove_shard(std::uint32_t id) override;

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::vector<std::uint32_t> shard_ids() const;
  /// Current owner of a tag (tracked tags use their registered zone).
  [[nodiscard]] std::uint32_t owner_of(sim::TagId tag) const;
  [[nodiscard]] const ShardRouter& router() const noexcept { return router_; }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t tracked_count() const noexcept { return tags_.size(); }

  /// Service-level metrics (routing, queues, polls, rebalances). Per-shard
  /// engine metrics live in each shard's own registry; merged_* exports
  /// concatenate them with a shard="<id>" label appended to every series.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept override {
    return metrics_;
  }
  [[nodiscard]] std::string merged_prometheus() const;
  [[nodiscard]] std::string merged_json() const;
  std::string snapshot_prometheus() const override { return merged_prometheus(); }
  std::string snapshot_json() const override { return merged_json(); }

  /// Aggregated queue-pressure counters across shards.
  [[nodiscard]] std::uint64_t dropped_batches() const;
  [[nodiscard]] std::uint64_t blocked_pushes() const;

 private:
  struct TrackedTag {
    std::string name;
    std::optional<std::uint32_t> zone;
  };

  struct Shard {
    ~Shard();

    std::uint32_t id = 0;
    /// Owns the shard's metrics registry; declared first so every component
    /// that registered metrics is destroyed before it.
    std::unique_ptr<engine::LocalizationEngine> engine;
    std::unique_ptr<persist::WalWriter> wal;
    std::unique_ptr<persist::CheckpointStore> checkpoints;
    std::unique_ptr<sim::Middleware> middleware;
    std::unique_ptr<ShardQueue> queue;
    std::thread worker;

    /// Service-thread ingest buffer (flushed at ingest_batch / by poll()).
    std::vector<sim::RssiReading> pending;
    int updates_since_checkpoint = 0;
    /// True between crash_shard() and recover_shard(), and from a
    /// recover-mode construction until recover().
    bool awaiting_recovery = false;
    /// Resume gate (see file comment); -inf when the shard never recovered.
    sim::SimTime resume_time = -std::numeric_limits<double>::infinity();
    bool gated = false;
    /// Highest kAck marker durably journaled (written by the worker thread,
    /// read by heartbeat() on the driver thread — hence atomic).
    std::atomic<std::uint64_t> acked{0};
    /// Replayed update fixes keyed by the update time's bit pattern.
    std::map<std::uint64_t, std::vector<engine::Fix>> replayed;
  };

  [[nodiscard]] bool persistence_enabled() const noexcept {
    return !config_.data_dir.empty();
  }
  [[nodiscard]] std::filesystem::path shard_dir(std::uint32_t id) const;
  [[nodiscard]] std::filesystem::path wal_dir(std::uint32_t id) const;
  [[nodiscard]] std::filesystem::path checkpoint_dir(std::uint32_t id) const;

  void ensure_ready() const;
  std::unique_ptr<Shard> make_shard(std::uint32_t id, bool defer_wal);
  void init_shard_core(Shard& shard);
  void attach_wal(Shard& shard);
  void worker_loop(Shard& shard);
  void maybe_checkpoint(Shard& shard, sim::SimTime now);
  void write_checkpoint(Shard& shard, sim::SimTime now);
  void enqueue_reading(Shard& shard, const sim::RssiReading& reading);
  void flush_pending(Shard& shard);
  /// Drains every shard queue (round-trip no-op control op per shard); on
  /// return all workers are idle and shard state is safe to orchestrate.
  void barrier();
  ServiceRecoveryReport::ShardRecovery recover_one(Shard& shard);
  void migrate_tag(sim::TagId tag, const TrackedTag& info, Shard& source,
                   Shard& destination, RebalanceReport& report);
  [[nodiscard]] std::vector<sim::RssiReading> migration_readings(Shard& source,
                                                                 sim::TagId tag);
  void seed_reference_state(Shard& destination);
  /// Donor's engine+middleware snapshot stripped to reference-only state
  /// (shared by seed_reference_state and seed_export).
  [[nodiscard]] std::pair<engine::EngineStateSnapshot, sim::Middleware::Snapshot>
  reference_seed(Shard& donor);
  void checkpoint_on_thread(Shard& shard);

  env::Deployment deployment_;
  ServiceConfig config_;
  ShardRouter router_;
  std::map<std::uint32_t, std::unique_ptr<Shard>> shards_;  ///< id order
  std::uint32_t next_shard_id_ = 0;
  std::vector<sim::TagId> reference_ids_;
  std::unordered_set<sim::TagId> reference_set_;
  std::map<sim::TagId, TrackedTag> tags_;
  std::map<sim::TagId, engine::Fix> latest_;
  sim::SimTime last_poll_time_ = 0.0;
  bool recovered_ = false;

  obs::MetricsRegistry metrics_;
  obs::Counter* readings_total_ = nullptr;
  obs::Counter* broadcasts_total_ = nullptr;
  obs::Counter* batches_total_ = nullptr;
  obs::Counter* batches_dropped_ = nullptr;
  obs::Counter* ingest_blocked_ = nullptr;
  obs::Counter* readings_gated_ = nullptr;
  obs::Counter* readings_lost_ = nullptr;
  obs::Counter* polls_total_ = nullptr;
  obs::Counter* polls_substituted_ = nullptr;
  obs::Counter* rebalance_moved_tags_ = nullptr;
  obs::Counter* rebalance_replayed_ = nullptr;
  obs::Counter* recoveries_total_ = nullptr;
  obs::Counter* checkpoint_failures_ = nullptr;
  obs::Gauge* shards_gauge_ = nullptr;
  obs::Gauge* queue_high_water_ = nullptr;
  obs::Histogram* poll_seconds_ = nullptr;
};

}  // namespace vire::service
