#include "service/control_journal.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "persist/binary_io.h"
#include "support/atomic_file.h"

namespace vire::service {
namespace {

// Op record types. Values are on-disk format — never renumber.
constexpr std::uint8_t kOpTrack = 1;
constexpr std::uint8_t kOpSetReference = 2;
constexpr std::uint8_t kOpBatch = 3;
constexpr std::uint8_t kOpPoll = 4;
constexpr std::uint8_t kOpAddShard = 5;
constexpr std::uint8_t kOpRemoveShard = 6;
constexpr std::uint8_t kOpBreakerOpen = 7;
constexpr std::uint8_t kOpBreakerClose = 8;
constexpr std::uint8_t kOpPollsDone = 9;
constexpr std::uint8_t kOpShardDraining = 10;
constexpr std::uint8_t kOpShardActive = 11;

constexpr char kCheckpointMagic[4] = {'V', 'C', 'J', 'C'};
constexpr std::uint32_t kCheckpointVersion = 1;
constexpr char kCheckpointFile[] = "checkpoint.bin";

persist::FramedLogFormat journal_format() {
  persist::FramedLogFormat format;
  format.magic[0] = 'V';
  format.magic[1] = 'C';
  format.magic[2] = 'J';
  format.magic[3] = 'L';
  format.version = 1;
  format.file_prefix = "ops";
  return format;
}

void encode_fix(persist::ByteWriter& w, const engine::Fix& fix) {
  w.u32(fix.tag);
  w.str(fix.name);
  w.f64(fix.time);
  w.u8(fix.valid ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(fix.quality));
  w.f64(fix.position.x);
  w.f64(fix.position.y);
  w.f64(fix.smoothed_position.x);
  w.f64(fix.smoothed_position.y);
  w.u64(fix.survivor_count);
  w.u8(fix.used_fallback ? 1 : 0);
  w.f64(fix.age_s);
}

bool decode_fix(persist::ByteReader& r, engine::Fix& out) {
  const auto tag = r.u32();
  auto name = r.str();
  const auto time = r.f64();
  const auto valid = r.u8();
  const auto quality = r.u8();
  const auto px = r.f64();
  const auto py = r.f64();
  const auto sx = r.f64();
  const auto sy = r.f64();
  const auto survivors = r.u64();
  const auto fallback = r.u8();
  const auto age = r.f64();
  if (!r.ok()) return false;
  if (*valid > 1 || *fallback > 1 || *quality > 3) return false;
  out.tag = *tag;
  out.name = std::move(*name);
  out.time = *time;
  out.valid = *valid != 0;
  out.quality = static_cast<engine::FixQuality>(*quality);
  out.position = {*px, *py};
  out.smoothed_position = {*sx, *sy};
  out.survivor_count = static_cast<std::size_t>(*survivors);
  out.used_fallback = *fallback != 0;
  out.age_s = *age;
  return true;
}

/// Structural validation hook handed to the framed log: a CRC-valid record
/// whose payload does not decode for its type is treated as a torn tail.
bool validate_op(std::uint8_t type, std::string_view payload) {
  persist::ByteReader r(payload);
  switch (type) {
    case kOpTrack: {
      r.u32();
      r.str();
      const auto has_zone = r.u8();
      if (!r.ok() || *has_zone > 1) return false;
      if (*has_zone != 0) r.u32();
      return r.exhausted();
    }
    case kOpSetReference: {
      const auto count = r.u32();
      if (!r.ok() || payload.size() != 4 + std::size_t{*count} * 4) return false;
      return true;
    }
    case kOpBatch: {
      r.u32();
      r.u64();
      const auto count = r.u32();
      if (!r.ok()) return false;
      constexpr std::size_t kReadingBytes = 8 + 4 + 2 + 8;
      return payload.size() == 4 + 8 + 4 + std::size_t{*count} * kReadingBytes;
    }
    case kOpPoll:
      return payload.size() == 4 + 8;
    case kOpAddShard:
    case kOpRemoveShard:
    case kOpBreakerOpen:
    case kOpBreakerClose:
    case kOpShardDraining:
    case kOpShardActive:
      return payload.size() == 4;
    case kOpPollsDone:
      return payload.size() == 4 + 8;
    default:
      return false;
  }
}

persist::FramedLogConfig log_config(const ControlJournalConfig& config) {
  persist::FramedLogConfig cfg;
  cfg.dir = config.dir;
  cfg.format = journal_format();
  cfg.segment_max_records = config.segment_max_records;
  cfg.fsync = config.fsync;
  cfg.fsync_every_n = config.fsync_every_n;
  cfg.fsync_interval_s = config.fsync_interval_s;
  cfg.fault_hook = config.fault_hook;
  cfg.validate = validate_op;
  return cfg;
}

std::string encode_checkpoint_body(const ControlCheckpoint& state) {
  persist::ByteWriter w;
  w.u32(kCheckpointVersion);
  w.u64(state.journal_floor);
  w.u64(state.ingest_sequence);
  w.u32(state.next_shard_id);
  w.f64(state.last_poll_time);
  w.u32(static_cast<std::uint32_t>(state.members.size()));
  for (const auto& m : state.members) {
    w.u32(m.id);
    w.u8(static_cast<std::uint8_t>(m.phase));
    w.u64(m.last_ack);
    w.u8(m.breaker_open ? 1 : 0);
    w.u64(m.polls_done);
  }
  w.u32(static_cast<std::uint32_t>(state.reference_ids.size()));
  for (const auto id : state.reference_ids) w.u32(id);
  w.u32(static_cast<std::uint32_t>(state.tags.size()));
  for (const auto& t : state.tags) {
    w.u32(t.tag);
    w.str(t.name);
    w.u8(t.zone.has_value() ? 1 : 0);
    if (t.zone.has_value()) w.u32(*t.zone);
  }
  w.u32(static_cast<std::uint32_t>(state.latest.size()));
  for (const auto& fix : state.latest) encode_fix(w, fix);
  return w.take();
}

bool decode_checkpoint_body(std::string_view body, ControlCheckpoint& out) {
  persist::ByteReader r(body);
  const auto version = r.u32();
  if (!r.ok() || *version != kCheckpointVersion) return false;
  const auto floor = r.u64();
  const auto ingest = r.u64();
  const auto next_id = r.u32();
  const auto poll_time = r.f64();
  const auto n_members = r.u32();
  if (!r.ok()) return false;
  out.journal_floor = *floor;
  out.ingest_sequence = *ingest;
  out.next_shard_id = *next_id;
  out.last_poll_time = *poll_time;
  out.members.clear();
  for (std::uint32_t i = 0; i < *n_members; ++i) {
    ControlCheckpoint::Member m;
    const auto id = r.u32();
    const auto phase = r.u8();
    const auto ack = r.u64();
    const auto breaker = r.u8();
    const auto polls = r.u64();
    if (!r.ok() || *phase > 2 || *breaker > 1) return false;
    m.id = *id;
    m.phase = static_cast<MemberPhase>(*phase);
    m.last_ack = *ack;
    m.breaker_open = *breaker != 0;
    m.polls_done = *polls;
    out.members.push_back(m);
  }
  const auto n_refs = r.u32();
  if (!r.ok()) return false;
  out.reference_ids.clear();
  for (std::uint32_t i = 0; i < *n_refs; ++i) {
    const auto id = r.u32();
    if (!r.ok()) return false;
    out.reference_ids.push_back(*id);
  }
  const auto n_tags = r.u32();
  if (!r.ok()) return false;
  out.tags.clear();
  for (std::uint32_t i = 0; i < *n_tags; ++i) {
    ControlCheckpoint::Tag t;
    const auto tag = r.u32();
    auto name = r.str();
    const auto has_zone = r.u8();
    if (!r.ok() || *has_zone > 1) return false;
    t.tag = *tag;
    t.name = std::move(*name);
    if (*has_zone != 0) {
      const auto zone = r.u32();
      if (!r.ok()) return false;
      t.zone = *zone;
    }
    out.tags.push_back(std::move(t));
  }
  const auto n_latest = r.u32();
  if (!r.ok()) return false;
  out.latest.clear();
  for (std::uint32_t i = 0; i < *n_latest; ++i) {
    engine::Fix fix;
    if (!decode_fix(r, fix)) return false;
    out.latest.push_back(std::move(fix));
  }
  return r.exhausted();
}

/// Loads checkpoint.bin if present and intact; nullopt otherwise (a corrupt
/// or torn checkpoint falls back to full-journal replay, never a crash).
std::optional<ControlCheckpoint> load_checkpoint(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string data = buffer.str();
  if (data.size() < sizeof(kCheckpointMagic) + 4) return std::nullopt;
  if (std::string_view(data.data(), 4) !=
      std::string_view(kCheckpointMagic, 4)) {
    return std::nullopt;
  }
  const std::string_view body(data.data() + 4, data.size() - 8);
  persist::ByteReader crc_reader(
      std::string_view(data.data() + data.size() - 4, 4));
  const auto stored_crc = crc_reader.u32();
  if (!stored_crc.has_value() || persist::crc32(body) != *stored_crc) {
    return std::nullopt;
  }
  ControlCheckpoint state;
  if (!decode_checkpoint_body(body, state)) return std::nullopt;
  return state;
}

ControlCheckpoint::Member& ensure_member(ControlCheckpoint& state,
                                         std::uint32_t id) {
  for (auto& m : state.members) {
    if (m.id == id) return m;
  }
  ControlCheckpoint::Member m;
  m.id = id;
  state.members.push_back(m);
  return state.members.back();
}

ControlCheckpoint::Member* find_member(ControlCheckpoint& state,
                                       std::uint32_t id) {
  for (auto& m : state.members) {
    if (m.id == id) return &m;
  }
  return nullptr;
}

}  // namespace

std::string_view to_string(MemberPhase phase) noexcept {
  switch (phase) {
    case MemberPhase::kJoining:
      return "joining";
    case MemberPhase::kActive:
      return "active";
    case MemberPhase::kDraining:
      return "draining";
  }
  return "unknown";
}

ControlJournal::ControlJournal(ControlJournalConfig config)
    : config_(std::move(config)), log_(log_config(config_)) {}

RecoveredControlState ControlJournal::recover() {
  RecoveredControlState result;
  const auto checkpoint_path =
      config_.dir / std::filesystem::path(kCheckpointFile);
  auto snapshot = load_checkpoint(checkpoint_path);
  if (snapshot.has_value()) {
    result.recovered = true;
    result.state = std::move(*snapshot);
  }

  auto scan = persist::read_framed_log(config_.dir, journal_format(),
                                       result.state.journal_floor, validate_op);
  result.corrupt_records = scan.corrupt_records + log_.truncated_records();
  if (!scan.records.empty()) result.recovered = true;

  auto& state = result.state;
  for (const auto& record : scan.records) {
    persist::ByteReader r(record.payload);
    switch (record.type) {
      case kOpTrack: {
        ControlCheckpoint::Tag t;
        t.tag = *r.u32();
        t.name = *r.str();
        if (*r.u8() != 0) t.zone = *r.u32();
        auto it = std::find_if(state.tags.begin(), state.tags.end(),
                               [&](const auto& e) { return e.tag == t.tag; });
        if (it != state.tags.end()) {
          *it = std::move(t);
        } else {
          state.tags.push_back(std::move(t));
        }
        break;
      }
      case kOpSetReference: {
        const auto count = *r.u32();
        state.reference_ids.clear();
        for (std::uint32_t i = 0; i < count; ++i) {
          state.reference_ids.push_back(*r.u32());
        }
        break;
      }
      case kOpBatch: {
        const auto shard = *r.u32();
        const auto batch_seq = *r.u64();
        const auto count = *r.u32();
        state.ingest_sequence = std::max(state.ingest_sequence, batch_seq);
        auto& member = ensure_member(state, shard);
        if (batch_seq > member.last_ack) {
          JournaledOp op;
          op.kind = JournaledOp::Kind::kBatch;
          op.journal_sequence = record.sequence;
          op.batch_sequence = batch_seq;
          op.readings.reserve(count);
          for (std::uint32_t i = 0; i < count; ++i) {
            sim::RssiReading reading;
            reading.time = *r.f64();
            reading.tag = *r.u32();
            reading.reader = static_cast<sim::ReaderId>(*r.u16());
            reading.rssi_dbm = *r.f64();
            op.readings.push_back(reading);
          }
          result.oplogs[shard].push_back(std::move(op));
        }
        break;
      }
      case kOpPoll: {
        const auto shard = *r.u32();
        const auto time = *r.f64();
        auto& member = ensure_member(state, shard);
        state.last_poll_time = std::max(state.last_poll_time, time);
        if (record.sequence > member.polls_done) {
          JournaledOp op;
          op.kind = JournaledOp::Kind::kPoll;
          op.journal_sequence = record.sequence;
          op.time = time;
          result.oplogs[shard].push_back(std::move(op));
        }
        break;
      }
      case kOpAddShard: {
        const auto shard = *r.u32();
        ensure_member(state, shard).phase = MemberPhase::kJoining;
        state.next_shard_id = std::max(state.next_shard_id, shard + 1);
        break;
      }
      case kOpShardActive: {
        const auto shard = *r.u32();
        ensure_member(state, shard).phase = MemberPhase::kActive;
        break;
      }
      case kOpShardDraining: {
        const auto shard = *r.u32();
        ensure_member(state, shard).phase = MemberPhase::kDraining;
        break;
      }
      case kOpRemoveShard: {
        const auto shard = *r.u32();
        state.members.erase(
            std::remove_if(state.members.begin(), state.members.end(),
                           [&](const auto& m) { return m.id == shard; }),
            state.members.end());
        result.oplogs.erase(shard);
        break;
      }
      case kOpBreakerOpen:
      case kOpBreakerClose: {
        const auto shard = *r.u32();
        ensure_member(state, shard).breaker_open =
            record.type == kOpBreakerOpen;
        break;
      }
      case kOpPollsDone: {
        const auto shard = *r.u32();
        const auto through = *r.u64();
        if (auto* member = find_member(state, shard)) {
          member->polls_done = std::max(member->polls_done, through);
          auto it = result.oplogs.find(shard);
          if (it != result.oplogs.end()) {
            auto& ops = it->second;
            ops.erase(std::remove_if(ops.begin(), ops.end(),
                                     [&](const JournaledOp& op) {
                                       return op.kind ==
                                                  JournaledOp::Kind::kPoll &&
                                              op.journal_sequence <= through;
                                     }),
                      ops.end());
          }
        }
        break;
      }
      default:
        break;  // unknown op from a future version: skip, counted below
    }
    ++result.replayed_ops;
  }
  if (replayed_metric_ != nullptr) replayed_metric_->inc(result.replayed_ops);
  if (truncated_metric_ != nullptr && result.corrupt_records > 0) {
    truncated_metric_->inc(result.corrupt_records);
  }
  return result;
}

std::deque<JournaledOp> ControlJournal::collect_oplog(
    std::uint32_t shard, std::uint64_t last_ack, std::uint64_t polls_done) {
  std::deque<JournaledOp> ops;
  auto scan =
      persist::read_framed_log(config_.dir, journal_format(), 0, validate_op);
  for (const auto& record : scan.records) {
    persist::ByteReader r(record.payload);
    switch (record.type) {
      case kOpBatch: {
        if (*r.u32() != shard) break;
        const auto batch_seq = *r.u64();
        if (batch_seq <= last_ack) break;
        const auto count = *r.u32();
        JournaledOp op;
        op.kind = JournaledOp::Kind::kBatch;
        op.journal_sequence = record.sequence;
        op.batch_sequence = batch_seq;
        op.readings.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          sim::RssiReading reading;
          reading.time = *r.f64();
          reading.tag = *r.u32();
          reading.reader = static_cast<sim::ReaderId>(*r.u16());
          reading.rssi_dbm = *r.f64();
          op.readings.push_back(reading);
        }
        ops.push_back(std::move(op));
        break;
      }
      case kOpPoll: {
        if (*r.u32() != shard) break;
        if (record.sequence <= polls_done) break;
        JournaledOp op;
        op.kind = JournaledOp::Kind::kPoll;
        op.journal_sequence = record.sequence;
        op.time = *r.f64();
        ops.push_back(std::move(op));
        break;
      }
      case kOpPollsDone: {
        if (*r.u32() != shard) break;
        const auto through = *r.u64();
        ops.erase(std::remove_if(ops.begin(), ops.end(),
                                 [&](const JournaledOp& op) {
                                   return op.kind == JournaledOp::Kind::kPoll &&
                                          op.journal_sequence <= through;
                                 }),
                  ops.end());
        break;
      }
      default:
        break;
    }
  }
  return ops;
}

std::uint64_t ControlJournal::append(std::uint8_t type,
                                     std::string_view payload) {
  const auto seq = log_.append(type, payload);
  ++since_checkpoint_;
  if (appends_metric_ != nullptr) appends_metric_->inc();
  return seq;
}

std::uint64_t ControlJournal::record_track(sim::TagId tag,
                                           const std::string& name,
                                           std::optional<std::uint32_t> zone) {
  persist::ByteWriter w;
  w.u32(tag);
  w.str(name);
  w.u8(zone.has_value() ? 1 : 0);
  if (zone.has_value()) w.u32(*zone);
  return append(kOpTrack, w.bytes());
}

std::uint64_t ControlJournal::record_set_reference(
    const std::vector<sim::TagId>& ids) {
  persist::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (const auto id : ids) w.u32(id);
  return append(kOpSetReference, w.bytes());
}

std::uint64_t ControlJournal::record_batch(
    std::uint32_t shard, std::uint64_t batch_sequence,
    const std::vector<sim::RssiReading>& readings) {
  persist::ByteWriter w;
  w.u32(shard);
  w.u64(batch_sequence);
  w.u32(static_cast<std::uint32_t>(readings.size()));
  for (const auto& reading : readings) {
    w.f64(reading.time);
    w.u32(reading.tag);
    w.u16(static_cast<std::uint16_t>(reading.reader));
    w.f64(reading.rssi_dbm);
  }
  return append(kOpBatch, w.bytes());
}

std::uint64_t ControlJournal::record_poll(std::uint32_t shard,
                                          sim::SimTime time) {
  persist::ByteWriter w;
  w.u32(shard);
  w.f64(time);
  return append(kOpPoll, w.bytes());
}

std::uint64_t ControlJournal::record_add_shard(std::uint32_t shard) {
  persist::ByteWriter w;
  w.u32(shard);
  return append(kOpAddShard, w.bytes());
}

std::uint64_t ControlJournal::record_shard_active(std::uint32_t shard) {
  persist::ByteWriter w;
  w.u32(shard);
  return append(kOpShardActive, w.bytes());
}

std::uint64_t ControlJournal::record_shard_draining(std::uint32_t shard) {
  persist::ByteWriter w;
  w.u32(shard);
  return append(kOpShardDraining, w.bytes());
}

std::uint64_t ControlJournal::record_remove_shard(std::uint32_t shard) {
  persist::ByteWriter w;
  w.u32(shard);
  return append(kOpRemoveShard, w.bytes());
}

std::uint64_t ControlJournal::record_breaker(std::uint32_t shard, bool open) {
  persist::ByteWriter w;
  w.u32(shard);
  return append(open ? kOpBreakerOpen : kOpBreakerClose, w.bytes());
}

std::uint64_t ControlJournal::record_polls_done(
    std::uint32_t shard, std::uint64_t through_sequence) {
  persist::ByteWriter w;
  w.u32(shard);
  w.u64(through_sequence);
  return append(kOpPollsDone, w.bytes());
}

void ControlJournal::checkpoint(const ControlCheckpoint& state) {
  // Sync the log BEFORE the state file: a checkpoint must never claim a
  // floor whose suffix is not at least as durable as the checkpoint itself.
  log_.sync();
  const std::string body = encode_checkpoint_body(state);
  persist::ByteWriter w;
  w.raw(std::string_view(kCheckpointMagic, 4));
  w.raw(body);
  w.u32(persist::crc32(body));
  support::AtomicWriteOptions options;
  options.fault_hook = config_.fault_hook;
  support::atomic_write_file(
      config_.dir / std::filesystem::path(kCheckpointFile), w.bytes(), options);
  log_.prune(state.journal_floor);
  since_checkpoint_ = 0;
  if (checkpoints_metric_ != nullptr) checkpoints_metric_->inc();
}

void ControlJournal::attach_metrics(obs::MetricsRegistry& registry) {
  appends_metric_ = &registry.counter(
      "vire_supervisor_journal_appends_total", {},
      "Control-plane ops appended to the supervisor journal");
  checkpoints_metric_ = &registry.counter(
      "vire_supervisor_journal_checkpoints_total", {},
      "Control-journal checkpoints written");
  replayed_metric_ = &registry.counter(
      "vire_supervisor_journal_replayed_ops_total", {},
      "Journal ops folded back in at supervisor recovery");
  truncated_metric_ = &registry.counter(
      "vire_supervisor_journal_truncated_total", {},
      "Corrupt/torn journal records dropped at recovery");
}

}  // namespace vire::service
