#include "service/shard_router.h"

#include <stdexcept>

#include "support/rng.h"

namespace vire::service {

ShardRouter::ShardRouter(ShardRouterConfig config) : config_(config) {
  if (config_.virtual_nodes <= 0) {
    throw std::invalid_argument("ShardRouter: virtual_nodes must be positive");
  }
}

std::uint64_t ShardRouter::point_hash(std::uint32_t shard, int vnode) const noexcept {
  // Two splitmix64 rounds over (seed, shard, vnode) — a pure function, so a
  // shard re-added after removal lands on exactly the points it held before.
  std::uint64_t state = config_.seed ^ (static_cast<std::uint64_t>(shard) << 32 |
                                        static_cast<std::uint64_t>(vnode));
  const std::uint64_t first = support::splitmix64(state);
  state = first;
  return support::splitmix64(state);
}

std::uint64_t ShardRouter::key_hash(sim::TagId tag) const noexcept {
  std::uint64_t state = config_.seed ^ 0x9e3779b97f4a7c15ULL ^
                        static_cast<std::uint64_t>(tag);
  return support::splitmix64(state);
}

void ShardRouter::add_shard(std::uint32_t shard) {
  if (!members_.insert(shard).second) return;
  for (int v = 0; v < config_.virtual_nodes; ++v) {
    // emplace keeps the first owner on the (astronomically unlikely) 64-bit
    // point collision; the losing shard simply fields one fewer point.
    ring_.emplace(point_hash(shard, v), shard);
  }
}

void ShardRouter::remove_shard(std::uint32_t shard) {
  if (members_.erase(shard) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == shard ? ring_.erase(it) : std::next(it);
  }
}

std::vector<std::uint32_t> ShardRouter::shards() const {
  return {members_.begin(), members_.end()};
}

void ShardRouter::pin_tag(sim::TagId tag, std::uint32_t shard) {
  if (!has_shard(shard)) {
    throw std::invalid_argument("ShardRouter::pin_tag: shard is not a member");
  }
  tag_pins_[tag] = shard;
}

void ShardRouter::pin_zone(std::uint32_t zone, std::uint32_t shard) {
  if (!has_shard(shard)) {
    throw std::invalid_argument("ShardRouter::pin_zone: shard is not a member");
  }
  zone_pins_[zone] = shard;
}

std::uint32_t ShardRouter::route(sim::TagId tag,
                                 std::optional<std::uint32_t> zone) const {
  if (const auto it = tag_pins_.find(tag); it != tag_pins_.end()) {
    if (has_shard(it->second)) return it->second;
  }
  if (zone.has_value()) {
    if (const auto it = zone_pins_.find(*zone); it != zone_pins_.end()) {
      if (has_shard(it->second)) return it->second;
    }
  }
  if (ring_.empty()) {
    throw std::logic_error("ShardRouter::route: no shards on the ring");
  }
  const auto it = ring_.lower_bound(key_hash(tag));
  return it == ring_.end() ? ring_.begin()->second : it->second;
}

}  // namespace vire::service
