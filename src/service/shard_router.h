#pragma once
// ShardRouter: deterministic tag -> shard routing for the sharded
// localization service (docs/service.md).
//
// The core is a consistent-hash ring: each shard contributes
// `virtual_nodes` points on a 64-bit ring (splitmix64 of (seed, shard,
// vnode)), and a tag routes to the first point clockwise of its own hash.
// Consistent hashing gives the minimal-movement property the rebalancer
// depends on: adding a shard to an N+1-way ring moves only ~K/(N+1) of K
// keys (all of them onto the new shard), and removing a shard moves only
// the keys it owned. tests/service/shard_router_test.cpp locks both
// properties plus a chi-square uniformity bound.
//
// Zone affinity overrides sit above the ring, strongest first:
//   pin_tag(tag, shard)   — this tag always routes to `shard`;
//   pin_zone(zone, shard) — tags tagged with `zone` route to `shard`;
//   the ring              — everything else.
// Zones are caller-defined (the service derives them from the
// env::Deployment sensing area); the router only matches ids.
//
// Routing is a pure function of (configuration, membership, pins), never of
// call order — the determinism contract extends through the service layer.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "sim/types.h"

namespace vire::service {

struct ShardRouterConfig {
  /// Ring points per shard. More points flatten the key distribution
  /// (variance ~ 1/sqrt(virtual_nodes)) at the cost of a bigger ring map.
  int virtual_nodes = 64;
  /// Salt mixed into every ring-point and key hash, so two services with
  /// different seeds shard the same tag population differently.
  std::uint64_t seed = 0x5eed5eed5eed5eedULL;
};

class ShardRouter {
 public:
  explicit ShardRouter(ShardRouterConfig config = {});

  /// Membership. Adding an existing shard / removing an absent one is a
  /// no-op. add_shard throws std::invalid_argument on virtual_nodes <= 0
  /// (checked at construction time too).
  void add_shard(std::uint32_t shard);
  void remove_shard(std::uint32_t shard);
  [[nodiscard]] bool has_shard(std::uint32_t shard) const noexcept {
    return members_.count(shard) != 0;
  }
  /// Member shard ids, ascending.
  [[nodiscard]] std::vector<std::uint32_t> shards() const;
  [[nodiscard]] std::size_t shard_count() const noexcept { return members_.size(); }

  /// Affinity overrides (see file comment for precedence). Pinning to a
  /// non-member shard throws std::invalid_argument.
  void pin_tag(sim::TagId tag, std::uint32_t shard);
  void unpin_tag(sim::TagId tag) { tag_pins_.erase(tag); }
  void pin_zone(std::uint32_t zone, std::uint32_t shard);
  void unpin_zone(std::uint32_t zone) { zone_pins_.erase(zone); }

  /// Owner of `tag`: pin_tag > pin_zone (when `zone` is provided) > ring.
  /// Throws std::logic_error when the ring is empty.
  [[nodiscard]] std::uint32_t route(
      sim::TagId tag, std::optional<std::uint32_t> zone = std::nullopt) const;

  [[nodiscard]] const ShardRouterConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] std::uint64_t point_hash(std::uint32_t shard, int vnode) const noexcept;
  [[nodiscard]] std::uint64_t key_hash(sim::TagId tag) const noexcept;

  ShardRouterConfig config_;
  /// ring point -> shard id. A std::map keeps lookup O(log n) and iteration
  /// deterministic; collisions are resolved by probing to the next free
  /// point, which is stable because membership changes rebuild ring points
  /// from the same pure hashes.
  std::map<std::uint64_t, std::uint32_t> ring_;
  std::set<std::uint32_t> members_;
  std::map<sim::TagId, std::uint32_t> tag_pins_;
  std::map<std::uint32_t, std::uint32_t> zone_pins_;
};

}  // namespace vire::service
