#include "service/sharded_service.h"

#include <algorithm>
#include <bit>
#include <exception>
#include <future>
#include <limits>
#include <stdexcept>
#include <type_traits>

#include "obs/exporters.h"

namespace vire::service {

namespace {

/// Runs `fn` on the shard's worker thread (FIFO behind everything already
/// queued) and returns its result. The wait doubles as a queue drain: when
/// this returns, every previously enqueued op has executed.
template <typename Fn>
auto run_on(ShardQueue& queue, Fn fn) {
  using R = std::invoke_result_t<Fn>;
  std::promise<R> done;
  auto future = done.get_future();
  queue.push_control([&] {
    try {
      if constexpr (std::is_void_v<R>) {
        fn();
        done.set_value();
      } else {
        done.set_value(fn());
      }
    } catch (...) {
      done.set_exception(std::current_exception());
    }
  });
  return future.get();
}

std::uint64_t time_key(sim::SimTime t) noexcept {
  return std::bit_cast<std::uint64_t>(t);
}

}  // namespace

std::uint32_t zone_for_position(const env::Deployment& deployment,
                                geom::Vec2 position) noexcept {
  const geom::Aabb area = deployment.sensing_area();
  const double cx = 0.5 * (area.lo.x + area.hi.x);
  const double cy = 0.5 * (area.lo.y + area.hi.y);
  const std::uint32_t col = position.x >= cx ? 1 : 0;
  const std::uint32_t row = position.y >= cy ? 1 : 0;
  return row * 2 + col;
}

ShardedService::Shard::~Shard() {
  if (worker.joinable()) {
    queue->push_stop();
    worker.join();
  }
}

ShardedService::ShardedService(const env::Deployment& deployment,
                               ServiceConfig config)
    : deployment_(deployment), config_(std::move(config)), router_(config_.router) {
  if (config_.shards <= 0) {
    throw std::invalid_argument("ShardedService: shards must be positive");
  }
  if (config_.recover && !persistence_enabled()) {
    throw std::invalid_argument("ShardedService: recover requires a data_dir");
  }
  readings_total_ = &metrics_.counter("vire_service_readings_total", {},
                                      "Readings accepted by the service front door");
  broadcasts_total_ =
      &metrics_.counter("vire_service_reference_broadcasts_total", {},
                        "Reference-tag readings broadcast to every shard");
  batches_total_ = &metrics_.counter("vire_service_batches_total", {},
                                     "Reading batches enqueued to shard queues");
  batches_dropped_ =
      &metrics_.counter("vire_service_batches_dropped_total", {},
                        "Reading batches discarded under the drop-oldest policy");
  ingest_blocked_ =
      &metrics_.counter("vire_service_ingest_blocked_total", {},
                        "Enqueues that waited for queue room under the block policy");
  readings_gated_ =
      &metrics_.counter("vire_service_readings_gated_total", {},
                        "Re-fed readings dropped by a recovered shard's resume gate");
  readings_lost_ = &metrics_.counter("vire_service_readings_lost_total", {},
                                     "Readings addressed to a crashed shard");
  polls_total_ = &metrics_.counter("vire_service_polls_total", {},
                                   "poll() barriers executed");
  polls_substituted_ =
      &metrics_.counter("vire_service_poll_substituted_total", {},
                        "Per-shard poll contributions served from replayed fixes");
  rebalance_moved_tags_ = &metrics_.counter("vire_service_rebalance_moved_tags_total",
                                            {}, "Tags migrated between shards");
  rebalance_replayed_ =
      &metrics_.counter("vire_service_rebalance_replayed_readings_total", {},
                        "Readings replayed into a moved tag's new owner");
  recoveries_total_ = &metrics_.counter("vire_service_recoveries_total", {},
                                        "Shard recoveries completed");
  checkpoint_failures_ =
      &metrics_.counter("vire_service_checkpoint_failures_total", {},
                        "Shard checkpoints that failed to write");
  shards_gauge_ = &metrics_.gauge("vire_service_shards", {}, "Live shard count");
  queue_high_water_ = &metrics_.gauge("vire_service_queue_high_water", {},
                                      "Deepest shard queue observed (ops)");
  poll_seconds_ = &metrics_.histogram("vire_service_poll_seconds",
                                      obs::default_latency_buckets_s(), {},
                                      "Wall time of the poll barrier");

  for (int i = 0; i < config_.shards; ++i) {
    const auto id = static_cast<std::uint32_t>(i);
    router_.add_shard(id);
    shards_.emplace(id, make_shard(id, /*defer_wal=*/config_.recover));
  }
  next_shard_id_ = static_cast<std::uint32_t>(config_.shards);
  shards_gauge_->set(static_cast<double>(shards_.size()));
}

ShardedService::~ShardedService() {
  // Shard::~Shard stops each worker; flush nothing — queued readings are
  // only buffered state, and persistence already journaled them on ingest.
  shards_.clear();
}

std::filesystem::path ShardedService::shard_dir(std::uint32_t id) const {
  return config_.data_dir / ("shard-" + std::to_string(id));
}
std::filesystem::path ShardedService::wal_dir(std::uint32_t id) const {
  return shard_dir(id) / "wal";
}
std::filesystem::path ShardedService::checkpoint_dir(std::uint32_t id) const {
  return shard_dir(id) / "checkpoints";
}

void ShardedService::ensure_ready() const {
  if (config_.recover && !recovered_) {
    throw std::logic_error(
        "ShardedService: constructed for recovery — call recover() first");
  }
}

void ShardedService::init_shard_core(Shard& shard) {
  shard.engine = std::make_unique<engine::LocalizationEngine>(deployment_,
                                                              config_.engine);
  if (config_.obs_clock_skew_us != 0.0) {
    shard.engine->tracer().set_clock_skew_us(config_.obs_clock_skew_us);
  }
  shard.middleware = std::make_unique<sim::Middleware>(deployment_.reader_count(),
                                                       config_.middleware);
  shard.middleware->attach_metrics(shard.engine->metrics());
  if (!reference_ids_.empty()) shard.engine->set_reference_ids(reference_ids_);
  if (persistence_enabled()) {
    persist::CheckpointStoreConfig store;
    store.dir = checkpoint_dir(shard.id);
    shard.checkpoints = std::make_unique<persist::CheckpointStore>(store);
    shard.checkpoints->attach_metrics(shard.engine->metrics());
  }
}

void ShardedService::attach_wal(Shard& shard) {
  persist::WalConfig wal;
  wal.dir = wal_dir(shard.id);
  wal.fsync = config_.fsync;
  shard.wal = std::make_unique<persist::WalWriter>(wal);
  shard.wal->attach_metrics(shard.engine->metrics());
  shard.middleware->attach_journal(shard.wal.get());
}

std::unique_ptr<ShardedService::Shard> ShardedService::make_shard(std::uint32_t id,
                                                                  bool defer_wal) {
  auto shard = std::make_unique<Shard>();
  shard->id = id;
  init_shard_core(*shard);
  if (persistence_enabled() && !defer_wal) attach_wal(*shard);
  shard->awaiting_recovery = defer_wal;
  shard->queue = std::make_unique<ShardQueue>(config_.queue_capacity,
                                              config_.overflow);
  shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
  return shard;
}

void ShardedService::worker_loop(Shard& shard) {
  for (;;) {
    ShardQueue::Op op = shard.queue->pop();
    switch (op.kind) {
      case ShardQueue::Op::Kind::kReadings:
        for (const auto& reading : op.readings) shard.middleware->ingest(reading);
        break;
      case ShardQueue::Op::Kind::kEvict:
        shard.middleware->evict_stale(op.time);
        break;
      case ShardQueue::Op::Kind::kUpdate:
        try {
          // Marker journaled BEFORE the update, mirroring the single-engine
          // persistence protocol: a crash mid-update replays it.
          if (shard.wal != nullptr) shard.wal->append_update_marker(op.time);
          auto fixes = shard.engine->update(*shard.middleware, op.time);
          maybe_checkpoint(shard, op.time);
          op.fixes.set_value(std::move(fixes));
        } catch (...) {
          op.fixes.set_exception(std::current_exception());
        }
        break;
      case ShardQueue::Op::Kind::kControl:
        op.control();
        break;
      case ShardQueue::Op::Kind::kStop:
        return;
    }
  }
}

void ShardedService::maybe_checkpoint(Shard& shard, sim::SimTime now) {
  if (shard.checkpoints == nullptr || config_.checkpoint_every_updates <= 0) return;
  if (++shard.updates_since_checkpoint < config_.checkpoint_every_updates) return;
  shard.updates_since_checkpoint = 0;
  write_checkpoint(shard, now);
}

void ShardedService::write_checkpoint(Shard& shard, sim::SimTime now) {
  if (shard.checkpoints == nullptr) return;
  try {
    persist::Checkpoint ckpt;
    ckpt.config_fingerprint = persist::engine_config_fingerprint(config_.engine);
    ckpt.wal_sequence = shard.wal != nullptr ? shard.wal->next_sequence() : 0;
    ckpt.sim_time = now;
    ckpt.engine = shard.engine->snapshot();
    ckpt.middleware = shard.middleware->snapshot();
    ckpt.counters = persist::sample_counters(shard.engine->metrics());
    shard.checkpoints->write(ckpt);
  } catch (const std::exception&) {
    // A failed checkpoint only lengthens a future replay; never fail the
    // update over it.
    checkpoint_failures_->inc();
  }
}

void ShardedService::set_reference_ids(std::vector<sim::TagId> ids) {
  reference_ids_ = std::move(ids);
  reference_set_.clear();
  reference_set_.insert(reference_ids_.begin(), reference_ids_.end());
  for (auto& [id, shard] : shards_) {
    if (shard->awaiting_recovery) continue;  // applied again by recovery
    run_on(*shard->queue, [&s = *shard, this] {
      s.engine->set_reference_ids(reference_ids_);
    });
  }
}

void ShardedService::track(sim::TagId tag, std::string name,
                           std::optional<std::uint32_t> zone) {
  TrackedTag info;
  info.name = std::move(name);
  info.zone = zone;
  tags_[tag] = info;
  Shard& owner = *shards_.at(router_.route(tag, zone));
  if (!owner.awaiting_recovery) {
    run_on(*owner.queue, [&] { owner.engine->track(tag, info.name); });
  }
}

void ShardedService::untrack(sim::TagId tag) {
  const auto it = tags_.find(tag);
  if (it == tags_.end()) return;
  Shard& owner = *shards_.at(router_.route(tag, it->second.zone));
  if (!owner.awaiting_recovery) {
    run_on(*owner.queue, [&] { owner.engine->untrack(tag); });
  }
  tags_.erase(it);
  latest_.erase(tag);
}

void ShardedService::pin_zone(std::uint32_t zone, std::uint32_t shard) {
  router_.pin_zone(zone, shard);
}

void ShardedService::pin_tag(sim::TagId tag, std::uint32_t shard) {
  router_.pin_tag(tag, shard);
}

void ShardedService::enqueue_reading(Shard& shard, const sim::RssiReading& reading) {
  if (shard.awaiting_recovery) {
    readings_lost_->inc();
    return;
  }
  if (shard.gated && reading.time <= shard.resume_time) {
    readings_gated_->inc();
    return;
  }
  shard.pending.push_back(reading);
  if (shard.pending.size() >= config_.ingest_batch) flush_pending(shard);
}

void ShardedService::flush_pending(Shard& shard) {
  if (shard.pending.empty()) return;
  const std::uint64_t blocked_before = shard.queue->blocked();
  const std::size_t dropped = shard.queue->push_readings(std::move(shard.pending));
  shard.pending = {};
  batches_total_->inc();
  if (dropped > 0) batches_dropped_->inc(dropped);
  if (shard.queue->blocked() != blocked_before) ingest_blocked_->inc();
}

void ShardedService::ingest(const sim::RssiReading& reading) {
  ensure_ready();
  readings_total_->inc();
  if (reference_set_.count(reading.tag) != 0) {
    broadcasts_total_->inc();
    for (auto& [id, shard] : shards_) enqueue_reading(*shard, reading);
    return;
  }
  std::optional<std::uint32_t> zone;
  if (const auto it = tags_.find(reading.tag); it != tags_.end()) {
    zone = it->second.zone;
  }
  enqueue_reading(*shards_.at(router_.route(reading.tag, zone)), reading);
}

void ShardedService::ingest(const std::vector<sim::RssiReading>& readings) {
  for (const auto& reading : readings) ingest(reading);
}

void ShardedService::ingest_sequenced(const std::vector<sim::RssiReading>& readings,
                                      std::uint64_t sequence) {
  ensure_ready();
  // Redelivery of a batch every live shard already journaled an ack for:
  // drop it whole. (A batch past the cursor re-ingests; the middleware's
  // last-write-wins duplicate policy and the resume gates absorb overlap.)
  if (sequence != 0 && sequence <= last_ack_sequence()) return;
  ingest(readings);
  for (auto& [id, shard] : shards_) {
    if (shard->awaiting_recovery) continue;
    // Ack marker strictly AFTER the batch's readings: flush them into the
    // FIFO queue first, then append the marker behind them on the worker.
    flush_pending(*shard);
    Shard* s = shard.get();
    shard->queue->push_control([s, sequence] {
      if (s->wal != nullptr) s->wal->append_ack_marker(sequence);
      s->acked.store(sequence, std::memory_order_release);
    });
  }
}

void ShardedService::ingest_sequenced(const std::vector<sim::RssiReading>& readings,
                                      std::uint64_t sequence,
                                      const obs::TraceContext& ctx) {
  // Capture-only adoption: note the propagated context on each receiving
  // shard's timeline (no-op while tracing is disabled), then ingest exactly
  // as an uncontexted batch would.
  if (ctx.trace_id != 0) {
    for (auto& [id, shard] : shards_) {
      if (shard->awaiting_recovery) continue;
      if (!shard->engine->tracer().enabled()) continue;
      shard->engine->tracer().instant(
          "wire.ingest_batch",
          "{\"trace_id\":" + std::to_string(ctx.trace_id) +
              ",\"parent_span\":" + std::to_string(ctx.parent_span_id) +
              ",\"sequence\":" + std::to_string(sequence) + "}");
    }
  }
  ingest_sequenced(readings, sequence);
}

std::uint64_t ShardedService::last_ack_sequence() const {
  std::uint64_t min_ack = std::numeric_limits<std::uint64_t>::max();
  bool any = false;
  for (const auto& [id, shard] : shards_) {
    if (shard->awaiting_recovery) continue;
    any = true;
    min_ack = std::min(min_ack, shard->acked.load(std::memory_order_acquire));
  }
  return any ? min_ack : 0;
}

HeartbeatInfo ShardedService::heartbeat() {
  HeartbeatInfo info;
  info.last_ack_sequence = last_ack_sequence();
  for (auto& [id, shard] : shards_) {
    if (shard->awaiting_recovery || shard->wal == nullptr) continue;
    flush_pending(*shard);
    const std::uint64_t next =
        run_on(*shard->queue, [&s = *shard] { return s.wal->next_sequence(); });
    info.wal_next_sequence = std::max(info.wal_next_sequence, next);
  }
  // The drain above also executed any queued ack markers; re-read so the
  // cursor covers every batch enqueued before this probe.
  info.last_ack_sequence = last_ack_sequence();
  for (auto& [id, shard] : shards_) {
    if (shard->awaiting_recovery) continue;
    if (info.mono_now_us == 0.0) {
      info.mono_now_us = shard->engine->tracer().now_us();
    }
    // auto_dump_count is written on the worker thread; read it there.
    const int dumps =
        run_on(*shard->queue,
               [&s = *shard] { return s.engine->auto_dump_count(); });
    info.anomaly_dumps += static_cast<std::uint64_t>(std::max(0, dumps));
  }
  return info;
}

obs::TraceDump ShardedService::trace_dump(std::size_t max_events) {
  for (auto& [id, shard] : shards_) {
    if (shard->awaiting_recovery) continue;
    return shard->engine->tracer().dump(max_events);
  }
  return {};
}

std::optional<std::string> ShardedService::provenance_json() {
  std::string out = "{\"shards\":[";
  bool first = true;
  for (auto& [id, shard] : shards_) {
    if (shard->awaiting_recovery) continue;
    const std::string records = run_on(*shard->queue, [&s = *shard] {
      return obs::to_json(s.engine->flight_recorder());
    });
    if (!first) out += ",";
    first = false;
    out += "{\"shard\":" + std::to_string(id) + ",\"provenance\":" + records + "}";
  }
  out += "]}";
  return out;
}

std::vector<engine::Fix> ShardedService::poll(sim::SimTime now) {
  ensure_ready();
  const obs::ScopedTimer timer(poll_seconds_);
  for (auto& [id, shard] : shards_) flush_pending(*shard);

  struct PendingShard {
    Shard* shard = nullptr;
    std::optional<std::future<std::vector<engine::Fix>>> future;
  };
  std::vector<PendingShard> pending;
  pending.reserve(shards_.size());
  for (auto& [id, shard] : shards_) {
    if (shard->awaiting_recovery) continue;
    PendingShard entry;
    entry.shard = shard.get();
    if (!(shard->gated && now <= shard->resume_time)) {
      shard->queue->push_evict(now);
      entry.future = shard->queue->push_update(now);
    }
    pending.push_back(std::move(entry));
  }

  std::vector<engine::Fix> merged;
  for (auto& entry : pending) {
    if (entry.future.has_value()) {
      auto fixes = entry.future->get();
      merged.insert(merged.end(), std::make_move_iterator(fixes.begin()),
                    std::make_move_iterator(fixes.end()));
    } else {
      // Replayed poll: this shard already executed the update before the
      // crash; serve the recovered fixes instead of re-running it.
      polls_substituted_->inc();
      const auto it = entry.shard->replayed.find(time_key(now));
      if (it != entry.shard->replayed.end()) {
        merged.insert(merged.end(), it->second.begin(), it->second.end());
      }
    }
  }
  // Tag order — exactly the order a single engine (iterating its tag map)
  // emits, so the merged vector is directly diffable against it.
  std::sort(merged.begin(), merged.end(),
            [](const engine::Fix& a, const engine::Fix& b) { return a.tag < b.tag; });

  for (auto& [id, shard] : shards_) {
    if (shard->gated && now > shard->resume_time) {
      shard->gated = false;
      shard->replayed.clear();
    }
    queue_high_water_->record_max(static_cast<double>(shard->queue->high_water()));
  }
  for (const auto& fix : merged) latest_[fix.tag] = fix;
  last_poll_time_ = now;
  polls_total_->inc();
  return merged;
}

std::optional<engine::Fix> ShardedService::latest_fix(sim::TagId tag) const {
  const auto it = latest_.find(tag);
  if (it == latest_.end()) return std::nullopt;
  return it->second;
}

std::optional<obs::FixRecord> ShardedService::explain(sim::TagId tag) {
  const auto info = tags_.find(tag);
  if (info == tags_.end()) return std::nullopt;
  Shard& owner = *shards_.at(router_.route(tag, info->second.zone));
  if (owner.awaiting_recovery) return std::nullopt;
  return run_on(*owner.queue, [&]() -> std::optional<obs::FixRecord> {
    return owner.engine->flight_recorder().last_for_tag(tag);
  });
}

std::optional<std::string> ShardedService::explain_json(sim::TagId tag) {
  const auto record = explain(tag);
  if (!record.has_value()) return std::nullopt;
  return obs::to_json(*record);
}

void ShardedService::barrier() {
  for (auto& [id, shard] : shards_) {
    flush_pending(*shard);
    if (shard->awaiting_recovery) continue;
    run_on(*shard->queue, [] {});
  }
}

ServiceRecoveryReport::ShardRecovery ShardedService::recover_one(Shard& shard) {
  auto report = run_on(*shard.queue, [&]() -> persist::RecoveryReport {
    // The fresh engine must know the reference ids and this shard's slice of
    // the tag registry BEFORE replay: registration is not journaled, and a
    // cold start (no checkpoint yet) replays the WAL through whatever is
    // registered here. When a checkpoint loads, its own tracked set — the
    // same tags — replaces this.
    if (!reference_ids_.empty() && shard.engine->reference_ids().empty()) {
      shard.engine->set_reference_ids(reference_ids_);
    }
    for (const auto& [tag, info] : tags_) {
      if (router_.route(tag, info.zone) == shard.id) {
        shard.engine->track(tag, info.name);
      }
    }
    persist::RecoveryManager manager({wal_dir(shard.id), checkpoint_dir(shard.id)});
    auto rep = manager.recover(*shard.engine, *shard.middleware);
    attach_wal(shard);  // resumes after the valid prefix replay stopped at
    return rep;
  });

  shard.resume_time = report.recovered_time;
  shard.gated = report.checkpoint_loaded || report.frames_replayed > 0;
  shard.acked.store(report.last_ack_sequence, std::memory_order_release);
  shard.replayed.clear();
  for (auto& fixes : report.replayed_fixes) {
    if (!fixes.empty()) shard.replayed.emplace(time_key(fixes[0].time), fixes);
  }
  shard.awaiting_recovery = false;
  shard.updates_since_checkpoint = 0;
  recoveries_total_->inc();

  ServiceRecoveryReport::ShardRecovery out;
  out.shard = shard.id;
  out.resume_time = shard.resume_time;
  out.report = std::move(report);
  return out;
}

ServiceRecoveryReport ShardedService::recover() {
  if (!config_.recover) {
    throw std::logic_error("ShardedService::recover: not constructed for recovery");
  }
  if (recovered_) {
    throw std::logic_error("ShardedService::recover: already recovered");
  }
  ServiceRecoveryReport report;
  for (auto& [id, shard] : shards_) report.shards.push_back(recover_one(*shard));
  recovered_ = true;
  return report;
}

std::uint64_t ShardedService::recover_now() {
  if (config_.recover && !recovered_) recover();
  return last_ack_sequence();
}

void ShardedService::crash_shard(std::uint32_t shard_id) {
  ensure_ready();
  if (!persistence_enabled()) {
    throw std::logic_error("ShardedService::crash_shard: requires persistence");
  }
  Shard& shard = *shards_.at(shard_id);
  // Everything queued but unexecuted is lost — exactly the loss profile of a
  // killed process (journaled state stays on disk, in-memory state is gone).
  shard.queue->discard_pending();
  shard.queue->push_stop();
  shard.worker.join();
  shard.pending.clear();
  shard.middleware.reset();  // holds the journal pointer; drop before the WAL
  shard.wal.reset();
  shard.checkpoints.reset();
  shard.engine.reset();
  init_shard_core(shard);
  shard.awaiting_recovery = true;
  shard.gated = false;
  shard.resume_time = -std::numeric_limits<double>::infinity();
  shard.replayed.clear();
  shard.worker = std::thread([this, s = &shard] { worker_loop(*s); });
}

persist::RecoveryReport ShardedService::recover_shard(std::uint32_t shard_id) {
  ensure_ready();
  Shard& shard = *shards_.at(shard_id);
  if (!shard.awaiting_recovery) {
    throw std::logic_error("ShardedService::recover_shard: shard is not crashed");
  }
  return recover_one(shard).report;
}

std::vector<sim::RssiReading> ShardedService::migration_readings(Shard& source,
                                                                 sim::TagId tag) {
  const double horizon = last_poll_time_ - config_.middleware.window_s;
  std::vector<sim::RssiReading> readings;
  if (persistence_enabled()) {
    // The moved tag's WAL suffix: every journaled reading still inside the
    // middleware window. The filter threshold matches evict_stale's strict
    // half-open window, so the replayed set is exactly the source's buffer.
    const auto wal = persist::read_wal(wal_dir(source.id));
    for (const auto& frame : wal.frames) {
      if (frame.type != persist::FrameType::kReading) continue;
      if (frame.reading.tag != tag) continue;
      if (frame.reading.time <= horizon) continue;
      readings.push_back(frame.reading);
    }
    return readings;
  }
  // No WAL: lift the tag's window straight out of the source middleware.
  const auto snapshot =
      run_on(*source.queue, [&] { return source.middleware->snapshot(); });
  for (const auto& link : snapshot.links) {
    if (link.tag != tag) continue;
    for (const auto& sample : link.samples) {
      if (sample.time <= horizon) continue;
      sim::RssiReading reading;
      reading.time = sample.time;
      reading.tag = link.tag;
      reading.reader = link.reader;
      reading.rssi_dbm = sample.rssi_dbm;
      readings.push_back(reading);
    }
  }
  return readings;
}

void ShardedService::migrate_tag(sim::TagId tag, const TrackedTag& info,
                                 Shard& source, Shard& destination,
                                 RebalanceReport& report) {
  auto state = run_on(*source.queue,
                      [&]() -> std::optional<engine::TagStateSnapshot> {
                        auto exported = source.engine->export_tag(tag);
                        source.engine->untrack(tag);
                        return exported;
                      });
  if (!state.has_value()) {
    engine::TagStateSnapshot fresh;
    fresh.name = info.name;
    state = fresh;
  }
  auto readings = migration_readings(source, tag);
  run_on(*destination.queue, [&] {
    // The normal update path: readings re-enter through ingest (journaled
    // into the destination's WAL), then the exported per-tag state lands.
    for (const auto& reading : readings) destination.middleware->ingest(reading);
    destination.engine->import_tag(tag, *state);
  });
  report.moved_tags += 1;
  report.replayed_readings += readings.size();
  rebalance_moved_tags_->inc();
  rebalance_replayed_->inc(readings.size());
}

std::pair<engine::EngineStateSnapshot, sim::Middleware::Snapshot>
ShardedService::reference_seed(Shard& donor) {
  auto seed = run_on(*donor.queue, [&] {
    return std::make_pair(donor.engine->snapshot(), donor.middleware->snapshot());
  });
  // Every shard carries identical reference/health/grid state (reference
  // readings are broadcast), so any donor seeds the newcomer. Per-tag state
  // stays behind — migration moves it tag by tag.
  engine::EngineStateSnapshot engine_seed = std::move(seed.first);
  engine_seed.tracked.clear();
  engine_seed.trackers.clear();
  engine_seed.last_good.clear();
  engine_seed.last_quality.clear();
  sim::Middleware::Snapshot middleware_seed;
  for (auto& link : seed.second.links) {
    if (reference_set_.count(link.tag) != 0) {
      middleware_seed.links.push_back(std::move(link));
    }
  }
  return {std::move(engine_seed), std::move(middleware_seed)};
}

void ShardedService::seed_reference_state(Shard& destination) {
  if (shards_.empty()) return;
  Shard& donor = *shards_.begin()->second;
  if (donor.id == destination.id) return;
  auto [engine_seed, middleware_seed] = reference_seed(donor);
  run_on(*destination.queue, [&] {
    destination.engine->restore(engine_seed);
    destination.middleware->restore(middleware_seed);
  });
}

void ShardedService::checkpoint_on_thread(Shard& shard) {
  if (!persistence_enabled()) return;
  run_on(*shard.queue, [&] {
    write_checkpoint(shard, last_poll_time_);
    shard.updates_since_checkpoint = 0;
  });
}

std::pair<std::uint32_t, RebalanceReport> ShardedService::add_shard() {
  ensure_ready();
  barrier();
  std::map<sim::TagId, std::uint32_t> old_owner;
  for (const auto& [tag, info] : tags_) {
    old_owner[tag] = router_.route(tag, info.zone);
  }
  const std::uint32_t id = next_shard_id_++;
  router_.add_shard(id);
  auto created = make_shard(id, /*defer_wal=*/false);
  Shard& destination = *created;
  shards_.emplace(id, std::move(created));
  seed_reference_state(destination);

  RebalanceReport report;
  report.shard = id;
  std::set<std::uint32_t> touched;
  for (const auto& [tag, info] : tags_) {
    const std::uint32_t now_owner = router_.route(tag, info.zone);
    if (now_owner == old_owner.at(tag)) continue;
    migrate_tag(tag, info, *shards_.at(old_owner.at(tag)), *shards_.at(now_owner),
                report);
    touched.insert(old_owner.at(tag));
    touched.insert(now_owner);
  }
  touched.insert(id);  // the seeded reference state must survive a crash too
  for (const auto t : touched) checkpoint_on_thread(*shards_.at(t));
  shards_gauge_->set(static_cast<double>(shards_.size()));
  return {id, report};
}

RebalanceReport ShardedService::remove_shard(std::uint32_t shard_id) {
  ensure_ready();
  if (shards_.count(shard_id) == 0) {
    throw std::invalid_argument("ShardedService::remove_shard: unknown shard");
  }
  if (shards_.size() <= 1) {
    throw std::logic_error("ShardedService::remove_shard: last shard");
  }
  barrier();
  std::vector<sim::TagId> moved;
  for (const auto& [tag, info] : tags_) {
    if (router_.route(tag, info.zone) == shard_id) moved.push_back(tag);
  }
  router_.remove_shard(shard_id);

  Shard& source = *shards_.at(shard_id);
  RebalanceReport report;
  report.shard = shard_id;
  std::set<std::uint32_t> touched;
  for (const auto tag : moved) {
    const TrackedTag& info = tags_.at(tag);
    const std::uint32_t dest = router_.route(tag, info.zone);
    migrate_tag(tag, info, source, *shards_.at(dest), report);
    touched.insert(dest);
  }
  for (const auto t : touched) checkpoint_on_thread(*shards_.at(t));
  shards_.erase(shard_id);  // Shard dtor stops the worker; disk state remains
  shards_gauge_->set(static_cast<double>(shards_.size()));
  return report;
}

std::optional<engine::TagStateSnapshot> ShardedService::export_tag_state(
    sim::TagId tag) {
  ensure_ready();
  const auto it = tags_.find(tag);
  if (it == tags_.end()) {
    throw std::invalid_argument("ShardedService::export_tag_state: unknown tag");
  }
  barrier();  // queued ingest must land before the state leaves
  Shard& source = *shards_.at(router_.route(tag, it->second.zone));
  auto state = run_on(*source.queue,
                      [&]() -> std::optional<engine::TagStateSnapshot> {
                        auto exported = source.engine->export_tag(tag);
                        source.engine->untrack(tag);
                        return exported;
                      });
  tags_.erase(it);
  return state;
}

void ShardedService::import_tag_state(sim::TagId tag,
                                      std::optional<std::uint32_t> zone,
                                      const engine::TagStateSnapshot& state) {
  ensure_ready();
  track(tag, state.name, zone);
  Shard& owner = *shards_.at(router_.route(tag, zone));
  run_on(*owner.queue, [&] { owner.engine->import_tag(tag, state); });
}

std::pair<engine::EngineStateSnapshot, sim::Middleware::Snapshot>
ShardedService::seed_export() {
  ensure_ready();
  barrier();
  return reference_seed(*shards_.begin()->second);
}

void ShardedService::seed_import(const engine::EngineStateSnapshot& engine_seed,
                                 const sim::Middleware::Snapshot& middleware_seed) {
  ensure_ready();
  barrier();
  // Reference state is identical on every shard by the broadcast invariant,
  // so the seed restores into each one (a vire_shardd process has exactly
  // one).
  for (auto& [id, shard] : shards_) {
    Shard& destination = *shard;
    run_on(*destination.queue, [&] {
      destination.engine->restore(engine_seed);
      destination.middleware->restore(middleware_seed);
    });
  }
}

std::uint64_t ShardedService::admin_add_shard() { return add_shard().first; }

std::uint64_t ShardedService::admin_remove_shard(std::uint32_t id) {
  return remove_shard(id).moved_tags;
}

std::vector<std::uint32_t> ShardedService::shard_ids() const {
  std::vector<std::uint32_t> ids;
  ids.reserve(shards_.size());
  for (const auto& [id, shard] : shards_) ids.push_back(id);
  return ids;
}

std::uint32_t ShardedService::owner_of(sim::TagId tag) const {
  std::optional<std::uint32_t> zone;
  if (const auto it = tags_.find(tag); it != tags_.end()) zone = it->second.zone;
  return router_.route(tag, zone);
}

std::string ShardedService::merged_prometheus() const {
  auto snaps = metrics_.snapshot();
  for (const auto& [id, shard] : shards_) {
    const std::string label = "shard=\"" + std::to_string(id) + "\"";
    for (auto& snap : shard->engine->metrics().snapshot()) {
      snap.labels = snap.labels.empty() ? label : snap.labels + "," + label;
      snaps.push_back(std::move(snap));
    }
  }
  return obs::to_prometheus(snaps);
}

std::string ShardedService::merged_json() const {
  auto snaps = metrics_.snapshot();
  for (const auto& [id, shard] : shards_) {
    const std::string label = "shard=\"" + std::to_string(id) + "\"";
    for (auto& snap : shard->engine->metrics().snapshot()) {
      snap.labels = snap.labels.empty() ? label : snap.labels + "," + label;
      snaps.push_back(std::move(snap));
    }
  }
  return obs::to_json(snaps);
}

std::uint64_t ShardedService::dropped_batches() const {
  std::uint64_t total = 0;
  for (const auto& [id, shard] : shards_) total += shard->queue->dropped();
  return total;
}

std::uint64_t ShardedService::blocked_pushes() const {
  std::uint64_t total = 0;
  for (const auto& [id, shard] : shards_) total += shard->queue->blocked();
  return total;
}

}  // namespace vire::service
