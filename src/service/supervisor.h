#pragma once
// Supervisor: self-healing multi-process deployment of the sharded
// localization service (docs/service.md, "Multi-process deployment").
//
// The supervisor owns the ShardRouter and spawns one shard *process* per
// shard (vire_shardd — a thin main over a single-engine ShardedService),
// each serving the wire protocol on its own Unix socket and journaling to
// its own WAL/checkpoint directory. The supervisor itself implements
// Frontend, so vire_supervisord fronts the whole fleet through the same
// ServiceServer that fronts a single shard.
//
// Failure detection — three independent ways:
//   * heartbeat: kHeartbeat probes on an interval; a probe that times out
//     or a shard with no successful ack within heartbeat_timeout_s is dead;
//   * socket: any request hitting EOF/ECONNRESET/EPIPE (TransportError);
//   * waitpid: the child is reaped (exit or signal) before it was asked to.
//
// Restart policy: exponential backoff with deterministic jitter between
// restarts; a crash-loop circuit breaker marks the shard DOWN after
// breaker_max_deaths deaths inside breaker_window_s, re-probing it
// (half-open) every breaker_cooldown_s. While a shard is unreachable its
// tags are answered from last-known fixes with FixQuality::kHold — graceful
// degradation, never a stall.
//
// Durability + bit-identity: every ingest batch gets a sequence and is held
// in a per-shard op-log until the shard's heartbeat reports the batch
// durably journaled (WAL kAck marker, persist/wal.h). On restart the shard
// runs its normal checkpoint+WAL recovery, reports the last acked batch,
// and the supervisor replays exactly the un-acked suffix — plus any polls
// that could not be delivered while the shard was dead — in original order.
// Combined with the shard's own resume gate this keeps the merged poll
// stream fix-for-fix bit-identical to an uninterrupted single-engine run
// (tests/service/supervisor_chaos_test.cpp).
//
// Durable control plane (docs/service.md, "Supervisor failover & elastic
// membership"): the control-plane state that used to live only in this
// process — op-logs, the ingest cursor, router membership, breaker states —
// is journaled write-ahead to <root>/journal/ (service/control_journal.h)
// and checkpointed periodically. A supervisor restarted over an existing
// root rebuilds all of it, re-adopts still-running orphaned shard processes
// (pidfile + socket handshake; it cannot waitpid them, so liveness is
// kill(pid,0)/ESRCH) or respawns dead ones, and replays only the un-acked
// suffix — merged polls stay bit-identical through a SIGKILL of the
// *supervisor* itself. Membership is elastic at runtime: admin_add_shard /
// admin_remove_shard (wire kAddShard/kRemoveShard) walk a journaled
// joining->active->draining state machine, seed newcomers with a
// reference-only snapshot and re-feed moved tags from the source shard's
// WAL suffix through normal ingest.

#include <sys/types.h>

#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/localization_engine.h"
#include "env/deployment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/client.h"
#include "service/control_journal.h"
#include "service/frontend.h"
#include "service/shard_router.h"
#include "sim/types.h"

namespace vire::service {

/// Time source seam. Production uses SteadyClock; the restart-storm test
/// injects a fake clock so backoff/breaker windows elapse instantly.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic seconds.
  virtual double now() = 0;
  virtual void sleep_for(double seconds) = 0;
};

class SteadyClock final : public Clock {
 public:
  double now() override;
  void sleep_for(double seconds) override;
};

enum class ShardState : std::uint8_t {
  kStarting = 0, ///< spawned, not yet connected/caught up
  kUp = 1,       ///< serving
  kBackoff = 2,  ///< dead, restart scheduled
  kDown = 3,     ///< circuit breaker open; degraded answers only
};
[[nodiscard]] std::string_view to_string(ShardState state) noexcept;

enum class DeathCause : std::uint8_t {
  kHeartbeatTimeout = 0,
  kSocket = 1,
  kWaitpid = 2,
};
inline constexpr std::size_t kDeathCauseCount = 3;
[[nodiscard]] std::string_view to_string(DeathCause cause) noexcept;

struct SupervisorConfig {
  int shards = 2;
  /// Root for per-shard sockets (shard-<id>.sock) and data dirs (shard-<id>).
  std::filesystem::path root_dir;
  /// Path to the vire_shardd binary.
  std::filesystem::path shardd_binary;
  /// Extra argv appended to every shard spawn (test seam: --abort-on-start).
  std::vector<std::string> shardd_extra_args;

  // Forwarded to each shard process.
  int engine_workers = 1;
  double middleware_window_s = 10.0;
  int checkpoint_every_updates = 8;

  ShardRouterConfig router;

  /// Per-request read deadline on the supervisor->shard connection.
  double request_timeout_s = 10.0;
  /// Extra attempts a forwarded request gets after a transport failure
  /// (each attempt revives the shard first when possible).
  int request_retries = 2;

  /// Longest pending backoff a poll-path revival will wait out inline.
  /// try_revive() runs on the server's event-loop thread with mutex_ held, so
  /// waiting out a full restart_backoff_max_s would stall every connection;
  /// beyond this bound the request degrades (held fixes / journaled op-log)
  /// and tick() performs the restart on schedule instead.
  double inline_revival_max_wait_s = 0.25;

  double heartbeat_interval_s = 0.5;
  /// A shard with no successful heartbeat ack for this long is declared
  /// dead even if no request has failed yet.
  double heartbeat_timeout_s = 5.0;

  double restart_backoff_initial_s = 0.05;
  double restart_backoff_max_s = 2.0;
  double restart_backoff_multiplier = 2.0;
  /// Jitter fraction applied to each backoff delay (deterministic, derived
  /// from `seed`, shard id and restart count via splitmix64).
  double restart_jitter_frac = 0.1;
  /// A shard continuously up this long gets its backoff counter reset.
  double backoff_reset_after_s = 10.0;

  /// Breaker: this many deaths inside breaker_window_s opens the circuit.
  int breaker_max_deaths = 5;
  double breaker_window_s = 10.0;
  /// How long the breaker stays open before a half-open restart probe.
  double breaker_cooldown_s = 5.0;

  /// Budget for a spawned shard to bind its socket and accept the first
  /// connection.
  double spawn_wait_s = 10.0;
  /// Delay between connect attempts while waiting for a spawn.
  double connect_retry_s = 0.02;

  std::uint64_t seed = 0;
  /// Per-shard op-log bound (entries). Overflow evicts the oldest entry; with
  /// the control journal on, the evicted history stays recoverable (the shard
  /// is marked for a journal-backed op-log rebuild at its next bring-up and
  /// vire_supervisor_oplog_overflow_total counts the episode). Only with the
  /// journal off is an evicted entry truly unreplayable
  /// (vire_supervisor_oplog_dropped_total).
  std::size_t oplog_capacity = 4096;

  /// Durable control plane: journal every control-plane op (ingest batches,
  /// sequence allocations, membership and breaker transitions) to
  /// <root_dir>/journal/ so a restarted supervisor rebuilds its op-log,
  /// reseeds sequences, re-adopts orphaned shard processes and replays only
  /// the un-acked suffix.
  bool control_journal = true;
  /// Journal appends between automatic control checkpoints.
  std::uint64_t journal_checkpoint_every_ops = 1024;

  /// Fleet-wide tracing (docs/observability.md, "Fleet observability"):
  /// enables the supervisor's own tracer and passes --trace to every spawned
  /// shard, so fleet_trace_json() can merge the whole fleet's spans. Trace
  /// contexts are stamped on the wire regardless of this flag (the bytes are
  /// identical on or off), so merged polls stay bit-identical either way.
  bool fleet_tracing = false;
  /// Events pulled per shard by one kTraceDump (bounds the reply frame).
  std::size_t trace_pull_events = 4096;
  /// End-to-end ingest-to-fix SLO; a polled fix older than this bumps
  /// vire_fleet_slo_burn_total. <= 0 disables burn counting.
  double ingest_to_fix_slo_s = 1.0;
};

class Supervisor : public Frontend {
 public:
  /// `clock` may be null (a built-in SteadyClock is used); when provided it
  /// must outlive the supervisor.
  Supervisor(const env::Deployment& deployment, SupervisorConfig config,
             Clock* clock = nullptr);
  ~Supervisor() override;

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawns every shard process and brings it up. A shard that fails to
  /// come up is left in backoff (or breaker-open) — start() itself never
  /// throws for a crashing shard; tick() keeps retrying it.
  void start();
  /// SIGTERMs every child (SIGKILL after a grace period) and reaps it.
  /// Idempotent.
  void stop();

  /// Drives supervision: reaps dead children, sends due heartbeats, trims
  /// acked op-log entries, executes scheduled restarts and breaker probes.
  /// Call periodically (vire_supervisord ticks every heartbeat_interval_s/2);
  /// safe to call concurrently with the server thread's Frontend calls.
  void tick();

  // Frontend. ingest() assigns each batch an internal sequence and journals
  // it in the owning shards' op-logs until durably acked. poll() forwards to
  // every shard (reviving dead ones inline when the breaker allows) and
  // degrades a DOWN shard's tags to FixQuality::kHold answers.
  void ingest(const std::vector<sim::RssiReading>& readings) override;
  std::vector<engine::Fix> poll(sim::SimTime now) override;
  [[nodiscard]] std::optional<engine::Fix> latest_fix(
      sim::TagId tag) const override;
  std::optional<std::string> explain_json(sim::TagId tag) override;
  std::string snapshot_prometheus() const override;
  std::string snapshot_json() const override;
  void set_reference_ids(std::vector<sim::TagId> ids) override;
  void track(sim::TagId tag, std::string name,
             std::optional<std::uint32_t> zone) override;
  /// Fleet durability cursor: next batch sequence + the lowest batch
  /// sequence every shard has durably journaled.
  HeartbeatInfo heartbeat() override;
  /// The supervisor's own span ring (kTraceDump against vire_supervisord).
  obs::TraceDump trace_dump(std::size_t max_events) override;
  /// Flight-recorder provenance pulled from every UP shard, merged as
  /// {"fleet":[{"shard":N,"provenance":{...}},...]} — explain_fix-style
  /// introspection against a live fleet through one connection.
  std::optional<std::string> provenance_json() override;
  /// Live membership (wire kAddShard/kRemoveShard): spawn + seed + migrate a
  /// new shard process into the fleet, returning its id; or drain shard `id`
  /// (WAL-suffix migration of every tag it owns) and retire its process,
  /// returning the number of tags moved. Both journal the state machine
  /// (joining -> active -> draining) so an interrupted change resumes after
  /// a supervisor restart.
  std::uint64_t admin_add_shard() override;
  std::uint64_t admin_remove_shard(std::uint32_t id) override;
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept override {
    return metrics_;
  }

  /// One merged Chrome trace for the whole fleet: pulls each UP shard's span
  /// ring (kTraceDump), rebases its timestamps onto the supervisor timeline
  /// using the heartbeat-estimated clock offset, and tags every process with
  /// Perfetto process_name/pid metadata (supervisor pid 1, shard N pid N+2).
  [[nodiscard]] std::string fleet_trace_json();
  /// Writes fleet_trace_json() to `path`, creating parent directories.
  void write_fleet_trace(const std::filesystem::path& path);

  // Introspection (tests, drills).
  [[nodiscard]] ShardState shard_state(std::uint32_t shard) const;
  [[nodiscard]] pid_t shard_pid(std::uint32_t shard) const;
  [[nodiscard]] std::uint64_t restarts() const noexcept;
  [[nodiscard]] std::size_t shard_count() const;
  [[nodiscard]] MemberPhase member_phase(std::uint32_t shard) const;
  [[nodiscard]] bool shard_adopted(std::uint32_t shard) const;
  /// True when the constructor rebuilt state from an existing journal.
  [[nodiscard]] bool recovered_from_journal() const noexcept {
    return recovered_from_journal_;
  }
  /// Forces a control checkpoint now (drills; stop() does this implicitly).
  void checkpoint_now();
  [[nodiscard]] const ShardRouter& router() const noexcept { return router_; }
  [[nodiscard]] const SupervisorConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] obs::Tracer& tracer() noexcept { return tracer_; }

 private:
  struct OpEntry {
    enum class Kind : std::uint8_t { kBatch, kPoll };
    Kind kind = Kind::kBatch;
    std::uint64_t sequence = 0;               ///< kBatch
    std::vector<sim::RssiReading> readings;   ///< kBatch
    sim::SimTime time = 0.0;                  ///< kPoll (missed while dead)
    /// Control-journal sequence of this entry (0 = journal disabled).
    std::uint64_t journal_seq = 0;
  };

  struct ManagedShard {
    std::uint32_t id = 0;
    std::filesystem::path socket;
    std::filesystem::path data_dir;
    pid_t pid = -1;
    /// True when `pid` is an orphan from a previous supervisor incarnation
    /// re-adopted via its pidfile: not our child, so liveness checks use
    /// kill(pid, 0)/ESRCH instead of waitpid.
    bool adopted = false;
    /// Membership state machine position (journaled; control_journal.h).
    MemberPhase phase = MemberPhase::kActive;
    std::unique_ptr<ServiceClient> client;
    ShardState state = ShardState::kStarting;
    int restart_count = 0;        ///< consecutive failed/backed-off restarts
    double next_restart_time = 0.0;
    double last_heartbeat_ok = 0.0;
    double up_since = 0.0;
    std::uint64_t heartbeat_seq = 0;
    std::uint64_t last_ack = 0;   ///< durably journaled batch cursor
    std::deque<double> death_times;
    double breaker_open_until = 0.0;
    /// Un-acked batches + undelivered polls, in original order.
    std::deque<OpEntry> oplog;
    /// Capacity overflow evicted journal-backed entries: rebuild the op-log
    /// from the control journal at the next bring-up (replay()).
    bool oplog_overflow = false;
    /// Journal sequence of the oldest evicted entry — holds the checkpoint
    /// floor down so the needed suffix is never pruned before the rebuild.
    std::uint64_t overflow_floor = 0;
    /// Journal sequence through which journaled polls have been executed.
    std::uint64_t polls_done = 0;
    /// Clock offset of this shard's trace clock vs the supervisor's,
    /// estimated from heartbeat round trips; reset when the process restarts
    /// (a new process has a new clock epoch).
    obs::ClockOffsetEstimator offset;
    /// Cumulative anomaly auto-dumps last reported by this shard's ack.
    std::uint64_t anomaly_dumps = 0;
    /// Ingest stamp (supervisor tracer clock, µs) per in-flight batch
    /// sequence; matched and cleared at the next successful poll merge to
    /// feed vire_fleet_ingest_to_fix_seconds and the batch_e2e spans.
    std::map<std::uint64_t, double> pending_batches;
  };

  [[nodiscard]] std::uint32_t owner_of(sim::TagId tag) const;
  [[nodiscard]] bool is_reference(sim::TagId tag) const;

  /// Builds a ManagedShard record (paths + lazily-registered per-shard
  /// metrics) for `id`; does not insert it into shards_.
  [[nodiscard]] ManagedShard make_shard(std::uint32_t id);
  void ensure_shard_metrics(std::uint32_t id);

  void spawn(ManagedShard& shard);
  /// Re-attach to a still-running orphan from a previous supervisor
  /// incarnation: pidfile -> kill(pid,0) liveness -> socket handshake.
  bool try_adopt(ManagedShard& shard);
  void kill_child(ManagedShard& shard, int signal) noexcept;
  /// Waits `grace_s` for the child to exit (the caller sends SIGTERM first),
  /// then SIGKILLs; reaps children, ESRCH-polls adoptees.
  void shutdown_child(ManagedShard& shard, double grace_s) noexcept;
  /// True when the shard's process is gone (waitpid for children, ESRCH for
  /// adoptees). Reaps a dead child as a side effect.
  [[nodiscard]] bool process_dead(ManagedShard& shard) noexcept;
  /// Spawn + connect + handshake + re-register + recover + replay. Returns
  /// false (child killed/reaped) on any failure.
  bool bring_up(ManagedShard& shard);
  void replay(ManagedShard& shard);
  void push_oplog(ManagedShard& shard, OpEntry entry);
  /// Records a durable-ack cursor learned from the shard (recovery or
  /// heartbeat) and keeps ingest_seq_ strictly above every cursor: a WAL can
  /// carry acks from a previous supervisor incarnation, and a fresh batch
  /// numbered at or below such a cursor would be dropped as a duplicate by
  /// the shard and trimmed as acked here — silent data loss.
  void observe_ack(ManagedShard& shard, std::uint64_t ack);
  void trim_oplog(ManagedShard& shard);
  void handle_death(ManagedShard& shard, DeathCause cause);
  /// Restart a non-UP shard if policy allows (waits out a pending backoff up
  /// to inline_revival_max_wait_s, else defers to tick(); respects an open
  /// breaker). Returns true when the shard is UP again.
  bool try_revive(ManagedShard& shard);
  void mark_up(ManagedShard& shard);
  [[nodiscard]] double backoff_delay(const ManagedShard& shard) const;
  void heartbeat_shard(ManagedShard& shard);
  void refresh_state_metrics();
  void close_breaker(ManagedShard& shard);

  // Control journal (tentpole). All called with mutex_ held.
  void restore_from_journal(RecoveredControlState recovered);
  [[nodiscard]] ControlCheckpoint build_checkpoint() const;
  void write_control_checkpoint();
  void maybe_checkpoint();
  /// Heartbeat-drains every UP shard (forcing its WAL to catch up) and
  /// checkpoints, so a clean shutdown leaves nothing to replay.
  void drain_and_checkpoint();

  // Elastic membership (tentpole). All called with mutex_ held.
  /// Finishes a join: reference seed from an active donor, router insert,
  /// migration of every tag whose owner changed, kShardActive journal mark.
  void complete_join(ManagedShard& fresh);
  /// Moves every tag off `shard` (router removal + per-tag migration).
  /// `in_router` distinguishes a live drain from one resumed after restart
  /// (recovery rebuilds the router without draining members).
  std::uint64_t drain_shard(ManagedShard& shard, bool in_router);
  /// Resumes interrupted joins/drains left behind by a crashed supervisor.
  void resume_membership();
  /// Moves one tag across processes: export (+untrack) at the source,
  /// WAL-suffix readings re-fed through normal ingest at the destination,
  /// then the exported per-tag state imported on top.
  void migrate_tag_cross(sim::TagId tag, std::uint32_t from_id,
                         std::uint32_t to_id);
  [[nodiscard]] std::vector<sim::RssiReading> migration_readings_cross(
      const ManagedShard& source, sim::TagId tag) const;
  /// Deterministic nonzero trace id for a batch/poll sequence (seeded).
  [[nodiscard]] std::uint64_t trace_id_for(std::uint64_t sequence) const;
  void observe_ingest_to_fix(double latency_s);

  template <typename Fn>
  auto with_shard(ManagedShard& shard, Fn fn)
      -> std::optional<decltype(fn(std::declval<ServiceClient&>()))>;

  env::Deployment deployment_;
  SupervisorConfig config_;
  SteadyClock steady_clock_;
  Clock* clock_;
  ShardRouter router_;
  mutable std::mutex mutex_;  ///< serializes server thread vs tick loop
  std::map<std::uint32_t, ManagedShard> shards_;  ///< id order
  std::vector<sim::TagId> reference_ids_;
  struct TrackedTag {
    std::string name;
    std::optional<std::uint32_t> zone;
  };
  std::map<sim::TagId, TrackedTag> tags_;
  std::map<sim::TagId, engine::Fix> latest_;
  std::uint64_t ingest_seq_ = 0;
  bool started_ = false;

  std::unique_ptr<ControlJournal> journal_;
  std::uint32_t next_shard_id_ = 0;
  /// Latest poll time seen — the migration horizon cursor (checkpointed).
  double last_poll_time_ = 0.0;
  bool recovered_from_journal_ = false;

  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  obs::Counter* restarts_total_ = nullptr;
  obs::Counter* deaths_total_[kDeathCauseCount] = {};
  obs::Counter* breaker_open_total_ = nullptr;
  obs::Counter* replayed_batches_ = nullptr;
  obs::Counter* replayed_readings_ = nullptr;
  obs::Counter* replayed_polls_ = nullptr;
  obs::Counter* held_fixes_ = nullptr;
  obs::Counter* heartbeats_total_ = nullptr;
  obs::Counter* oplog_dropped_ = nullptr;
  obs::Counter* oplog_overflow_ = nullptr;
  obs::Counter* adoptions_total_ = nullptr;
  obs::Counter* membership_changes_add_ = nullptr;
  obs::Counter* membership_changes_remove_ = nullptr;
  obs::Counter* membership_moved_tags_ = nullptr;
  obs::Counter* membership_replayed_readings_ = nullptr;
  obs::Counter* polls_total_ = nullptr;
  obs::Gauge* state_gauges_[4] = {};
  obs::Histogram* poll_seconds_ = nullptr;
  obs::Histogram* ingest_to_fix_seconds_ = nullptr;
  obs::Counter* slo_burn_ = nullptr;
  std::map<std::uint32_t, obs::Histogram*> rtt_seconds_;
  std::map<std::uint32_t, obs::Counter*> anomaly_dumps_total_;
  std::map<std::uint32_t, obs::Gauge*> clock_offset_gauges_;
};

}  // namespace vire::service
