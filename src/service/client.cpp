#include "service/client.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace vire::service {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

}  // namespace

void ignore_sigpipe() noexcept {
  struct sigaction action {};
  action.sa_handler = SIG_IGN;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGPIPE, &action, nullptr);
}

ServiceClient::ServiceClient(const std::filesystem::path& socket_path,
                             ClientConfig config)
    : config_(std::move(config)), decoder_(config_.max_payload) {
  connect(socket_path);
  if (config_.handshake) handshake();
}

ServiceClient::ServiceClient(const std::filesystem::path& socket_path,
                             std::size_t max_payload)
    : ServiceClient(socket_path, [max_payload] {
        ClientConfig config;
        config.max_payload = max_payload;
        return config;
      }()) {}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

void ServiceClient::connect(const std::filesystem::path& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string p = socket_path.string();
  if (p.size() >= sizeof(addr.sun_path)) {
    throw TransportError("ServiceClient: socket path too long: " + p);
  }
  std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw TransportError("ServiceClient: socket() failed");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw TransportError("ServiceClient: connect failed on " + p);
  }
}

void ServiceClient::handshake() {
  Hello hello;
  hello.version = kWireVersion;
  hello.peer_name = config_.peer_name;
  send_all(encode_frame(MsgType::kHello, encode_hello(hello)));
  const Frame reply = read_frame();
  if (reply.type == MsgType::kError) {
    // The server rejected us (version skew) and is about to close the
    // connection — a transport-level incompatibility, not a request error.
    throw TransportError("ServiceClient: handshake rejected: " + reply.payload);
  }
  auto ack = decode_hello(reply.payload);
  if (reply.type != MsgType::kHelloAck || !ack.has_value()) {
    throw TransportError("ServiceClient: bad hello response");
  }
  if (ack->version != kWireVersion) {
    throw TransportError("ServiceClient: wire version mismatch: server v" +
                         std::to_string(ack->version) + ", client v" +
                         std::to_string(kWireVersion));
  }
  server_name_ = std::move(ack->peer_name);
}

void ServiceClient::send_all(std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw TransportError("ServiceClient: send failed");
  }
}

Frame ServiceClient::read_frame() {
  using clock = std::chrono::steady_clock;
  const bool bounded = config_.read_timeout_s > 0.0;
  const auto deadline =
      clock::now() + std::chrono::duration_cast<clock::duration>(
                         std::chrono::duration<double>(
                             bounded ? config_.read_timeout_s : 0.0));
  for (;;) {
    if (auto frame = decoder_.next()) return *frame;
    if (decoder_.failed()) {
      throw TransportError("ServiceClient: response stream corrupt");
    }
    int timeout_ms = -1;
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - clock::now());
      if (left.count() <= 0) {
        throw TimeoutError("ServiceClient: read timed out after " +
                           std::to_string(config_.read_timeout_s) + "s");
      }
      timeout_ms = static_cast<int>(left.count());
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw TransportError("ServiceClient: poll failed");
    }
    if (ready == 0) {
      throw TimeoutError("ServiceClient: read timed out after " +
                         std::to_string(config_.read_timeout_s) + "s");
    }
    char buf[kReadChunk];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw TransportError("ServiceClient: connection closed by server");
  }
}

Frame ServiceClient::request(MsgType type, std::string_view payload,
                             MsgType expected, const char* what) {
  send_all(encode_frame(type, payload));
  Frame reply = read_frame();
  if (reply.type == MsgType::kError) {
    throw std::runtime_error("ServiceClient: " + reply.payload);
  }
  if (reply.type != expected) {
    throw std::runtime_error(std::string("ServiceClient: bad ") + what +
                             " response");
  }
  return reply;
}

void ServiceClient::stream(const std::vector<sim::RssiReading>& readings) {
  send_all(encode_frame(MsgType::kIngest, encode_ingest(readings)));
}

void ServiceClient::stream_sequenced(
    std::uint64_t sequence, const std::vector<sim::RssiReading>& readings) {
  send_all(encode_frame(MsgType::kIngestSeq,
                        encode_ingest_seq(sequence, readings)));
}

void ServiceClient::stream_sequenced(
    std::uint64_t sequence, const obs::TraceContext& ctx,
    const std::vector<sim::RssiReading>& readings) {
  send_all(encode_frame(MsgType::kIngestSeq,
                        encode_ingest_seq(sequence, ctx, readings)));
}

std::vector<engine::Fix> ServiceClient::poll(sim::SimTime now) {
  return poll(now, obs::TraceContext{});
}

std::vector<engine::Fix> ServiceClient::poll(sim::SimTime now,
                                             const obs::TraceContext& ctx) {
  const Frame reply = request(MsgType::kPoll, encode_poll({now, ctx}),
                              MsgType::kFixBatch, "poll");
  auto fixes = decode_fixes(reply.payload);
  if (!fixes.has_value()) {
    throw std::runtime_error("ServiceClient: bad poll response");
  }
  return std::move(*fixes);
}

std::optional<engine::Fix> ServiceClient::latest_fix(sim::TagId tag) {
  const Frame reply = request(MsgType::kLatestFix, encode_tag(tag),
                              MsgType::kFixReply, "latest_fix");
  auto fix = decode_fix_reply(reply.payload);
  if (!fix.has_value()) {
    throw std::runtime_error("ServiceClient: bad latest_fix response");
  }
  return std::move(*fix);
}

std::optional<std::string> ServiceClient::explain(sim::TagId tag) {
  send_all(encode_frame(MsgType::kExplain, encode_tag(tag)));
  const Frame reply = read_frame();
  if (reply.type == MsgType::kText) return reply.payload;
  if (reply.type == MsgType::kError) return std::nullopt;
  throw std::runtime_error("ServiceClient: bad explain response");
}

std::string ServiceClient::snapshot(std::uint8_t format) {
  const Frame reply = request(MsgType::kSnapshot,
                              encode_snapshot_request(format), MsgType::kText,
                              "snapshot");
  return reply.payload;
}

std::string ServiceClient::snapshot_prometheus() {
  return snapshot(kSnapshotPrometheus);
}

std::string ServiceClient::snapshot_json() { return snapshot(kSnapshotJson); }

HeartbeatAck ServiceClient::heartbeat(std::uint64_t seq) {
  const Frame reply = request(MsgType::kHeartbeat, encode_u64(seq),
                              MsgType::kHeartbeatAck, "heartbeat");
  auto ack = decode_heartbeat_ack(reply.payload);
  if (!ack.has_value() || ack->seq != seq) {
    throw std::runtime_error("ServiceClient: bad heartbeat response");
  }
  return *ack;
}

void ServiceClient::track(const TrackRequest& req) {
  request(MsgType::kTrack, encode_track(req), MsgType::kOk, "track");
}

void ServiceClient::set_reference_ids(const std::vector<sim::TagId>& ids) {
  request(MsgType::kSetReference, encode_reference_ids(ids), MsgType::kOk,
          "set_reference");
}

std::uint64_t ServiceClient::recover_now() {
  const Frame reply = request(MsgType::kRecover, {}, MsgType::kOk, "recover");
  auto last_ack = decode_u64(reply.payload);
  if (!last_ack.has_value()) {
    throw std::runtime_error("ServiceClient: bad recover response");
  }
  return *last_ack;
}

obs::TraceDump ServiceClient::trace_dump(std::uint32_t max_events) {
  const Frame reply = request(MsgType::kTraceDump, encode_u32(max_events),
                              MsgType::kTraceDumpReply, "trace_dump");
  auto dump = decode_trace_dump(reply.payload);
  if (!dump.has_value()) {
    throw std::runtime_error("ServiceClient: bad trace_dump response");
  }
  return std::move(*dump);
}

std::optional<std::string> ServiceClient::provenance() {
  send_all(encode_frame(MsgType::kProvenanceDump, {}));
  const Frame reply = read_frame();
  if (reply.type == MsgType::kText) return reply.payload;
  if (reply.type == MsgType::kError) return std::nullopt;
  throw std::runtime_error("ServiceClient: bad provenance response");
}

std::optional<engine::TagStateSnapshot> ServiceClient::export_tag_state(
    sim::TagId tag) {
  const Frame reply = request(MsgType::kExportTag, encode_u32(tag),
                              MsgType::kTagState, "export_tag");
  auto state = decode_tag_state(reply.payload);
  if (!state.has_value()) {
    throw std::runtime_error("ServiceClient: bad export_tag response");
  }
  return std::move(*state);
}

void ServiceClient::import_tag_state(sim::TagId tag,
                                     std::optional<std::uint32_t> zone,
                                     const engine::TagStateSnapshot& state) {
  request(MsgType::kImportTag, encode_import_tag({tag, zone, state}),
          MsgType::kOk, "import_tag");
}

SeedState ServiceClient::seed_export() {
  const Frame reply =
      request(MsgType::kSeedExport, {}, MsgType::kSeedState, "seed_export");
  auto seed = decode_seed_state(reply.payload);
  if (!seed.has_value()) {
    throw std::runtime_error("ServiceClient: bad seed_export response");
  }
  return std::move(*seed);
}

void ServiceClient::seed_import(const SeedState& seed) {
  request(MsgType::kSeedImport, encode_seed_state(seed), MsgType::kOk,
          "seed_import");
}

std::uint64_t ServiceClient::add_shard() {
  const Frame reply = request(MsgType::kAddShard, {}, MsgType::kOk, "add_shard");
  const auto id = decode_u64(reply.payload);
  if (!id.has_value()) {
    throw std::runtime_error("ServiceClient: bad add_shard response");
  }
  return *id;
}

std::uint64_t ServiceClient::remove_shard(std::uint32_t id) {
  const Frame reply = request(MsgType::kRemoveShard, encode_u32(id),
                              MsgType::kOk, "remove_shard");
  const auto moved = decode_u64(reply.payload);
  if (!moved.has_value()) {
    throw std::runtime_error("ServiceClient: bad remove_shard response");
  }
  return *moved;
}

RetryingClient::RetryingClient(std::filesystem::path socket_path,
                               ClientConfig client, RetryConfig retry)
    : socket_path_(std::move(socket_path)),
      client_config_(std::move(client)),
      retry_(retry) {}

ServiceClient& RetryingClient::ensure_connected() {
  if (client_ == nullptr) {
    client_ = std::make_unique<ServiceClient>(socket_path_, client_config_);
    ++reconnects_;
  }
  return *client_;
}

template <typename F>
auto RetryingClient::with_retry(F&& op)
    -> decltype(op(std::declval<ServiceClient&>())) {
  double backoff_s = retry_.backoff_initial_s;
  const int attempts = retry_.max_attempts > 0 ? retry_.max_attempts : 1;
  for (int attempt = 1;; ++attempt) {
    try {
      return op(ensure_connected());
    } catch (const TransportError&) {
      // The connection's state is unknown; tear it down before retrying.
      client_.reset();
      if (attempt >= attempts) throw;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
    backoff_s = std::min(backoff_s * retry_.backoff_multiplier,
                         retry_.backoff_max_s);
  }
}

void RetryingClient::stream(const std::vector<sim::RssiReading>& readings) {
  with_retry([&](ServiceClient& c) { c.stream(readings); });
}

void RetryingClient::stream_sequenced(
    std::uint64_t sequence, const std::vector<sim::RssiReading>& readings) {
  with_retry([&](ServiceClient& c) { c.stream_sequenced(sequence, readings); });
}

std::vector<engine::Fix> RetryingClient::poll(sim::SimTime now) {
  return with_retry([&](ServiceClient& c) { return c.poll(now); });
}

std::optional<engine::Fix> RetryingClient::latest_fix(sim::TagId tag) {
  return with_retry([&](ServiceClient& c) { return c.latest_fix(tag); });
}

std::optional<std::string> RetryingClient::explain(sim::TagId tag) {
  return with_retry([&](ServiceClient& c) { return c.explain(tag); });
}

std::string RetryingClient::snapshot_prometheus() {
  return with_retry([&](ServiceClient& c) { return c.snapshot_prometheus(); });
}

std::string RetryingClient::snapshot_json() {
  return with_retry([&](ServiceClient& c) { return c.snapshot_json(); });
}

HeartbeatAck RetryingClient::heartbeat(std::uint64_t seq) {
  return with_retry([&](ServiceClient& c) { return c.heartbeat(seq); });
}

void RetryingClient::track(const TrackRequest& request) {
  with_retry([&](ServiceClient& c) { c.track(request); });
}

void RetryingClient::set_reference_ids(const std::vector<sim::TagId>& ids) {
  with_retry([&](ServiceClient& c) { c.set_reference_ids(ids); });
}

std::uint64_t RetryingClient::recover_now() {
  return with_retry([&](ServiceClient& c) { return c.recover_now(); });
}

obs::TraceDump RetryingClient::trace_dump(std::uint32_t max_events) {
  return with_retry([&](ServiceClient& c) { return c.trace_dump(max_events); });
}

std::optional<std::string> RetryingClient::provenance() {
  return with_retry([&](ServiceClient& c) { return c.provenance(); });
}

}  // namespace vire::service
