#pragma once
// Unix-domain-socket front end of the ShardedService (docs/service.md).
//
// ServiceServer accepts stream connections on a UDS path and speaks the
// wire protocol (service/wire.h): clients stream kIngest batches in
// (fire-and-forget) and issue kPoll / kLatestFix / kExplain / kSnapshot
// requests that each get exactly one response frame. The server runs its
// own event-loop thread, which doubles as the service's single driver
// thread — while the server is running, do not call the service's mutating
// API from elsewhere (merged metrics exports stay safe from any thread).
//
// Robustness: each connection owns a FrameDecoder registered with the
// service metrics registry, so every rejected frame lands in
// vire_service_rejected_frames_total{reason=...}. A frame that resyncs
// (bad CRC / unknown type) is skipped; a payload that fails typed decode
// draws a kError response; a poisoned stream (garbage length prefix) drops
// the connection. Hostile bytes never crash the server or desync other
// connections (tests/service/service_server_test.cpp).

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/sharded_service.h"
#include "service/wire.h"

namespace vire::service {

struct ServerConfig {
  std::filesystem::path socket_path;
  /// Frame payload cap handed to each connection's decoder.
  std::size_t max_payload = kMaxFramePayload;
};

class ServiceServer {
 public:
  /// The service must outlive the server. The socket path is (re)created on
  /// start() and unlinked on stop().
  ServiceServer(ShardedService& service, ServerConfig config);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds + listens + spawns the event loop. Throws std::runtime_error on
  /// socket errors (path too long, bind failure).
  void start();
  /// Stops the loop, closes every connection, unlinks the socket. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }
  /// Connections accepted over the server's lifetime.
  [[nodiscard]] std::uint64_t connections_accepted() const noexcept {
    return accepted_;
  }

 private:
  struct Connection {
    int fd = -1;
    FrameDecoder decoder;
    std::string outbox;  ///< bytes queued for send

    explicit Connection(std::size_t max_payload) : decoder(max_payload) {}
  };

  void loop();
  /// Handles one decoded frame; appends any response to the outbox.
  void handle(Connection& conn, const Frame& frame);
  void send_frame(Connection& conn, MsgType type, std::string_view payload);
  static void flush_outbox(Connection& conn);

  ShardedService& service_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe to interrupt poll() on stop
  std::thread loop_thread_;
  bool running_ = false;
  std::uint64_t accepted_ = 0;
};

/// Minimal blocking client for tests and examples: one connection, one
/// outstanding request at a time.
class ServiceClient {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  explicit ServiceClient(const std::filesystem::path& socket_path,
                         std::size_t max_payload = kMaxFramePayload);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Fire-and-forget reading batch.
  void stream(const std::vector<sim::RssiReading>& readings);

  /// Round trips. Each throws std::runtime_error on a transport error or a
  /// kError response (message = the server's error text).
  std::vector<engine::Fix> poll(sim::SimTime now);
  std::optional<engine::Fix> latest_fix(sim::TagId tag);
  /// Flight-recorder JSON for the tag, or nullopt when the server has none.
  std::optional<std::string> explain(sim::TagId tag);
  std::string snapshot_prometheus();
  std::string snapshot_json();

 private:
  void send_all(std::string_view bytes);
  /// Blocks until one complete frame arrives.
  Frame read_frame();
  std::string snapshot(std::uint8_t format);

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace vire::service
