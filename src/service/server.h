#pragma once
// Unix-domain-socket front end of a service Frontend (docs/service.md).
//
// ServiceServer accepts stream connections on a UDS path and speaks the
// wire protocol (service/wire.h): clients stream kIngest/kIngestSeq batches
// in (fire-and-forget) and issue kPoll / kLatestFix / kExplain / kSnapshot /
// kHeartbeat / kTrack / kSetReference / kRecover requests that each get
// exactly one response frame. The server runs its own event-loop thread,
// which doubles as the frontend's single driver thread — while the server
// is running, do not call the frontend's mutating API from elsewhere
// (snapshot exports stay safe from any thread).
//
// The same server fronts either Frontend implementation: ShardedService in
// a monolithic process, one-engine shards in vire_shardd, and the
// Supervisor in vire_supervisord.
//
// Robustness: each connection owns a FrameDecoder registered with the
// frontend's metrics registry, so every rejected frame lands in
// vire_service_rejected_frames_total{reason=...}. A frame that resyncs
// (bad CRC / unknown type) is skipped; a payload that fails typed decode
// draws a kError response; a poisoned stream (garbage length prefix) drops
// the connection; a kHello with a different kWireVersion draws a
// reason-labelled kError and the connection is closed after the reply.
// A frontend method that throws is answered with kError — a handler
// exception never kills the server. A response too large for one frame is
// answered with kError instead of a frame the peer's decoder would reject
// as hostile (and a supervising client would misread as a shard death).
// A closing connection (version skew, peer EOF) keeps its fd in the poll
// set until queued reply bytes drain or close_drain_timeout_s passes, so
// the final kError/response is not dropped on EAGAIN. Hostile bytes never
// crash the server or desync other connections
// (tests/service/service_server_test.cpp).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "service/frontend.h"
#include "service/wire.h"

namespace vire::service {

struct ServerConfig {
  std::filesystem::path socket_path;
  /// Frame payload cap handed to each connection's decoder.
  std::size_t max_payload = kMaxFramePayload;
  /// Name returned in kHelloAck (diagnostics only).
  std::string server_name = "vire-service";
  /// How long a closing connection may keep its fd around to finish sending
  /// queued reply bytes (the version-mismatch kError, a response the peer
  /// requested before EOF) once the socket stops accepting writes.
  double close_drain_timeout_s = 1.0;
};

class ServiceServer {
 public:
  /// The frontend must outlive the server. The socket path is (re)created on
  /// start() and unlinked on stop().
  ServiceServer(Frontend& frontend, ServerConfig config);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds + listens + spawns the event loop. Throws std::runtime_error on
  /// socket errors (path too long, bind failure).
  void start();
  /// Stops the loop, closes every connection, unlinks the socket. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }
  /// Connections accepted over the server's lifetime.
  [[nodiscard]] std::uint64_t connections_accepted() const noexcept {
    return accepted_;
  }

 private:
  struct Connection {
    int fd = -1;
    FrameDecoder decoder;
    std::string outbox;  ///< bytes queued for send
    /// Flush the outbox, then drop the connection (hello version skew).
    bool close_after_reply = false;
    /// Closing, but the outbox still has bytes the peer is owed: poll only
    /// POLLOUT until it drains or drain_deadline passes, then close.
    bool draining = false;
    std::chrono::steady_clock::time_point drain_deadline{};

    explicit Connection(std::size_t max_payload) : decoder(max_payload) {}
  };

  void loop();
  /// Handles one decoded frame; appends any response to the outbox.
  void handle(Connection& conn, const Frame& frame);
  void send_frame(Connection& conn, MsgType type, std::string_view payload);
  static void flush_outbox(Connection& conn);

  Frontend& frontend_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe to interrupt poll() on stop
  std::thread loop_thread_;
  bool running_ = false;
  std::uint64_t accepted_ = 0;
};

}  // namespace vire::service

// Historical location of ServiceClient; kept so existing includes of
// service/server.h keep compiling after the client split.
#include "service/client.h"  // IWYU pragma: keep
