#pragma once
// Bounded MPSC op queue feeding one localization shard (docs/service.md).
//
// The service thread enqueues ops; exactly one shard worker thread pops and
// executes them. FIFO order is the determinism backbone: because every op a
// shard receives is executed in enqueue order by a single consumer, a
// shard's engine sees the same ingest/evict/update sequence regardless of
// scheduling — bit-identical fixes at any shard count fall out of that.
//
// Backpressure applies to reading batches only. Control ops (evict, update,
// control closures, stop) always enqueue: dropping an update would desync
// the shard from the poll schedule, and blocking one could deadlock the
// barrier that drains the queues. Two overflow policies:
//   kBlock      — the producer waits for room (lossless, deterministic; the
//                 equivalence tests run this);
//   kDropOldest — the oldest queued *reading batch* is discarded to make
//                 room (lossy, keeps ingest latency bounded when a shard
//                 falls behind; drops are counted, never silent).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <utility>
#include <vector>

#include "engine/localization_engine.h"
#include "sim/types.h"

namespace vire::service {

enum class OverflowPolicy {
  kBlock,
  kDropOldest,
};

class ShardQueue {
 public:
  struct Op {
    enum class Kind : std::uint8_t { kReadings, kEvict, kUpdate, kControl, kStop };
    Kind kind = Kind::kReadings;
    std::vector<sim::RssiReading> readings;           ///< kReadings
    sim::SimTime time = 0.0;                          ///< kEvict / kUpdate
    std::function<void()> control;                    ///< kControl
    std::promise<std::vector<engine::Fix>> fixes;     ///< kUpdate
  };

  ShardQueue(std::size_t capacity, OverflowPolicy policy)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  ShardQueue(const ShardQueue&) = delete;
  ShardQueue& operator=(const ShardQueue&) = delete;

  /// Enqueues a reading batch subject to capacity/policy. Returns the number
  /// of older batches dropped to make room (always 0 under kBlock).
  std::size_t push_readings(std::vector<sim::RssiReading> batch) {
    std::size_t dropped = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (policy_ == OverflowPolicy::kBlock) {
        if (reading_batches_ >= capacity_) {
          ++blocked_;
          not_full_.wait(lock, [&] { return reading_batches_ < capacity_; });
        }
      } else {
        while (reading_batches_ >= capacity_) {
          for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->kind == Op::Kind::kReadings) {
              queue_.erase(it);
              --reading_batches_;
              ++dropped_;
              ++dropped;
              break;
            }
          }
        }
      }
      Op op;
      op.kind = Op::Kind::kReadings;
      op.readings = std::move(batch);
      queue_.push_back(std::move(op));
      ++reading_batches_;
      if (queue_.size() > high_water_) high_water_ = queue_.size();
    }
    not_empty_.notify_one();
    return dropped;
  }

  void push_evict(sim::SimTime now) {
    Op op;
    op.kind = Op::Kind::kEvict;
    op.time = now;
    push_control_op(std::move(op));
  }

  /// Enqueues an update boundary; the future resolves with the shard's fixes
  /// once the worker has executed it (or with the exception it threw).
  std::future<std::vector<engine::Fix>> push_update(sim::SimTime now) {
    Op op;
    op.kind = Op::Kind::kUpdate;
    op.time = now;
    auto future = op.fixes.get_future();
    push_control_op(std::move(op));
    return future;
  }

  void push_control(std::function<void()> fn) {
    Op op;
    op.kind = Op::Kind::kControl;
    op.control = std::move(fn);
    push_control_op(std::move(op));
  }

  /// Terminates the worker loop after every previously queued op.
  void push_stop() {
    Op op;
    op.kind = Op::Kind::kStop;
    push_control_op(std::move(op));
  }

  /// Discards every queued op (a simulated shard crash: in-flight work is
  /// lost exactly as a killed process would lose it). Returns ops discarded.
  /// Pending update promises are broken, so waiters see an exception rather
  /// than a hang.
  std::size_t discard_pending() {
    std::deque<Op> discarded;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      discarded.swap(queue_);
      reading_batches_ = 0;
    }
    not_full_.notify_all();
    return discarded.size();  // promises in `discarded` break on destruction
  }

  /// Blocks until an op is available and dequeues it (single consumer).
  Op pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !queue_.empty(); });
    Op op = std::move(queue_.front());
    queue_.pop_front();
    if (op.kind == Op::Kind::kReadings) {
      --reading_batches_;
      not_full_.notify_one();
    }
    return op;
  }

  [[nodiscard]] std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }
  [[nodiscard]] std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }
  /// Reading batches discarded under kDropOldest.
  [[nodiscard]] std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }
  /// push_readings calls that had to wait under kBlock.
  [[nodiscard]] std::uint64_t blocked() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return blocked_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] OverflowPolicy policy() const noexcept { return policy_; }

 private:
  void push_control_op(Op op) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(op));
      if (queue_.size() > high_water_) high_water_ = queue_.size();
    }
    not_empty_.notify_one();
  }

  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Op> queue_;
  std::size_t reading_batches_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t blocked_ = 0;
};

}  // namespace vire::service
