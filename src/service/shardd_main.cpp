// vire_shardd: one shard process of the multi-process deployment
// (docs/service.md, "Multi-process deployment").
//
// A thin main over ShardedService with a single engine: serves the wire
// protocol on --socket, journals to --data-dir/{wal,checkpoints}. Always
// constructed in recover mode — the supervisor re-registers reference ids
// and tracked tags first, then sends kRecover to replay the WAL through the
// normal pipeline (registration is not journaled). Runs until SIGTERM or
// SIGINT.
//
//   vire_shardd --socket PATH --data-dir DIR [--shard-id N] [--workers N]
//               [--window SECONDS] [--checkpoint-every N] [--obs-dir DIR]
//               [--trace] [--trace-capacity N] [--clock-skew-us X]
//               [--abort-on-start]
//
// --abort-on-start is the crash-loop test seam: the process aborts before
// binding its socket, exactly like a shard with a corrupt install.
// --clock-skew-us is the clock-alignment test seam: shifts this process's
// trace clock so supervisor-side offset estimation has something to cancel.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "env/deployment.h"
#include "service/server.h"
#include "service/sharded_service.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH --data-dir DIR [--shard-id N]\n"
               "          [--workers N] [--window SECONDS]\n"
               "          [--checkpoint-every N] [--obs-dir DIR] [--trace]\n"
               "          [--trace-capacity N] [--clock-skew-us X]\n"
               "          [--abort-on-start]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vire;

  std::filesystem::path socket_path;
  std::filesystem::path data_dir;
  int shard_id = 0;
  int workers = 1;
  double window_s = 10.0;
  int checkpoint_every = 8;
  std::filesystem::path obs_dir;
  bool trace = false;
  long trace_capacity = 0;
  double clock_skew_us = 0.0;
  bool abort_on_start = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      socket_path = v;
    } else if (arg == "--data-dir") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      data_dir = v;
    } else if (arg == "--shard-id") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      shard_id = std::atoi(v);
    } else if (arg == "--workers") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      workers = std::atoi(v);
    } else if (arg == "--window") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      window_s = std::atof(v);
    } else if (arg == "--checkpoint-every") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      checkpoint_every = std::atoi(v);
    } else if (arg == "--obs-dir") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      obs_dir = v;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--trace-capacity") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      trace_capacity = std::atol(v);
    } else if (arg == "--clock-skew-us") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      clock_skew_us = std::atof(v);
    } else if (arg == "--abort-on-start") {
      abort_on_start = true;
    } else {
      std::fprintf(stderr, "vire_shardd: unknown argument '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (socket_path.empty() || data_dir.empty()) return usage(argv[0]);
  if (abort_on_start) std::abort();

  service::ignore_sigpipe();

  // Block shutdown signals before any thread spawns so every thread
  // inherits the mask and sigwait() below is the only consumer.
  sigset_t shutdown_set;
  sigemptyset(&shutdown_set);
  sigaddset(&shutdown_set, SIGINT);
  sigaddset(&shutdown_set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &shutdown_set, nullptr);

  const env::Deployment deployment = env::Deployment::paper_testbed();
  service::ServiceConfig config;
  config.shards = 1;
  config.engine.parallel_workers = workers;
  config.middleware.window_s = window_s;
  config.data_dir = data_dir;
  config.checkpoint_every_updates = checkpoint_every;
  config.recover = true;
  // Anomaly dumps default under the shard's own data dir, not the process
  // cwd: multiple shardd processes share a cwd under the supervisor, and a
  // shared "obs_out" would interleave their dumps.
  config.engine.observability.anomaly_dump_dir =
      obs_dir.empty() ? data_dir / "obs" : obs_dir;
  if (trace) config.engine.observability.enable_tracing = true;
  if (trace_capacity > 0) {
    config.engine.observability.trace_capacity =
        static_cast<std::size_t>(trace_capacity);
  }
  config.obs_clock_skew_us = clock_skew_us;
  service::ShardedService service(deployment, config);

  service::ServerConfig server_config;
  server_config.socket_path = socket_path;
  server_config.server_name = "vire-shardd-" + std::to_string(shard_id);
  service::ServiceServer server(service, server_config);
  server.start();
  std::fprintf(stderr, "vire_shardd: shard %d serving %s (data %s)\n",
               shard_id, socket_path.c_str(), data_dir.c_str());

  int signal_number = 0;
  sigwait(&shutdown_set, &signal_number);
  std::fprintf(stderr, "vire_shardd: shard %d stopping (signal %d)\n",
               shard_id, signal_number);
  server.stop();
  return 0;
}
