#pragma once
// Frontend: the request-handling surface the wire server drives
// (docs/service.md). Two implementations exist — ShardedService (shards as
// threads inside this process) and Supervisor (shards as child processes) —
// and ServiceServer speaks to either one, so vire_shardd and vire_supervisord
// share a single server/event-loop implementation.
//
// Threading: like ShardedService, every mutating call comes from ONE driver
// thread (the server's event loop); snapshot_* must additionally be safe
// from any thread (metrics registries are internally synchronized).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "engine/localization_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/middleware.h"
#include "sim/types.h"

namespace vire::service {

/// Durability cursor reported by kHeartbeatAck: how far the implementation's
/// journal has advanced, and the highest ingest-batch sequence whose readings
/// are durably journaled (see persist::FrameType::kAck). The observability
/// fields ride along so every heartbeat doubles as a clock-alignment and
/// anomaly-surfacing probe (docs/observability.md, "Fleet observability").
struct HeartbeatInfo {
  std::uint64_t wal_next_sequence = 0;
  std::uint64_t last_ack_sequence = 0;
  /// Implementation's monotonic trace clock (obs::Tracer::now_us) at answer
  /// time; 0 when the implementation has no tracer.
  double mono_now_us = 0.0;
  /// Cumulative engine anomaly auto-dumps since process start.
  std::uint64_t anomaly_dumps = 0;
};

class Frontend {
 public:
  virtual ~Frontend() = default;

  virtual void ingest(const std::vector<sim::RssiReading>& readings) = 0;
  /// Sequenced ingest (kIngestSeq): `sequence` keys the sender's resend
  /// window. Implementations without ack plumbing treat it as plain ingest.
  virtual void ingest_sequenced(const std::vector<sim::RssiReading>& readings,
                                std::uint64_t sequence) {
    (void)sequence;
    ingest(readings);
  }
  /// Sequenced ingest with a propagated trace context (wire v3). The context
  /// is capture-only — implementations may record it for trace correlation
  /// but must never let it affect localization. Default: drop it.
  virtual void ingest_sequenced(const std::vector<sim::RssiReading>& readings,
                                std::uint64_t sequence,
                                const obs::TraceContext& ctx) {
    (void)ctx;
    ingest_sequenced(readings, sequence);
  }

  virtual std::vector<engine::Fix> poll(sim::SimTime now) = 0;
  /// Poll with a propagated trace context (capture-only, like ingest).
  virtual std::vector<engine::Fix> poll(sim::SimTime now,
                                        const obs::TraceContext& ctx) {
    (void)ctx;
    return poll(now);
  }
  [[nodiscard]] virtual std::optional<engine::Fix> latest_fix(
      sim::TagId tag) const = 0;
  /// Flight-recorder provenance as JSON; nullopt when there is none.
  virtual std::optional<std::string> explain_json(sim::TagId tag) = 0;

  virtual std::string snapshot_prometheus() const = 0;
  virtual std::string snapshot_json() const = 0;

  virtual void set_reference_ids(std::vector<sim::TagId> ids) = 0;
  virtual void track(sim::TagId tag, std::string name,
                     std::optional<std::uint32_t> zone) = 0;

  /// kRecover: run checkpoint+WAL recovery now; returns the recovered
  /// last-ack sequence. Only meaningful for implementations that journal.
  virtual std::uint64_t recover_now() {
    throw std::runtime_error("recovery not supported by this frontend");
  }

  /// kHeartbeat: liveness + durability cursor. The default (all zeros) is a
  /// valid "alive, nothing journaled" answer.
  virtual HeartbeatInfo heartbeat() { return {}; }

  /// kTraceDump: export the implementation's span ring (most recent
  /// `max_events`, 0 = all retained) for fleet-trace aggregation. The
  /// default empty dump is valid for implementations without a tracer.
  virtual obs::TraceDump trace_dump(std::size_t max_events) {
    (void)max_events;
    return {};
  }

  /// kProvenanceDump: flight-recorder provenance of every tracked tag as
  /// JSON; nullopt when the implementation records none.
  virtual std::optional<std::string> provenance_json() { return std::nullopt; }

  // -- elastic membership (wire v4) --------------------------------------
  // Implemented by ShardedService (per-shard state moves) and by Supervisor
  // (admin_* drive the cross-process add/remove state machine). Defaults
  // throw; the server surfaces that as kError, so frontends that cannot
  // migrate state refuse cleanly instead of silently dropping tags.

  /// kExportTag: atomically export and untrack one tag's engine state.
  /// Inner nullopt: the tag held no state (never updated) — still untracked.
  virtual std::optional<engine::TagStateSnapshot> export_tag_state(
      sim::TagId tag) {
    (void)tag;
    throw std::runtime_error("tag export not supported by this frontend");
  }

  /// kImportTag: register `tag` (name from the snapshot, optional zone pin)
  /// and adopt its exported engine state.
  virtual void import_tag_state(sim::TagId tag,
                                std::optional<std::uint32_t> zone,
                                const engine::TagStateSnapshot& state) {
    (void)tag;
    (void)zone;
    (void)state;
    throw std::runtime_error("tag import not supported by this frontend");
  }

  /// kSeedExport: reference-only engine + middleware seed (tracked tags and
  /// their state stripped) for bootstrapping a joining shard.
  virtual std::pair<engine::EngineStateSnapshot, sim::Middleware::Snapshot>
  seed_export() {
    throw std::runtime_error("seed export not supported by this frontend");
  }

  /// kSeedImport: restore a reference-only seed produced by seed_export.
  virtual void seed_import(const engine::EngineStateSnapshot& engine_seed,
                           const sim::Middleware::Snapshot& middleware_seed) {
    (void)engine_seed;
    (void)middleware_seed;
    throw std::runtime_error("seed import not supported by this frontend");
  }

  /// kAddShard: join one shard and rebalance; returns the new shard id.
  virtual std::uint64_t admin_add_shard() {
    throw std::runtime_error("add-shard not supported by this frontend");
  }

  /// kRemoveShard: drain and retire shard `id`; returns tags moved away.
  virtual std::uint64_t admin_remove_shard(std::uint32_t id) {
    (void)id;
    throw std::runtime_error("remove-shard not supported by this frontend");
  }

  /// Registry the server parks connection decoder counters in.
  [[nodiscard]] virtual obs::MetricsRegistry& metrics() = 0;
};

}  // namespace vire::service
