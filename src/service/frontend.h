#pragma once
// Frontend: the request-handling surface the wire server drives
// (docs/service.md). Two implementations exist — ShardedService (shards as
// threads inside this process) and Supervisor (shards as child processes) —
// and ServiceServer speaks to either one, so vire_shardd and vire_supervisord
// share a single server/event-loop implementation.
//
// Threading: like ShardedService, every mutating call comes from ONE driver
// thread (the server's event loop); snapshot_* must additionally be safe
// from any thread (metrics registries are internally synchronized).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/localization_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/types.h"

namespace vire::service {

/// Durability cursor reported by kHeartbeatAck: how far the implementation's
/// journal has advanced, and the highest ingest-batch sequence whose readings
/// are durably journaled (see persist::FrameType::kAck). The observability
/// fields ride along so every heartbeat doubles as a clock-alignment and
/// anomaly-surfacing probe (docs/observability.md, "Fleet observability").
struct HeartbeatInfo {
  std::uint64_t wal_next_sequence = 0;
  std::uint64_t last_ack_sequence = 0;
  /// Implementation's monotonic trace clock (obs::Tracer::now_us) at answer
  /// time; 0 when the implementation has no tracer.
  double mono_now_us = 0.0;
  /// Cumulative engine anomaly auto-dumps since process start.
  std::uint64_t anomaly_dumps = 0;
};

class Frontend {
 public:
  virtual ~Frontend() = default;

  virtual void ingest(const std::vector<sim::RssiReading>& readings) = 0;
  /// Sequenced ingest (kIngestSeq): `sequence` keys the sender's resend
  /// window. Implementations without ack plumbing treat it as plain ingest.
  virtual void ingest_sequenced(const std::vector<sim::RssiReading>& readings,
                                std::uint64_t sequence) {
    (void)sequence;
    ingest(readings);
  }
  /// Sequenced ingest with a propagated trace context (wire v3). The context
  /// is capture-only — implementations may record it for trace correlation
  /// but must never let it affect localization. Default: drop it.
  virtual void ingest_sequenced(const std::vector<sim::RssiReading>& readings,
                                std::uint64_t sequence,
                                const obs::TraceContext& ctx) {
    (void)ctx;
    ingest_sequenced(readings, sequence);
  }

  virtual std::vector<engine::Fix> poll(sim::SimTime now) = 0;
  /// Poll with a propagated trace context (capture-only, like ingest).
  virtual std::vector<engine::Fix> poll(sim::SimTime now,
                                        const obs::TraceContext& ctx) {
    (void)ctx;
    return poll(now);
  }
  [[nodiscard]] virtual std::optional<engine::Fix> latest_fix(
      sim::TagId tag) const = 0;
  /// Flight-recorder provenance as JSON; nullopt when there is none.
  virtual std::optional<std::string> explain_json(sim::TagId tag) = 0;

  virtual std::string snapshot_prometheus() const = 0;
  virtual std::string snapshot_json() const = 0;

  virtual void set_reference_ids(std::vector<sim::TagId> ids) = 0;
  virtual void track(sim::TagId tag, std::string name,
                     std::optional<std::uint32_t> zone) = 0;

  /// kRecover: run checkpoint+WAL recovery now; returns the recovered
  /// last-ack sequence. Only meaningful for implementations that journal.
  virtual std::uint64_t recover_now() {
    throw std::runtime_error("recovery not supported by this frontend");
  }

  /// kHeartbeat: liveness + durability cursor. The default (all zeros) is a
  /// valid "alive, nothing journaled" answer.
  virtual HeartbeatInfo heartbeat() { return {}; }

  /// kTraceDump: export the implementation's span ring (most recent
  /// `max_events`, 0 = all retained) for fleet-trace aggregation. The
  /// default empty dump is valid for implementations without a tracer.
  virtual obs::TraceDump trace_dump(std::size_t max_events) {
    (void)max_events;
    return {};
  }

  /// kProvenanceDump: flight-recorder provenance of every tracked tag as
  /// JSON; nullopt when the implementation records none.
  virtual std::optional<std::string> provenance_json() { return std::nullopt; }

  /// Registry the server parks connection decoder counters in.
  [[nodiscard]] virtual obs::MetricsRegistry& metrics() = 0;
};

}  // namespace vire::service
