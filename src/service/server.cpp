#include "service/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <exception>
#include <list>
#include <stdexcept>

namespace vire::service {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

int make_listen_socket(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string p = path.string();
  if (p.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("ServiceServer: socket path too long: " + p);
  }
  std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("ServiceServer: socket() failed");
  ::unlink(p.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("ServiceServer: bind failed on " + p);
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    ::unlink(p.c_str());
    throw std::runtime_error("ServiceServer: listen failed on " + p);
  }
  return fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// send() that tolerates EINTR/EAGAIN; returns false on a dead peer.
bool send_some(int fd, std::string& pending) {
  while (!pending.empty()) {
    const ssize_t n = ::send(fd, pending.data(), pending.size(), MSG_NOSIGNAL);
    if (n > 0) {
      pending.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

ServiceServer::ServiceServer(Frontend& frontend, ServerConfig config)
    : frontend_(frontend), config_(std::move(config)) {}

ServiceServer::~ServiceServer() { stop(); }

void ServiceServer::start() {
  if (running_) return;
  listen_fd_ = make_listen_socket(config_.socket_path);
  if (::pipe(wake_fds_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.string().c_str());
    throw std::runtime_error("ServiceServer: pipe() failed");
  }
  set_nonblocking(listen_fd_);
  set_nonblocking(wake_fds_[0]);
  running_ = true;
  loop_thread_ = std::thread([this] { loop(); });
}

void ServiceServer::stop() {
  if (!running_) return;
  running_ = false;
  // Wake the poll() so the loop observes running_ == false promptly.
  const char byte = 'x';
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  loop_thread_.join();
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(config_.socket_path.string().c_str());
}

void ServiceServer::send_frame(Connection& conn, MsgType type,
                               std::string_view payload) {
  if (payload.size() > config_.max_payload ||
      payload.size() > kMaxFramePayload) {
    // Never hand the peer's decoder a frame it will reject: an oversized
    // response (a merged snapshot, a huge fix batch) would poison the stream
    // and a supervising client would read that as a shard death. Substitute
    // a request-level error the peer can report instead.
    conn.outbox += encode_frame(
        MsgType::kError, "response too large: " +
                             std::to_string(payload.size()) +
                             " bytes exceeds the frame payload cap");
    return;
  }
  conn.outbox += encode_frame(type, payload);
}

void ServiceServer::flush_outbox(Connection& conn) {
  if (!send_some(conn.fd, conn.outbox)) {
    // Peer is gone; drop the rest — the loop reaps the fd on its next read.
    conn.outbox.clear();
  }
}

void ServiceServer::handle(Connection& conn, const Frame& frame) {
  try {
    switch (frame.type) {
      case MsgType::kIngest: {
        auto readings = decode_ingest(frame.payload);
        if (!readings.has_value()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed ingest payload");
          return;
        }
        frontend_.ingest(*readings);
        return;  // fire-and-forget
      }
      case MsgType::kIngestSeq: {
        auto batch = decode_ingest_seq(frame.payload);
        if (!batch.has_value()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed sequenced ingest payload");
          return;
        }
        frontend_.ingest_sequenced(batch->readings, batch->sequence,
                                   batch->ctx);
        return;  // fire-and-forget; durability observable via kHeartbeat
      }
      case MsgType::kPoll: {
        const auto request = decode_poll(frame.payload);
        if (!request.has_value()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed poll payload");
          return;
        }
        send_frame(conn, MsgType::kFixBatch,
                   encode_fixes(frontend_.poll(request->now, request->ctx)));
        return;
      }
      case MsgType::kLatestFix: {
        const auto tag = decode_tag(frame.payload);
        if (!tag.has_value()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed latest_fix payload");
          return;
        }
        send_frame(conn, MsgType::kFixReply,
                   encode_fix_reply(frontend_.latest_fix(*tag)));
        return;
      }
      case MsgType::kExplain: {
        const auto tag = decode_tag(frame.payload);
        if (!tag.has_value()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed explain payload");
          return;
        }
        const auto json = frontend_.explain_json(*tag);
        if (!json.has_value()) {
          send_frame(conn, MsgType::kError, "no flight record for tag");
          return;
        }
        send_frame(conn, MsgType::kText, *json);
        return;
      }
      case MsgType::kSnapshot: {
        const auto format = decode_snapshot_request(frame.payload);
        if (!format.has_value()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed snapshot payload");
          return;
        }
        send_frame(conn, MsgType::kText,
                   *format == kSnapshotJson ? frontend_.snapshot_json()
                                            : frontend_.snapshot_prometheus());
        return;
      }
      case MsgType::kHello: {
        const auto hello = decode_hello(frame.payload);
        if (!hello.has_value()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed hello payload");
          return;
        }
        if (hello->version != kWireVersion) {
          conn.decoder.note_version_mismatch();
          send_frame(conn, MsgType::kError,
                     "wire version mismatch: peer v" +
                         std::to_string(hello->version) + ", server v" +
                         std::to_string(kWireVersion));
          conn.close_after_reply = true;
          return;
        }
        Hello ack;
        ack.version = kWireVersion;
        ack.peer_name = config_.server_name;
        send_frame(conn, MsgType::kHelloAck, encode_hello(ack));
        return;
      }
      case MsgType::kHeartbeat: {
        const auto seq = decode_u64(frame.payload);
        if (!seq.has_value()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed heartbeat payload");
          return;
        }
        const HeartbeatInfo info = frontend_.heartbeat();
        HeartbeatAck ack;
        ack.seq = *seq;
        ack.wal_next_sequence = info.wal_next_sequence;
        ack.last_ack_sequence = info.last_ack_sequence;
        ack.mono_now_us = info.mono_now_us;
        ack.anomaly_dumps = info.anomaly_dumps;
        send_frame(conn, MsgType::kHeartbeatAck, encode_heartbeat_ack(ack));
        return;
      }
      case MsgType::kTraceDump: {
        const auto max_events = decode_u32(frame.payload);
        if (!max_events.has_value()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed trace_dump payload");
          return;
        }
        send_frame(conn, MsgType::kTraceDumpReply,
                   encode_trace_dump(frontend_.trace_dump(*max_events)));
        return;
      }
      case MsgType::kProvenanceDump: {
        if (!frame.payload.empty()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed provenance payload");
          return;
        }
        const auto json = frontend_.provenance_json();
        if (!json.has_value()) {
          send_frame(conn, MsgType::kError, "no provenance recorded");
          return;
        }
        send_frame(conn, MsgType::kText, *json);
        return;
      }
      case MsgType::kTrack: {
        auto request = decode_track(frame.payload);
        if (!request.has_value()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed track payload");
          return;
        }
        frontend_.track(request->tag, std::move(request->name), request->zone);
        send_frame(conn, MsgType::kOk, encode_u64(0));
        return;
      }
      case MsgType::kSetReference: {
        auto ids = decode_reference_ids(frame.payload);
        if (!ids.has_value()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed set_reference payload");
          return;
        }
        const auto count = static_cast<std::uint64_t>(ids->size());
        frontend_.set_reference_ids(std::move(*ids));
        send_frame(conn, MsgType::kOk, encode_u64(count));
        return;
      }
      case MsgType::kRecover: {
        if (!frame.payload.empty()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed recover payload");
          return;
        }
        send_frame(conn, MsgType::kOk, encode_u64(frontend_.recover_now()));
        return;
      }
      case MsgType::kExportTag: {
        const auto tag = decode_u32(frame.payload);
        if (!tag.has_value()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed export_tag payload");
          return;
        }
        send_frame(conn, MsgType::kTagState,
                   encode_tag_state(frontend_.export_tag_state(*tag)));
        return;
      }
      case MsgType::kImportTag: {
        auto request = decode_import_tag(frame.payload);
        if (!request.has_value()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed import_tag payload");
          return;
        }
        frontend_.import_tag_state(request->tag, request->zone, request->state);
        send_frame(conn, MsgType::kOk, encode_u64(0));
        return;
      }
      case MsgType::kSeedExport: {
        if (!frame.payload.empty()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed seed_export payload");
          return;
        }
        auto [engine_seed, middleware_seed] = frontend_.seed_export();
        send_frame(conn, MsgType::kSeedState,
                   encode_seed_state({std::move(engine_seed),
                                      std::move(middleware_seed)}));
        return;
      }
      case MsgType::kSeedImport: {
        auto seed = decode_seed_state(frame.payload);
        if (!seed.has_value()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed seed_import payload");
          return;
        }
        frontend_.seed_import(seed->engine, seed->middleware);
        send_frame(conn, MsgType::kOk, encode_u64(0));
        return;
      }
      case MsgType::kAddShard: {
        if (!frame.payload.empty()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed add_shard payload");
          return;
        }
        send_frame(conn, MsgType::kOk, encode_u64(frontend_.admin_add_shard()));
        return;
      }
      case MsgType::kRemoveShard: {
        const auto id = decode_u32(frame.payload);
        if (!id.has_value()) {
          conn.decoder.note_malformed();
          send_frame(conn, MsgType::kError, "malformed remove_shard payload");
          return;
        }
        send_frame(conn, MsgType::kOk,
                   encode_u64(frontend_.admin_remove_shard(*id)));
        return;
      }
      default:
        // Response types arriving as requests: structurally valid,
        // semantically nonsense.
        conn.decoder.note_malformed();
        send_frame(conn, MsgType::kError, "unexpected message type");
        return;
    }
  } catch (const std::exception& e) {
    // A throwing frontend (recover() precondition, shard orchestration
    // failure) is the requester's problem, never the server's.
    send_frame(conn, MsgType::kError, e.what());
  }
}

void ServiceServer::loop() {
  std::list<Connection> connections;
  std::vector<pollfd> fds;
  while (running_) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_fds_[0], POLLIN, 0});
    for (auto& conn : connections) {
      short events = conn.draining ? 0 : POLLIN;
      if (!conn.outbox.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
    }
    if (::poll(fds.data(), fds.size(), 250) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        auto& conn = connections.emplace_back(config_.max_payload);
        conn.fd = fd;
        conn.decoder.attach_metrics(frontend_.metrics());
        ++accepted_;
      }
    }
    // Walk only the connections that were polled this round; ones accepted
    // above have no pollfd entry yet and wait for the next iteration.
    std::size_t idx = 2;
    for (auto it = connections.begin();
         it != connections.end() && idx < fds.size(); ++idx) {
      Connection& conn = *it;
      const short revents = fds[idx].revents;
      if (conn.draining) {
        // Write-only epilogue: the peer is owed queued reply bytes (version
        // verdict, a response it requested before EOF). Close once drained,
        // the deadline passes, or the send side dies.
        flush_outbox(conn);
        if (conn.outbox.empty() ||
            std::chrono::steady_clock::now() >= conn.drain_deadline) {
          ::close(conn.fd);
          it = connections.erase(it);
        } else {
          ++it;
        }
        continue;
      }
      bool closed = false;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char buf[kReadChunk];
        for (;;) {
          const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
          if (n > 0) {
            conn.decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          closed = true;  // EOF or hard error
          break;
        }
        while (auto frame = conn.decoder.next()) {
          handle(conn, *frame);
          if (conn.close_after_reply) break;
        }
        if (conn.decoder.failed()) closed = true;  // framing destroyed
        if (conn.close_after_reply) closed = true;
      }
      if ((revents & POLLOUT) != 0 || !conn.outbox.empty()) flush_outbox(conn);
      if (closed) {
        conn.decoder.finish();  // counts a buffered partial frame as truncated
        flush_outbox(conn);
        if (!conn.outbox.empty()) {
          // The reply did not fit the socket buffer (EAGAIN): keep the fd in
          // the poll set under a short deadline instead of dropping the bytes
          // the peer is still entitled to read.
          conn.draining = true;
          conn.drain_deadline =
              std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(config_.close_drain_timeout_s));
          ++it;
          continue;
        }
        ::close(conn.fd);
        it = connections.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : connections) {
    flush_outbox(conn);
    ::close(conn.fd);
  }
}

}  // namespace vire::service
