#include "service/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <list>
#include <stdexcept>

#include "obs/flight_recorder.h"

namespace vire::service {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

int make_listen_socket(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string p = path.string();
  if (p.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("ServiceServer: socket path too long: " + p);
  }
  std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("ServiceServer: socket() failed");
  ::unlink(p.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("ServiceServer: bind failed on " + p);
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    ::unlink(p.c_str());
    throw std::runtime_error("ServiceServer: listen failed on " + p);
  }
  return fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// send() that tolerates EINTR/EAGAIN; returns false on a dead peer.
bool send_some(int fd, std::string& pending) {
  while (!pending.empty()) {
    const ssize_t n = ::send(fd, pending.data(), pending.size(), MSG_NOSIGNAL);
    if (n > 0) {
      pending.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

ServiceServer::ServiceServer(ShardedService& service, ServerConfig config)
    : service_(service), config_(std::move(config)) {}

ServiceServer::~ServiceServer() { stop(); }

void ServiceServer::start() {
  if (running_) return;
  listen_fd_ = make_listen_socket(config_.socket_path);
  if (::pipe(wake_fds_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.string().c_str());
    throw std::runtime_error("ServiceServer: pipe() failed");
  }
  set_nonblocking(listen_fd_);
  set_nonblocking(wake_fds_[0]);
  running_ = true;
  loop_thread_ = std::thread([this] { loop(); });
}

void ServiceServer::stop() {
  if (!running_) return;
  running_ = false;
  // Wake the poll() so the loop observes running_ == false promptly.
  const char byte = 'x';
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  loop_thread_.join();
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(config_.socket_path.string().c_str());
}

void ServiceServer::send_frame(Connection& conn, MsgType type,
                               std::string_view payload) {
  conn.outbox += encode_frame(type, payload);
}

void ServiceServer::flush_outbox(Connection& conn) {
  if (!send_some(conn.fd, conn.outbox)) {
    // Peer is gone; drop the rest — the loop reaps the fd on its next read.
    conn.outbox.clear();
  }
}

void ServiceServer::handle(Connection& conn, const Frame& frame) {
  switch (frame.type) {
    case MsgType::kIngest: {
      auto readings = decode_ingest(frame.payload);
      if (!readings.has_value()) {
        conn.decoder.note_malformed();
        send_frame(conn, MsgType::kError, "malformed ingest payload");
        return;
      }
      service_.ingest(*readings);
      return;  // fire-and-forget
    }
    case MsgType::kPoll: {
      const auto now = decode_time(frame.payload);
      if (!now.has_value()) {
        conn.decoder.note_malformed();
        send_frame(conn, MsgType::kError, "malformed poll payload");
        return;
      }
      send_frame(conn, MsgType::kFixBatch, encode_fixes(service_.poll(*now)));
      return;
    }
    case MsgType::kLatestFix: {
      const auto tag = decode_tag(frame.payload);
      if (!tag.has_value()) {
        conn.decoder.note_malformed();
        send_frame(conn, MsgType::kError, "malformed latest_fix payload");
        return;
      }
      send_frame(conn, MsgType::kFixReply,
                 encode_fix_reply(service_.latest_fix(*tag)));
      return;
    }
    case MsgType::kExplain: {
      const auto tag = decode_tag(frame.payload);
      if (!tag.has_value()) {
        conn.decoder.note_malformed();
        send_frame(conn, MsgType::kError, "malformed explain payload");
        return;
      }
      const auto record = service_.explain(*tag);
      if (!record.has_value()) {
        send_frame(conn, MsgType::kError, "no flight record for tag");
        return;
      }
      send_frame(conn, MsgType::kText, obs::to_json(*record));
      return;
    }
    case MsgType::kSnapshot: {
      const auto format = decode_snapshot_request(frame.payload);
      if (!format.has_value()) {
        conn.decoder.note_malformed();
        send_frame(conn, MsgType::kError, "malformed snapshot payload");
        return;
      }
      send_frame(conn, MsgType::kText,
                 *format == kSnapshotJson ? service_.merged_json()
                                          : service_.merged_prometheus());
      return;
    }
    default:
      // Response types arriving as requests: structurally valid, semantically
      // nonsense.
      conn.decoder.note_malformed();
      send_frame(conn, MsgType::kError, "unexpected message type");
      return;
  }
}

void ServiceServer::loop() {
  std::list<Connection> connections;
  std::vector<pollfd> fds;
  while (running_) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_fds_[0], POLLIN, 0});
    for (auto& conn : connections) {
      short events = POLLIN;
      if (!conn.outbox.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
    }
    if (::poll(fds.data(), fds.size(), 250) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        auto& conn = connections.emplace_back(config_.max_payload);
        conn.fd = fd;
        conn.decoder.attach_metrics(service_.metrics());
        ++accepted_;
      }
    }
    // Walk only the connections that were polled this round; ones accepted
    // above have no pollfd entry yet and wait for the next iteration.
    std::size_t idx = 2;
    for (auto it = connections.begin();
         it != connections.end() && idx < fds.size(); ++idx) {
      Connection& conn = *it;
      const short revents = fds[idx].revents;
      bool closed = false;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char buf[kReadChunk];
        for (;;) {
          const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
          if (n > 0) {
            conn.decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          closed = true;  // EOF or hard error
          break;
        }
        while (auto frame = conn.decoder.next()) handle(conn, *frame);
        if (conn.decoder.failed()) closed = true;  // framing destroyed
      }
      if ((revents & POLLOUT) != 0 || !conn.outbox.empty()) flush_outbox(conn);
      if (closed) {
        conn.decoder.finish();  // counts a buffered partial frame as truncated
        flush_outbox(conn);
        ::close(conn.fd);
        it = connections.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : connections) {
    flush_outbox(conn);
    ::close(conn.fd);
  }
}

ServiceClient::ServiceClient(const std::filesystem::path& socket_path,
                             std::size_t max_payload)
    : decoder_(max_payload) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string p = socket_path.string();
  if (p.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("ServiceClient: socket path too long: " + p);
  }
  std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("ServiceClient: socket() failed");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("ServiceClient: connect failed on " + p);
  }
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

void ServiceClient::send_all(std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error("ServiceClient: send failed");
  }
}

Frame ServiceClient::read_frame() {
  for (;;) {
    if (auto frame = decoder_.next()) return *frame;
    if (decoder_.failed()) {
      throw std::runtime_error("ServiceClient: response stream corrupt");
    }
    char buf[kReadChunk];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error("ServiceClient: connection closed by server");
  }
}

void ServiceClient::stream(const std::vector<sim::RssiReading>& readings) {
  send_all(encode_frame(MsgType::kIngest, encode_ingest(readings)));
}

std::vector<engine::Fix> ServiceClient::poll(sim::SimTime now) {
  send_all(encode_frame(MsgType::kPoll, encode_time(now)));
  const Frame reply = read_frame();
  if (reply.type == MsgType::kError) {
    throw std::runtime_error("ServiceClient: " + reply.payload);
  }
  auto fixes = decode_fixes(reply.payload);
  if (reply.type != MsgType::kFixBatch || !fixes.has_value()) {
    throw std::runtime_error("ServiceClient: bad poll response");
  }
  return std::move(*fixes);
}

std::optional<engine::Fix> ServiceClient::latest_fix(sim::TagId tag) {
  send_all(encode_frame(MsgType::kLatestFix, encode_tag(tag)));
  const Frame reply = read_frame();
  if (reply.type == MsgType::kError) {
    throw std::runtime_error("ServiceClient: " + reply.payload);
  }
  auto fix = decode_fix_reply(reply.payload);
  if (reply.type != MsgType::kFixReply || !fix.has_value()) {
    throw std::runtime_error("ServiceClient: bad latest_fix response");
  }
  return std::move(*fix);
}

std::optional<std::string> ServiceClient::explain(sim::TagId tag) {
  send_all(encode_frame(MsgType::kExplain, encode_tag(tag)));
  const Frame reply = read_frame();
  if (reply.type == MsgType::kText) return reply.payload;
  if (reply.type == MsgType::kError) return std::nullopt;
  throw std::runtime_error("ServiceClient: bad explain response");
}

std::string ServiceClient::snapshot(std::uint8_t format) {
  send_all(encode_frame(MsgType::kSnapshot, encode_snapshot_request(format)));
  const Frame reply = read_frame();
  if (reply.type != MsgType::kText) {
    throw std::runtime_error("ServiceClient: bad snapshot response");
  }
  return reply.payload;
}

std::string ServiceClient::snapshot_prometheus() {
  return snapshot(kSnapshotPrometheus);
}

std::string ServiceClient::snapshot_json() { return snapshot(kSnapshotJson); }

}  // namespace vire::service
