#pragma once
// Durable control journal of the supervisor (docs/service.md, "Supervisor
// failover & elastic membership").
//
// PR 8/9 made shard *processes* self-healing, but the supervisor's own
// control plane — per-shard op-logs, the ingest sequence cursor, router
// membership, breaker states — lived only in memory, making the coordinator
// the single point of data loss. This journal records every control-plane
// op in a segmented CRC-framed log (persist::FramedLog, the WAL's on-disk
// discipline) under <root>/journal/, plus a periodic checkpoint of the
// folded state, so a supervisor restarted over an existing root rebuilds
// its op-log, reseeds sequences and replays only the un-acked suffix.
//
// Layout under config.dir:
//   ops-<start_sequence>.log   segmented op records ("VCJL" magic)
//   checkpoint.bin             folded control state ("VCJC" magic, CRC body,
//                              written via support::atomic_write_file)
//
// Op records (u8 type | payload, little-endian):
//   kTrack         u32 tag | str name | u8 has_zone | [u32 zone]
//   kSetReference  u32 count | u32 tag*
//   kBatch         u32 shard | u64 batch_seq | u32 count | readings
//   kPoll          u32 shard | f64 time          (poll a down shard owes)
//   kAddShard / kShardActive / kShardDraining / kRemoveShard   u32 shard
//   kBreakerOpen / kBreakerClose                               u32 shard
//   kPollsDone     u32 shard | u64 through_journal_seq
//
// Durability note: the default fsync policy is kOff — completed write()s
// survive a supervisor SIGKILL (the drill this journal exists for) via the
// page cache; checkpoint() always syncs the log before writing the state
// file, bounding machine-crash loss to one checkpoint interval. Raise the
// policy for stricter machine-crash durability.

#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/localization_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/framed_log.h"
#include "sim/types.h"

namespace vire::service {

/// Membership state machine of one fleet member, journaled so restarts
/// resume interrupted joins/drains and vire_fleet_status can show it:
///   kJoining  — kAddShard journaled; process up, seed + migration pending
///   kActive   — in the router, owns tags (kShardActive journaled)
///   kDraining — kShardDraining journaled; out of the router, tags moving out
enum class MemberPhase : std::uint8_t {
  kJoining = 0,
  kActive = 1,
  kDraining = 2,
};
[[nodiscard]] std::string_view to_string(MemberPhase phase) noexcept;

struct ControlJournalConfig {
  std::filesystem::path dir;
  persist::FsyncPolicy fsync = persist::FsyncPolicy::kOff;
  std::uint64_t fsync_every_n = 64;
  double fsync_interval_s = 0.2;
  std::uint64_t segment_max_records = 4096;
  /// Testing seam (fault::DiskFaultInjector); nullptr in production.
  support::IoFaultHook* fault_hook = nullptr;
};

/// One op-log entry rebuilt from the journal: a batch the shard has not
/// acked, or a poll a down shard still owes.
struct JournaledOp {
  enum class Kind : std::uint8_t { kBatch, kPoll };
  Kind kind = Kind::kBatch;
  std::uint64_t journal_sequence = 0;
  std::uint64_t batch_sequence = 0;            ///< kBatch only
  std::vector<sim::RssiReading> readings;      ///< kBatch only
  sim::SimTime time = 0.0;                     ///< kPoll only
};

/// The folded control-plane state a checkpoint persists and recovery
/// returns. Doubles cross by bit pattern (persist::ByteWriter), so restored
/// held fixes and poll times are the identical IEEE-754 values.
struct ControlCheckpoint {
  /// Journal sequence replay starts from: the oldest journal record any
  /// member's op-log still needs (next_sequence when every op-log is empty).
  std::uint64_t journal_floor = 1;
  std::uint64_t ingest_sequence = 0;  ///< highest allocated batch sequence
  std::uint32_t next_shard_id = 0;
  double last_poll_time = 0.0;        ///< migration-horizon cursor

  struct Member {
    std::uint32_t id = 0;
    MemberPhase phase = MemberPhase::kActive;
    std::uint64_t last_ack = 0;      ///< highest batch seq durably acked
    bool breaker_open = false;
    /// Journal sequence through which journaled polls have been executed.
    std::uint64_t polls_done = 0;
  };
  std::vector<Member> members;

  std::vector<sim::TagId> reference_ids;
  struct Tag {
    sim::TagId tag = 0;
    std::string name;
    std::optional<std::uint32_t> zone;
  };
  std::vector<Tag> tags;
  /// Merged latest-fix cache (feeds kHold degradation after restart).
  std::vector<engine::Fix> latest;
};

struct RecoveredControlState {
  /// True when a checkpoint or any journal record existed under the dir.
  bool recovered = false;
  /// Checkpoint state with the journal suffix folded in.
  ControlCheckpoint state;
  /// Per-member un-acked op-log suffix, in journal order.
  std::map<std::uint32_t, std::deque<JournaledOp>> oplogs;
  std::uint64_t replayed_ops = 0;      ///< journal records folded at recovery
  std::uint64_t corrupt_records = 0;   ///< torn-tail records dropped
};

class ControlJournal {
 public:
  explicit ControlJournal(ControlJournalConfig config);

  ControlJournal(const ControlJournal&) = delete;
  ControlJournal& operator=(const ControlJournal&) = delete;

  /// Reads checkpoint.bin plus the journal suffix and folds both into the
  /// recovered control state. Call once, before the first append.
  [[nodiscard]] RecoveredControlState recover();

  // Op appends. Each returns the journal sequence the record received.
  std::uint64_t record_track(sim::TagId tag, const std::string& name,
                             std::optional<std::uint32_t> zone);
  std::uint64_t record_set_reference(const std::vector<sim::TagId>& ids);
  std::uint64_t record_batch(std::uint32_t shard, std::uint64_t batch_sequence,
                             const std::vector<sim::RssiReading>& readings);
  std::uint64_t record_poll(std::uint32_t shard, sim::SimTime time);
  std::uint64_t record_add_shard(std::uint32_t shard);
  std::uint64_t record_shard_active(std::uint32_t shard);
  std::uint64_t record_shard_draining(std::uint32_t shard);
  std::uint64_t record_remove_shard(std::uint32_t shard);
  std::uint64_t record_breaker(std::uint32_t shard, bool open);
  std::uint64_t record_polls_done(std::uint32_t shard,
                                  std::uint64_t through_sequence);

  /// Re-reads the journal from disk and rebuilds one member's un-acked
  /// op-log suffix: batches above `last_ack` plus polls above `polls_done`.
  /// This is the overflow escape hatch — when the in-memory op-log evicted
  /// journaled entries (push_oplog capacity), bring_up rebuilds the full
  /// suffix from here instead of silently losing the evicted prefix.
  [[nodiscard]] std::deque<JournaledOp> collect_oplog(std::uint32_t shard,
                                                      std::uint64_t last_ack,
                                                      std::uint64_t polls_done);

  /// Syncs the log, atomically writes checkpoint.bin, prunes segments wholly
  /// below state.journal_floor and resets appends_since_checkpoint().
  void checkpoint(const ControlCheckpoint& state);

  [[nodiscard]] std::uint64_t appends_since_checkpoint() const noexcept {
    return since_checkpoint_;
  }
  [[nodiscard]] std::uint64_t next_sequence() const noexcept {
    return log_.next_sequence();
  }
  [[nodiscard]] std::uint64_t truncated_records() const noexcept {
    return log_.truncated_records();
  }
  [[nodiscard]] const ControlJournalConfig& config() const noexcept {
    return config_;
  }

  /// Registers vire_supervisor_journal_{appends,checkpoints,replayed_ops,
  /// truncated}_total. Pure side channel.
  void attach_metrics(obs::MetricsRegistry& registry);
  /// Emits supervisor.journal_fsync spans. Pass nullptr to detach.
  void attach_tracer(obs::Tracer* tracer) noexcept {
    log_.attach_tracer(tracer, "supervisor.journal_fsync");
  }

 private:
  std::uint64_t append(std::uint8_t type, std::string_view payload);

  ControlJournalConfig config_;
  persist::FramedLog log_;
  std::uint64_t since_checkpoint_ = 0;
  obs::Counter* appends_metric_ = nullptr;
  obs::Counter* checkpoints_metric_ = nullptr;
  obs::Counter* replayed_metric_ = nullptr;
  obs::Counter* truncated_metric_ = nullptr;
};

}  // namespace vire::service
