#include "service/wire.h"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "persist/binary_io.h"
#include "persist/checkpoint.h"

namespace vire::service {

namespace {

/// Bytes after the length prefix that are not payload: type byte + CRC.
constexpr std::uint32_t kFrameOverhead = 5;

/// Smallest possible encoded Fix (empty name): u32 tag + u32 name length +
/// f64 time + u8 valid + u8 quality + 4x f64 positions + u64 survivors +
/// u8 fallback + f64 age. Bounds the fix-count a payload can honestly claim.
constexpr std::size_t kMinFixEncoding = 67;

bool known_type(std::uint8_t t) noexcept {
  switch (static_cast<MsgType>(t)) {
    case MsgType::kIngest:
    case MsgType::kPoll:
    case MsgType::kLatestFix:
    case MsgType::kExplain:
    case MsgType::kSnapshot:
    case MsgType::kHello:
    case MsgType::kHeartbeat:
    case MsgType::kIngestSeq:
    case MsgType::kTrack:
    case MsgType::kSetReference:
    case MsgType::kRecover:
    case MsgType::kTraceDump:
    case MsgType::kProvenanceDump:
    case MsgType::kFixBatch:
    case MsgType::kFixReply:
    case MsgType::kText:
    case MsgType::kError:
    case MsgType::kHelloAck:
    case MsgType::kHeartbeatAck:
    case MsgType::kOk:
    case MsgType::kTraceDumpReply:
    case MsgType::kExportTag:
    case MsgType::kImportTag:
    case MsgType::kSeedExport:
    case MsgType::kSeedImport:
    case MsgType::kAddShard:
    case MsgType::kRemoveShard:
    case MsgType::kTagState:
    case MsgType::kSeedState:
      return true;
  }
  return false;
}

std::uint32_t read_u32le(const char* p) noexcept {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap32(v);
  }
  return v;
}

void encode_fix(persist::ByteWriter& w, const engine::Fix& fix) {
  w.u32(fix.tag);
  w.str(fix.name);
  w.f64(fix.time);
  w.u8(fix.valid ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(fix.quality));
  w.f64(fix.position.x);
  w.f64(fix.position.y);
  w.f64(fix.smoothed_position.x);
  w.f64(fix.smoothed_position.y);
  w.u64(fix.survivor_count);
  w.u8(fix.used_fallback ? 1 : 0);
  w.f64(fix.age_s);
}

std::optional<engine::Fix> decode_fix(persist::ByteReader& r) {
  engine::Fix fix;
  const auto tag = r.u32();
  auto name = r.str();
  const auto time = r.f64();
  const auto valid = r.u8();
  const auto quality = r.u8();
  const auto px = r.f64();
  const auto py = r.f64();
  const auto sx = r.f64();
  const auto sy = r.f64();
  const auto survivors = r.u64();
  const auto fallback = r.u8();
  const auto age = r.f64();
  if (!r.ok()) return std::nullopt;
  if (*valid > 1 || *fallback > 1 || *quality > 3) return std::nullopt;
  fix.tag = *tag;
  fix.name = std::move(*name);
  fix.time = *time;
  fix.valid = *valid != 0;
  fix.quality = static_cast<engine::FixQuality>(*quality);
  fix.position = {*px, *py};
  fix.smoothed_position = {*sx, *sy};
  fix.survivor_count = static_cast<std::size_t>(*survivors);
  fix.used_fallback = *fallback != 0;
  fix.age_s = *age;
  return fix;
}

}  // namespace

std::string_view to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kOversized: return "oversized";
    case RejectReason::kBadCrc: return "bad_crc";
    case RejectReason::kBadType: return "bad_type";
    case RejectReason::kTruncated: return "truncated";
    case RejectReason::kMalformed: return "malformed";
    case RejectReason::kVersionMismatch: return "version_mismatch";
  }
  return "unknown";
}

std::string encode_frame(MsgType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw std::length_error("encode_frame: payload of " +
                            std::to_string(payload.size()) +
                            " bytes exceeds the " +
                            std::to_string(kMaxFramePayload) +
                            "-byte frame cap");
  }
  persist::ByteWriter body;
  body.u8(static_cast<std::uint8_t>(type));
  body.raw(payload);
  const std::uint32_t crc = persist::crc32(body.bytes());
  persist::ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()) + kFrameOverhead);
  frame.raw(body.bytes());
  frame.u32(crc);
  return frame.take();
}

std::uint64_t FrameDecoder::rejected_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto v : rejected_) total += v;
  return total;
}

void FrameDecoder::attach_metrics(obs::MetricsRegistry& registry) {
  for (std::size_t i = 0; i < kRejectReasonCount; ++i) {
    counters_[i] = &registry.counter(
        "vire_service_rejected_frames_total",
        "reason=\"" + std::string(to_string(static_cast<RejectReason>(i))) + "\"",
        "Wire frames rejected by the service, by reason");
  }
}

void FrameDecoder::count(RejectReason reason) {
  const auto i = static_cast<std::size_t>(reason);
  ++rejected_[i];
  if (counters_[i] != nullptr) counters_[i]->inc();
}

std::optional<Frame> FrameDecoder::next() {
  while (!failed_) {
    // Drop the consumed prefix once it dominates the buffer, so a long-lived
    // connection does not grow the buffer without bound.
    if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
    const std::size_t available = buffer_.size() - pos_;
    if (available < 4) return std::nullopt;
    const std::uint32_t frame_len = read_u32le(buffer_.data() + pos_);
    if (frame_len < kFrameOverhead ||
        frame_len > max_payload_ + kFrameOverhead) {
      // The length prefix itself is garbage: there is no trustworthy frame
      // boundary to resync at, so the stream is dead.
      count(RejectReason::kOversized);
      failed_ = true;
      return std::nullopt;
    }
    if (available < 4 + static_cast<std::size_t>(frame_len)) return std::nullopt;
    const char* body = buffer_.data() + pos_ + 4;
    const std::size_t payload_len = frame_len - kFrameOverhead;
    const std::uint32_t stored_crc = read_u32le(body + 1 + payload_len);
    pos_ += 4 + frame_len;  // consume whole frame whatever happens next
    if (persist::crc32(std::string_view(body, 1 + payload_len)) != stored_crc) {
      count(RejectReason::kBadCrc);
      continue;
    }
    const auto type_byte = static_cast<std::uint8_t>(body[0]);
    if (!known_type(type_byte)) {
      count(RejectReason::kBadType);
      continue;
    }
    Frame frame;
    frame.type = static_cast<MsgType>(type_byte);
    frame.payload.assign(body + 1, payload_len);
    return frame;
  }
  return std::nullopt;
}

void FrameDecoder::finish() {
  if (finished_) return;
  finished_ = true;
  if (!failed_ && pos_ < buffer_.size()) count(RejectReason::kTruncated);
}

std::string encode_ingest(const std::vector<sim::RssiReading>& readings) {
  persist::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(readings.size()));
  for (const auto& r : readings) {
    w.f64(r.time);
    w.u32(r.tag);
    w.u16(r.reader);
    w.f64(r.rssi_dbm);
  }
  return w.take();
}

std::optional<std::vector<sim::RssiReading>> decode_ingest(std::string_view payload) {
  persist::ByteReader r(payload);
  const auto count = r.u32();
  if (!r.ok()) return std::nullopt;
  // Fixed-size readings; an honest count can never overrun the payload.
  if (static_cast<std::size_t>(*count) * kReadingEncoding != r.remaining()) {
    return std::nullopt;
  }
  std::vector<sim::RssiReading> readings;
  readings.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    sim::RssiReading reading;
    const auto time = r.f64();
    const auto tag = r.u32();
    const auto reader = r.u16();
    const auto rssi = r.f64();
    if (!r.ok()) return std::nullopt;
    reading.time = *time;
    reading.tag = *tag;
    reading.reader = *reader;
    reading.rssi_dbm = *rssi;
    readings.push_back(reading);
  }
  if (!r.exhausted()) return std::nullopt;
  return readings;
}

std::string encode_time(sim::SimTime now) {
  persist::ByteWriter w;
  w.f64(now);
  return w.take();
}

std::optional<sim::SimTime> decode_time(std::string_view payload) {
  persist::ByteReader r(payload);
  const auto now = r.f64();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return *now;
}

std::string encode_tag(sim::TagId tag) {
  persist::ByteWriter w;
  w.u32(tag);
  return w.take();
}

std::optional<sim::TagId> decode_tag(std::string_view payload) {
  persist::ByteReader r(payload);
  const auto tag = r.u32();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return *tag;
}

std::string encode_snapshot_request(std::uint8_t format) {
  persist::ByteWriter w;
  w.u8(format);
  return w.take();
}

std::optional<std::uint8_t> decode_snapshot_request(std::string_view payload) {
  persist::ByteReader r(payload);
  const auto format = r.u8();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  if (*format != kSnapshotPrometheus && *format != kSnapshotJson) return std::nullopt;
  return *format;
}

std::string encode_fixes(const std::vector<engine::Fix>& fixes) {
  persist::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(fixes.size()));
  for (const auto& fix : fixes) encode_fix(w, fix);
  return w.take();
}

std::optional<std::vector<engine::Fix>> decode_fixes(std::string_view payload) {
  persist::ByteReader r(payload);
  const auto count = r.u32();
  if (!r.ok()) return std::nullopt;
  // Bound the claimed count by what the payload could possibly hold BEFORE
  // reserving: each Fix decodes to ~100+ bytes in memory, so trusting a
  // hostile u32 here would let a 1 MiB payload force a ~100 MB reservation.
  if (static_cast<std::uint64_t>(*count) * kMinFixEncoding > r.remaining()) {
    return std::nullopt;
  }
  std::vector<engine::Fix> fixes;
  fixes.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto fix = decode_fix(r);
    if (!fix.has_value()) return std::nullopt;
    fixes.push_back(std::move(*fix));
  }
  if (!r.exhausted()) return std::nullopt;
  return fixes;
}

std::string encode_fix_reply(const std::optional<engine::Fix>& fix) {
  persist::ByteWriter w;
  w.u8(fix.has_value() ? 1 : 0);
  if (fix.has_value()) encode_fix(w, *fix);
  return w.take();
}

std::optional<std::optional<engine::Fix>> decode_fix_reply(std::string_view payload) {
  persist::ByteReader r(payload);
  const auto found = r.u8();
  if (!r.ok() || *found > 1) return std::nullopt;
  if (*found == 0) {
    if (!r.exhausted()) return std::nullopt;
    return std::optional<engine::Fix>(std::nullopt);
  }
  auto fix = decode_fix(r);
  if (!fix.has_value() || !r.exhausted()) return std::nullopt;
  return std::optional<engine::Fix>(std::move(*fix));
}

std::string encode_hello(const Hello& hello) {
  persist::ByteWriter w;
  w.u32(hello.version);
  w.str(hello.peer_name);
  return w.take();
}

std::optional<Hello> decode_hello(std::string_view payload) {
  persist::ByteReader r(payload);
  const auto version = r.u32();
  auto name = r.str();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  Hello hello;
  hello.version = *version;
  hello.peer_name = std::move(*name);
  return hello;
}

std::string encode_heartbeat_ack(const HeartbeatAck& ack) {
  persist::ByteWriter w;
  w.u64(ack.seq);
  w.u64(ack.wal_next_sequence);
  w.u64(ack.last_ack_sequence);
  w.f64(ack.mono_now_us);
  w.u64(ack.anomaly_dumps);
  return w.take();
}

std::optional<HeartbeatAck> decode_heartbeat_ack(std::string_view payload) {
  persist::ByteReader r(payload);
  const auto seq = r.u64();
  const auto wal = r.u64();
  const auto ack_seq = r.u64();
  if (!r.ok()) return std::nullopt;
  HeartbeatAck ack;
  ack.seq = *seq;
  ack.wal_next_sequence = *wal;
  ack.last_ack_sequence = *ack_seq;
  if (r.exhausted()) return ack;  // 24-byte v2 ack: clock fields stay zero
  const auto mono = r.f64();
  const auto dumps = r.u64();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  ack.mono_now_us = *mono;
  ack.anomaly_dumps = *dumps;
  return ack;
}

std::string encode_ingest_seq(std::uint64_t sequence,
                              const obs::TraceContext& ctx,
                              const std::vector<sim::RssiReading>& readings) {
  persist::ByteWriter w;
  w.u64(sequence);
  w.u64(ctx.trace_id);
  w.u64(ctx.parent_span_id);
  w.raw(encode_ingest(readings));
  return w.take();
}

std::string encode_ingest_seq(std::uint64_t sequence,
                              const std::vector<sim::RssiReading>& readings) {
  return encode_ingest_seq(sequence, obs::TraceContext{}, readings);
}

std::optional<SequencedBatch> decode_ingest_seq(std::string_view payload) {
  persist::ByteReader r(payload);
  const auto sequence = r.u64();
  const auto trace_id = r.u64();
  const auto parent_span = r.u64();
  if (!r.ok()) return std::nullopt;
  auto readings = decode_ingest(payload.substr(3 * sizeof(std::uint64_t)));
  if (!readings.has_value()) return std::nullopt;
  SequencedBatch batch;
  batch.sequence = *sequence;
  batch.ctx = {*trace_id, *parent_span};
  batch.readings = std::move(*readings);
  return batch;
}

std::string encode_poll(const PollRequest& request) {
  persist::ByteWriter w;
  w.f64(request.now);
  w.u64(request.ctx.trace_id);
  w.u64(request.ctx.parent_span_id);
  return w.take();
}

std::optional<PollRequest> decode_poll(std::string_view payload) {
  persist::ByteReader r(payload);
  const auto now = r.f64();
  if (!r.ok()) return std::nullopt;
  PollRequest request;
  request.now = *now;
  if (r.exhausted()) return request;  // bare v2 `now`: zero context
  const auto trace_id = r.u64();
  const auto span = r.u64();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  request.ctx = {*trace_id, *span};
  return request;
}

std::string encode_trace_dump(const obs::TraceDump& dump) {
  persist::ByteWriter w;
  w.f64(dump.now_us);
  w.u32(static_cast<std::uint32_t>(dump.thread_names.size()));
  for (const auto& [tid, name] : dump.thread_names) {
    w.u32(tid);
    w.str(name);
  }
  w.u32(static_cast<std::uint32_t>(dump.events.size()));
  for (const obs::TraceEvent& e : dump.events) {
    w.str(e.name);
    w.u8(static_cast<std::uint8_t>(e.ph));
    w.u8(static_cast<std::uint8_t>(e.scope));
    w.f64(e.ts_us);
    w.f64(e.dur_us);
    w.u32(e.tid);
    w.str(e.args);
  }
  return w.take();
}

std::optional<obs::TraceDump> decode_trace_dump(std::string_view payload) {
  persist::ByteReader r(payload);
  obs::TraceDump dump;
  const auto now_us = r.f64();
  const auto name_count = r.u32();
  if (!r.ok()) return std::nullopt;
  // Each thread-name entry is at least u32 tid + u32 string length; bound the
  // claimed count before reserving so a hostile u32 cannot force a huge
  // allocation out of a small payload.
  if (static_cast<std::uint64_t>(*name_count) * 8 > r.remaining()) {
    return std::nullopt;
  }
  dump.now_us = *now_us;
  dump.thread_names.reserve(*name_count);
  for (std::uint32_t i = 0; i < *name_count; ++i) {
    const auto tid = r.u32();
    auto name = r.str();
    if (!r.ok()) return std::nullopt;
    dump.thread_names.emplace_back(*tid, std::move(*name));
  }
  const auto event_count = r.u32();
  if (!r.ok()) return std::nullopt;
  // Minimum encoded event: two length-prefixed empty strings + ph + scope +
  // two f64 + u32 tid = 30 bytes.
  if (static_cast<std::uint64_t>(*event_count) * 30 > r.remaining()) {
    return std::nullopt;
  }
  dump.events.reserve(*event_count);
  for (std::uint32_t i = 0; i < *event_count; ++i) {
    obs::TraceEvent e;
    auto name = r.str();
    const auto ph = r.u8();
    const auto scope = r.u8();
    const auto ts = r.f64();
    const auto dur = r.f64();
    const auto tid = r.u32();
    auto args = r.str();
    if (!r.ok()) return std::nullopt;
    e.name = std::move(*name);
    e.ph = static_cast<char>(*ph);
    e.scope = static_cast<char>(*scope);
    e.ts_us = *ts;
    e.dur_us = *dur;
    e.tid = *tid;
    e.args = std::move(*args);
    dump.events.push_back(std::move(e));
  }
  if (!r.exhausted()) return std::nullopt;
  return dump;
}

std::string encode_track(const TrackRequest& request) {
  persist::ByteWriter w;
  w.u32(request.tag);
  w.str(request.name);
  w.u8(request.zone.has_value() ? 1 : 0);
  if (request.zone.has_value()) w.u32(*request.zone);
  return w.take();
}

std::optional<TrackRequest> decode_track(std::string_view payload) {
  persist::ByteReader r(payload);
  const auto tag = r.u32();
  auto name = r.str();
  const auto has_zone = r.u8();
  if (!r.ok() || *has_zone > 1) return std::nullopt;
  TrackRequest request;
  request.tag = *tag;
  request.name = std::move(*name);
  if (*has_zone != 0) {
    const auto zone = r.u32();
    if (!r.ok()) return std::nullopt;
    request.zone = *zone;
  }
  if (!r.exhausted()) return std::nullopt;
  return request;
}

std::string encode_reference_ids(const std::vector<sim::TagId>& ids) {
  persist::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (const auto id : ids) w.u32(id);
  return w.take();
}

std::optional<std::vector<sim::TagId>> decode_reference_ids(
    std::string_view payload) {
  persist::ByteReader r(payload);
  const auto count = r.u32();
  if (!r.ok()) return std::nullopt;
  if (static_cast<std::size_t>(*count) * 4 != r.remaining()) return std::nullopt;
  std::vector<sim::TagId> ids;
  ids.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto id = r.u32();
    if (!r.ok()) return std::nullopt;
    ids.push_back(*id);
  }
  return ids;
}

std::string encode_u64(std::uint64_t value) {
  persist::ByteWriter w;
  w.u64(value);
  return w.take();
}

std::optional<std::uint64_t> decode_u64(std::string_view payload) {
  persist::ByteReader r(payload);
  const auto value = r.u64();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return *value;
}

std::string encode_u32(std::uint32_t value) {
  persist::ByteWriter w;
  w.u32(value);
  return w.take();
}

std::optional<std::uint32_t> decode_u32(std::string_view payload) {
  persist::ByteReader r(payload);
  const auto value = r.u32();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return *value;
}

std::string encode_tag_state(
    const std::optional<engine::TagStateSnapshot>& state) {
  persist::ByteWriter w;
  w.u8(state.has_value() ? 1 : 0);
  if (state.has_value()) persist::write_tag_state(w, *state);
  return w.take();
}

std::optional<std::optional<engine::TagStateSnapshot>> decode_tag_state(
    std::string_view payload) {
  persist::ByteReader r(payload);
  const auto has = r.u8();
  if (!has) return std::nullopt;
  if (*has == 0) {
    if (!r.exhausted()) return std::nullopt;
    return std::optional<engine::TagStateSnapshot>{};
  }
  engine::TagStateSnapshot state;
  if (!persist::read_tag_state(r, state) || !r.exhausted()) return std::nullopt;
  return std::optional<engine::TagStateSnapshot>{std::move(state)};
}

std::string encode_import_tag(const ImportTagRequest& request) {
  persist::ByteWriter w;
  w.u32(request.tag);
  w.u8(request.zone.has_value() ? 1 : 0);
  if (request.zone.has_value()) w.u32(*request.zone);
  persist::write_tag_state(w, request.state);
  return w.take();
}

std::optional<ImportTagRequest> decode_import_tag(std::string_view payload) {
  persist::ByteReader r(payload);
  ImportTagRequest request;
  const auto tag = r.u32();
  const auto has_zone = r.u8();
  if (!tag || !has_zone) return std::nullopt;
  request.tag = *tag;
  if (*has_zone != 0) {
    const auto zone = r.u32();
    if (!zone) return std::nullopt;
    request.zone = *zone;
  }
  if (!persist::read_tag_state(r, request.state) || !r.exhausted()) {
    return std::nullopt;
  }
  return request;
}

std::string encode_seed_state(const SeedState& seed) {
  persist::ByteWriter w;
  persist::write_engine_state(w, seed.engine);
  persist::write_middleware_snapshot(w, seed.middleware);
  return w.take();
}

std::optional<SeedState> decode_seed_state(std::string_view payload) {
  persist::ByteReader r(payload);
  SeedState seed;
  if (!persist::read_engine_state(r, seed.engine)) return std::nullopt;
  if (!persist::read_middleware_snapshot(r, seed.middleware)) return std::nullopt;
  if (!r.exhausted()) return std::nullopt;
  return seed;
}

}  // namespace vire::service
