#include "service/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/exporters.h"
#include "support/rng.h"

namespace vire::service {

double SteadyClock::now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SteadyClock::sleep_for(double seconds) {
  if (seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

std::string_view to_string(ShardState state) noexcept {
  switch (state) {
    case ShardState::kStarting: return "starting";
    case ShardState::kUp: return "up";
    case ShardState::kBackoff: return "backoff";
    case ShardState::kDown: return "down";
  }
  return "unknown";
}

std::string_view to_string(DeathCause cause) noexcept {
  switch (cause) {
    case DeathCause::kHeartbeatTimeout: return "heartbeat_timeout";
    case DeathCause::kSocket: return "socket";
    case DeathCause::kWaitpid: return "waitpid";
  }
  return "unknown";
}

namespace {

constexpr ShardState kAllStates[] = {ShardState::kStarting, ShardState::kUp,
                                     ShardState::kBackoff, ShardState::kDown};
constexpr DeathCause kAllCauses[] = {DeathCause::kHeartbeatTimeout,
                                     DeathCause::kSocket, DeathCause::kWaitpid};

std::string shard_json(std::uint32_t id) {
  return "{\"shard\":" + std::to_string(id) + "}";
}

}  // namespace

Supervisor::Supervisor(const env::Deployment& deployment,
                       SupervisorConfig config, Clock* clock)
    : deployment_(deployment),
      config_(std::move(config)),
      clock_(clock != nullptr ? clock : &steady_clock_),
      router_(config_.router) {
  if (config_.shards < 1) {
    throw std::invalid_argument("Supervisor: shards must be >= 1");
  }
  if (config_.shardd_binary.empty()) {
    throw std::invalid_argument("Supervisor: shardd_binary is required");
  }
  if (config_.fleet_tracing) {
    tracer_.set_enabled(true);
    config_.shardd_extra_args.emplace_back("--trace");
  }
  for (int i = 0; i < config_.shards; ++i) {
    const auto id = static_cast<std::uint32_t>(i);
    router_.add_shard(id);
    ManagedShard shard;
    shard.id = id;
    shard.socket = config_.root_dir / ("shard-" + std::to_string(id) + ".sock");
    shard.data_dir = config_.root_dir / ("shard-" + std::to_string(id));
    shards_.emplace(id, std::move(shard));
  }

  restarts_total_ = &metrics_.counter("vire_supervisor_restarts_total", {},
                                      "Successful shard process restarts");
  for (DeathCause cause : kAllCauses) {
    deaths_total_[static_cast<std::size_t>(cause)] = &metrics_.counter(
        "vire_supervisor_deaths_total",
        obs::label_pair("cause", std::string(to_string(cause))),
        "Shard deaths by detection cause");
  }
  breaker_open_total_ =
      &metrics_.counter("vire_supervisor_breaker_open_total", {},
                        "Crash-loop circuit breaker openings");
  replayed_batches_ =
      &metrics_.counter("vire_supervisor_replayed_batches_total", {},
                        "Un-acked ingest batches re-sent after a restart");
  replayed_readings_ =
      &metrics_.counter("vire_supervisor_replayed_readings_total", {},
                        "Readings re-sent inside replayed batches");
  replayed_polls_ =
      &metrics_.counter("vire_supervisor_replayed_polls_total", {},
                        "Polls missed while a shard was dead, replayed on revival");
  held_fixes_ = &metrics_.counter(
      "vire_supervisor_held_fixes_total", {},
      "Degraded kHold fixes served for tags of unreachable shards");
  heartbeats_total_ = &metrics_.counter("vire_supervisor_heartbeats_total", {},
                                        "Successful shard heartbeat acks");
  oplog_dropped_ = &metrics_.counter(
      "vire_supervisor_oplog_dropped_total", {},
      "Op-log entries evicted by the capacity bound (no longer replayable)");
  polls_total_ =
      &metrics_.counter("vire_supervisor_polls_total", {}, "Fleet-wide polls");
  for (ShardState state : kAllStates) {
    state_gauges_[static_cast<std::size_t>(state)] = &metrics_.gauge(
        "vire_supervisor_shard_state",
        obs::label_pair("state", std::string(to_string(state))),
        "Shards currently in each supervision state");
  }
  poll_seconds_ =
      &metrics_.histogram("vire_supervisor_poll_seconds",
                          obs::default_latency_buckets_s(), {},
                          "Fleet poll latency (includes inline revivals)");
  ingest_to_fix_seconds_ = &metrics_.histogram(
      "vire_fleet_ingest_to_fix_seconds", obs::default_latency_buckets_s(), {},
      "End-to-end latency from ingest stamping to the poll merge that "
      "materialized the fix");
  slo_burn_ = &metrics_.counter(
      "vire_fleet_slo_burn_total", {},
      "Polled fixes whose ingest-to-fix latency exceeded the SLO");
  for (const auto& [id, shard] : shards_) {
    const auto label = obs::label_pair("shard", std::to_string(id));
    rtt_seconds_[id] = &metrics_.histogram(
        "vire_fleet_shard_rtt_seconds", obs::default_latency_buckets_s(),
        label, "Supervisor->shard heartbeat wire round-trip time");
    anomaly_dumps_total_[id] = &metrics_.counter(
        "vire_supervisor_shard_anomaly_dumps_total", label,
        "Anomaly auto-dumps reported by shards in heartbeat acks");
    clock_offset_gauges_[id] = &metrics_.gauge(
        "vire_fleet_shard_clock_offset_us", label,
        "Estimated shard trace-clock offset vs the supervisor (µs)");
  }
  refresh_state_metrics();
}

Supervisor::~Supervisor() {
  try {
    stop();
  } catch (...) {
    // Destructor must not throw; children get reaped by init if we lose them.
  }
}

void Supervisor::start() {
  std::lock_guard lock(mutex_);
  if (started_) return;
  std::filesystem::create_directories(config_.root_dir);
  for (auto& [id, shard] : shards_) {
    if (bring_up(shard)) {
      mark_up(shard);
    } else {
      handle_death(shard, DeathCause::kWaitpid);
    }
  }
  started_ = true;
  refresh_state_metrics();
}

void Supervisor::stop() {
  std::lock_guard lock(mutex_);
  for (auto& [id, shard] : shards_) {
    shard.client.reset();
    if (shard.pid > 0) ::kill(shard.pid, SIGTERM);
  }
  for (auto& [id, shard] : shards_) {
    if (shard.pid > 0) {
      const double deadline = clock_->now() + 2.0;
      for (;;) {
        int status = 0;
        const pid_t reaped = ::waitpid(shard.pid, &status, WNOHANG);
        if (reaped == shard.pid || (reaped == -1 && errno == ECHILD)) {
          shard.pid = -1;
          break;
        }
        if (clock_->now() >= deadline) {
          kill_child(shard, SIGKILL);
          break;
        }
        clock_->sleep_for(0.01);
      }
    }
    shard.state = ShardState::kDown;
    // Keep the breaker open forever so a stray poll() after stop() degrades
    // instead of respawning.
    shard.breaker_open_until = std::numeric_limits<double>::infinity();
  }
  started_ = false;
  refresh_state_metrics();
}

void Supervisor::tick() {
  std::lock_guard lock(mutex_);
  const double now = clock_->now();
  for (auto& [id, shard] : shards_) {
    switch (shard.state) {
      case ShardState::kUp: {
        if (shard.pid > 0) {
          int status = 0;
          const pid_t reaped = ::waitpid(shard.pid, &status, WNOHANG);
          if (reaped == shard.pid || (reaped == -1 && errno == ECHILD)) {
            shard.pid = -1;
            handle_death(shard, DeathCause::kWaitpid);
            break;
          }
        }
        if (now - shard.last_heartbeat_ok >= config_.heartbeat_interval_s) {
          heartbeat_shard(shard);
        }
        if (shard.state == ShardState::kUp &&
            clock_->now() - shard.last_heartbeat_ok >
                config_.heartbeat_timeout_s) {
          handle_death(shard, DeathCause::kHeartbeatTimeout);
        }
        break;
      }
      case ShardState::kStarting:
      case ShardState::kBackoff:
        if (now >= shard.next_restart_time) {
          if (bring_up(shard)) {
            mark_up(shard);
          } else {
            handle_death(shard, DeathCause::kWaitpid);
          }
        }
        break;
      case ShardState::kDown:
        if (now >= shard.breaker_open_until) {
          // Half-open probe: one restart attempt; success fully closes the
          // breaker, failure re-opens it for another cooldown.
          if (bring_up(shard)) {
            shard.death_times.clear();
            shard.restart_count = 0;
            mark_up(shard);
          } else {
            shard.breaker_open_until =
                clock_->now() + config_.breaker_cooldown_s;
          }
        }
        break;
    }
  }
  refresh_state_metrics();
}

// ---------------------------------------------------------------------------
// Frontend

void Supervisor::ingest(const std::vector<sim::RssiReading>& readings) {
  std::lock_guard lock(mutex_);
  if (readings.empty()) return;
  std::map<std::uint32_t, std::vector<sim::RssiReading>> parts;
  for (const sim::RssiReading& reading : readings) {
    if (is_reference(reading.tag)) {
      for (const auto& [id, shard] : shards_) parts[id].push_back(reading);
    } else {
      parts[owner_of(reading.tag)].push_back(reading);
    }
  }
  // A shard's sub-batch must fit one kIngestSeq frame — encode_frame refuses
  // anything bigger, and an oversized entry in the op-log would make every
  // future replay (hence every bring_up) fail. Chunk the largest part's way,
  // one sequence per chunk index so acks stay a plain cursor.
  std::size_t chunks = 1;
  for (const auto& [id, sub] : parts) {
    chunks = std::max(
        chunks, (sub.size() + kMaxReadingsPerBatch - 1) / kMaxReadingsPerBatch);
  }
  const std::uint64_t base = ingest_seq_;
  ingest_seq_ += chunks;
  for (auto& [id, sub] : parts) {
    ManagedShard& shard = shards_.at(id);
    for (std::size_t off = 0; off < sub.size(); off += kMaxReadingsPerBatch) {
      const std::size_t len = std::min(kMaxReadingsPerBatch, sub.size() - off);
      OpEntry entry;
      entry.kind = OpEntry::Kind::kBatch;
      entry.sequence = base + 1 + off / kMaxReadingsPerBatch;
      entry.readings.assign(sub.begin() + static_cast<std::ptrdiff_t>(off),
                            sub.begin() + static_cast<std::ptrdiff_t>(off + len));
      const std::uint64_t sequence = entry.sequence;
      const std::vector<sim::RssiReading>& chunk = entry.readings;
      // Trace context is stamped UNCONDITIONALLY (same wire bytes whether
      // fleet tracing is on or off), so enabling tracing cannot perturb the
      // stream the shards see. The ingest stamp feeds the e2e histogram at
      // the poll that materializes this batch's fixes.
      const obs::TraceContext ctx{trace_id_for(sequence), sequence};
      if (shard.pending_batches.size() >= config_.oplog_capacity) {
        shard.pending_batches.erase(shard.pending_batches.begin());
      }
      shard.pending_batches.emplace(sequence, tracer_.now_us());
      if (shard.state != ShardState::kUp || shard.client == nullptr) {
        push_oplog(shard, std::move(entry));
        continue;  // journaled; delivered by replay() at the next revival
      }
      try {
        shard.client->stream_sequenced(sequence, ctx, chunk);
        push_oplog(shard, std::move(entry));
      } catch (const TransportError&) {
        // No inline restart on the ingest path: the op-log covers the batch,
        // and the next poll/tick revives the shard.
        push_oplog(shard, std::move(entry));
        handle_death(shard, DeathCause::kSocket);
      }
    }
  }
}

std::vector<engine::Fix> Supervisor::poll(sim::SimTime now) {
  std::lock_guard lock(mutex_);
  const obs::ScopedTimer timer(poll_seconds_);
  polls_total_->inc();
  const double poll_start_us = tracer_.now_us();
  const std::uint64_t poll_no = polls_total_->value();
  // Stamped on every shard poll like the ingest context: identical bytes
  // with tracing on or off.
  const obs::TraceContext poll_ctx{trace_id_for(~poll_no), poll_no};
  std::vector<engine::Fix> merged;
  for (auto& [id, shard] : shards_) {
    auto fixes = with_shard(
        shard, [now, &poll_ctx](ServiceClient& c) { return c.poll(now, poll_ctx); });
    const double shard_end_us = tracer_.now_us();
    // E2E matching: a fix materialized by this poll covers every batch still
    // in flight for its shard, so its ingest-to-fix latency is measured from
    // the OLDEST pending stamp (worst case). A poll with nothing in flight
    // (no ingest since the last poll) degenerates to the poll duration.
    const double oldest_stamp_us = shard.pending_batches.empty()
                                       ? poll_start_us
                                       : shard.pending_batches.begin()->second;
    if (fixes.has_value()) {
      for (const engine::Fix& fix : *fixes) {
        latest_[fix.tag] = fix;
        observe_ingest_to_fix((shard_end_us - oldest_stamp_us) / 1e6);
      }
      merged.insert(merged.end(), fixes->begin(), fixes->end());
      if (tracer_.enabled()) {
        for (const auto& [sequence, stamp_us] : shard.pending_batches) {
          tracer_.complete(
              "supervisor.batch_e2e", stamp_us, shard_end_us,
              "{\"shard\":" + std::to_string(id) +
                  ",\"sequence\":" + std::to_string(sequence) +
                  ",\"trace_id\":" + std::to_string(trace_id_for(sequence)) +
                  "}");
        }
      }
      shard.pending_batches.clear();
      continue;
    }
    // Shard unreachable (breaker open / revival failed): journal the missed
    // poll so revival replays it, and answer its tags from last-known fixes.
    OpEntry entry;
    entry.kind = OpEntry::Kind::kPoll;
    entry.time = now;
    push_oplog(shard, std::move(entry));
    for (const auto& [tag, info] : tags_) {
      if (owner_of(tag) != id) continue;
      const auto it = latest_.find(tag);
      if (it == latest_.end()) continue;  // never fixed: nothing to hold
      engine::Fix held = it->second;
      held.age_s += now - held.time;
      held.time = now;
      held.valid = false;
      held.quality = engine::FixQuality::kHold;
      latest_[tag] = held;
      merged.push_back(held);
      held_fixes_->inc();
      // Held fixes are polled fixes too: the SLO histogram must record the
      // (still-growing) latency of batches stranded behind the dead shard.
      observe_ingest_to_fix((shard_end_us - oldest_stamp_us) / 1e6);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const engine::Fix& a, const engine::Fix& b) {
              return a.tag < b.tag;
            });
  return merged;
}

std::optional<engine::Fix> Supervisor::latest_fix(sim::TagId tag) const {
  std::lock_guard lock(mutex_);
  const auto it = latest_.find(tag);
  if (it == latest_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> Supervisor::explain_json(sim::TagId tag) {
  std::lock_guard lock(mutex_);
  const auto it = shards_.find(owner_of(tag));
  if (it == shards_.end()) return std::nullopt;
  auto result = with_shard(
      it->second, [tag](ServiceClient& c) { return c.explain(tag); });
  if (!result.has_value()) return std::nullopt;
  return *result;
}

std::string Supervisor::snapshot_prometheus() const {
  // Scraping mutates connection/supervision state; serialized by mutex_.
  auto* self = const_cast<Supervisor*>(this);
  std::lock_guard lock(self->mutex_);
  std::string out = obs::to_prometheus(metrics_);
  for (auto& [id, shard] : self->shards_) {
    if (shard.state != ShardState::kUp || shard.client == nullptr) continue;
    try {
      out += obs::relabel_prometheus(
          shard.client->snapshot_prometheus(),
          obs::label_pair("process", "shard-" + std::to_string(id)));
    } catch (const TransportError&) {
      self->handle_death(shard, DeathCause::kSocket);
    } catch (const std::exception&) {
      // kError response: skip this shard's scrape, keep the rest.
    }
  }
  return out;
}

std::string Supervisor::snapshot_json() const {
  // Fleet-health view: one document a dashboard can poll from the supervisor
  // socket alone — per-shard supervision state plus the supervisor registry.
  std::lock_guard lock(mutex_);
  const double now = clock_->now();
  std::string out = "{\"fleet\":{\"shards\":[";
  bool first = true;
  for (const auto& [id, shard] : shards_) {
    if (!first) out += ',';
    first = false;
    out += "{\"shard\":" + std::to_string(id);
    out += ",\"state\":\"" + std::string(to_string(shard.state)) + "\"";
    out += ",\"pid\":" + std::to_string(shard.pid);
    out += ",\"restart_count\":" + std::to_string(shard.restart_count);
    out += ",\"heartbeat_age_s\":" +
           obs::format_double(shard.last_heartbeat_ok > 0.0
                                  ? now - shard.last_heartbeat_ok
                                  : -1.0);
    out += ",\"last_ack\":" + std::to_string(shard.last_ack);
    out += ",\"oplog\":" + std::to_string(shard.oplog.size());
    out += ",\"pending_batches\":" + std::to_string(shard.pending_batches.size());
    out += ",\"breaker_open\":";
    out += (shard.state == ShardState::kDown &&
            clock_->now() < shard.breaker_open_until)
               ? "true"
               : "false";
    out += ",\"clock_offset_us\":" +
           (shard.offset.valid() ? obs::format_double(shard.offset.offset_us())
                                 : std::string("null"));
    out += ",\"clock_rtt_us\":" +
           (shard.offset.valid() ? obs::format_double(shard.offset.last_rtt_us())
                                 : std::string("null"));
    out += ",\"anomaly_dumps\":" + std::to_string(shard.anomaly_dumps);
    out += '}';
  }
  out += "]},\"metrics\":" + obs::to_json(metrics_) + "}";
  return out;
}

void Supervisor::set_reference_ids(std::vector<sim::TagId> ids) {
  std::lock_guard lock(mutex_);
  reference_ids_ = std::move(ids);
  for (auto& [id, shard] : shards_) {
    if (shard.state != ShardState::kUp || shard.client == nullptr) {
      continue;  // re-applied during bring_up()
    }
    try {
      shard.client->set_reference_ids(reference_ids_);
    } catch (const TransportError&) {
      handle_death(shard, DeathCause::kSocket);
    }
  }
}

void Supervisor::track(sim::TagId tag, std::string name,
                       std::optional<std::uint32_t> zone) {
  std::lock_guard lock(mutex_);
  TrackedTag& info = tags_[tag];
  info.name = std::move(name);
  info.zone = zone;
  ManagedShard& shard = shards_.at(owner_of(tag));
  if (shard.state != ShardState::kUp || shard.client == nullptr) return;
  try {
    shard.client->track(TrackRequest{tag, info.name, info.zone});
  } catch (const TransportError&) {
    handle_death(shard, DeathCause::kSocket);
  }
}

HeartbeatInfo Supervisor::heartbeat() {
  std::lock_guard lock(mutex_);
  HeartbeatInfo info;
  info.wal_next_sequence = ingest_seq_ + 1;
  info.mono_now_us = tracer_.now_us();
  std::uint64_t min_ack = std::numeric_limits<std::uint64_t>::max();
  bool any = false;
  for (const auto& [id, shard] : shards_) {
    any = true;
    min_ack = std::min(min_ack, shard.last_ack);
    info.anomaly_dumps += shard.anomaly_dumps;
  }
  info.last_ack_sequence = any ? min_ack : 0;
  return info;
}

// ---------------------------------------------------------------------------
// Fleet tracing / provenance

std::uint64_t Supervisor::trace_id_for(std::uint64_t sequence) const {
  // Deterministic per (seed, sequence) so retries and the tracing-off path
  // stamp identical wire bytes; |1 keeps the id nonzero (zero = "no trace").
  std::uint64_t state = config_.seed ^ (sequence * 0x9e3779b97f4a7c15ULL) ^
                        0x5649524551ULL;  // "VIREQ"
  return support::splitmix64(state) | 1;
}

void Supervisor::observe_ingest_to_fix(double latency_s) {
  ingest_to_fix_seconds_->observe(latency_s);
  if (config_.ingest_to_fix_slo_s > 0.0 &&
      latency_s > config_.ingest_to_fix_slo_s) {
    slo_burn_->inc();
  }
}

obs::TraceDump Supervisor::trace_dump(std::size_t max_events) {
  std::lock_guard lock(mutex_);
  return tracer_.dump(max_events);
}

std::optional<std::string> Supervisor::provenance_json() {
  std::lock_guard lock(mutex_);
  std::string out = "{\"fleet\":[";
  bool first = true;
  for (auto& [id, shard] : shards_) {
    if (shard.state != ShardState::kUp || shard.client == nullptr) continue;
    try {
      auto prov = shard.client->provenance();
      if (!prov.has_value()) continue;  // shard has no recorded fixes yet
      if (!first) out += ',';
      first = false;
      out += "{\"shard\":" + std::to_string(id) + ",\"provenance\":" + *prov +
             "}";
    } catch (const TransportError&) {
      handle_death(shard, DeathCause::kSocket);
    } catch (const std::exception&) {
      // kError response: skip this shard, keep the rest of the fleet.
    }
  }
  out += "]}";
  if (first) return std::nullopt;  // no shard had anything to report
  return out;
}

std::string Supervisor::fleet_trace_json() {
  std::lock_guard lock(mutex_);
  std::vector<obs::FleetProcess> processes;
  processes.push_back(
      obs::FleetProcess{1, "vire-supervisord", tracer_.dump(0)});
  for (auto& [id, shard] : shards_) {
    if (shard.state != ShardState::kUp || shard.client == nullptr) continue;
    try {
      obs::TraceDump dump = shard.client->trace_dump(
          static_cast<std::uint32_t>(config_.trace_pull_events));
      // Rebase the shard's monotonic clock onto the supervisor's so spans
      // from different processes nest on one timeline.
      if (shard.offset.valid()) obs::rebase(dump, shard.offset.offset_us());
      processes.push_back(obs::FleetProcess{
          id + 2, "vire-shardd-" + std::to_string(id), std::move(dump)});
    } catch (const TransportError&) {
      handle_death(shard, DeathCause::kSocket);
    } catch (const std::exception&) {
      // kError response (e.g. tracing disabled shard-side): skip it.
    }
  }
  return obs::fleet_chrome_json(processes);
}

void Supervisor::write_fleet_trace(const std::filesystem::path& path) {
  const std::string json = fleet_trace_json();
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("vire: cannot open trace file " + path.string());
  }
  out << json;
}

// ---------------------------------------------------------------------------
// Introspection

ShardState Supervisor::shard_state(std::uint32_t shard) const {
  std::lock_guard lock(mutex_);
  return shards_.at(shard).state;
}

pid_t Supervisor::shard_pid(std::uint32_t shard) const {
  std::lock_guard lock(mutex_);
  return shards_.at(shard).pid;
}

std::uint64_t Supervisor::restarts() const noexcept {
  return restarts_total_->value();
}

std::size_t Supervisor::shard_count() const {
  std::lock_guard lock(mutex_);
  return shards_.size();
}

// ---------------------------------------------------------------------------
// Routing

std::uint32_t Supervisor::owner_of(sim::TagId tag) const {
  const auto it = tags_.find(tag);
  return router_.route(tag,
                       it != tags_.end() ? it->second.zone : std::nullopt);
}

bool Supervisor::is_reference(sim::TagId tag) const {
  return std::find(reference_ids_.begin(), reference_ids_.end(), tag) !=
         reference_ids_.end();
}

// ---------------------------------------------------------------------------
// Process lifecycle

void Supervisor::spawn(ManagedShard& shard) {
  std::error_code ec;
  std::filesystem::create_directories(shard.data_dir, ec);
  std::vector<std::string> args = {
      config_.shardd_binary.string(),
      "--socket", shard.socket.string(),
      "--data-dir", shard.data_dir.string(),
      "--shard-id", std::to_string(shard.id),
      "--workers", std::to_string(config_.engine_workers),
      "--window", obs::format_double(config_.middleware_window_s),
      "--checkpoint-every", std::to_string(config_.checkpoint_every_updates),
  };
  args.insert(args.end(), config_.shardd_extra_args.begin(),
              config_.shardd_extra_args.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    shard.pid = -1;
    return;
  }
  if (pid == 0) {
    // Child: only async-signal-safe calls between fork and exec.
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  shard.pid = pid;
  tracer_.instant("supervisor.spawn", "{\"shard\":" + std::to_string(shard.id) +
                                          ",\"pid\":" + std::to_string(pid) +
                                          "}");
}

void Supervisor::kill_child(ManagedShard& shard, int signal) noexcept {
  if (shard.pid <= 0) return;
  ::kill(shard.pid, signal);
  int status = 0;
  ::waitpid(shard.pid, &status, 0);
  shard.pid = -1;
}

bool Supervisor::bring_up(ManagedShard& shard) {
  const obs::TraceSpan span(&tracer_, "supervisor.bring_up",
                            shard_json(shard.id));
  shard.client.reset();
  kill_child(shard, SIGKILL);  // no-op when already reaped
  spawn(shard);
  if (shard.pid < 0) return false;

  const double deadline = clock_->now() + config_.spawn_wait_s;
  for (;;) {
    int status = 0;
    const pid_t reaped = ::waitpid(shard.pid, &status, WNOHANG);
    if (reaped == shard.pid || (reaped == -1 && errno == ECHILD)) {
      shard.pid = -1;  // died before serving (e.g. --abort-on-start)
      return false;
    }
    try {
      ClientConfig cc;
      cc.read_timeout_s = config_.request_timeout_s;
      cc.peer_name = "supervisor";
      shard.client = std::make_unique<ServiceClient>(shard.socket, cc);
      break;
    } catch (const TransportError&) {
      if (clock_->now() >= deadline) {
        kill_child(shard, SIGKILL);
        return false;
      }
      clock_->sleep_for(config_.connect_retry_s);
    }
  }

  try {
    // Registration before recovery: the shard needs its reference grid and
    // tracked tags in place before the WAL replays through normal ingest.
    if (!reference_ids_.empty()) {
      shard.client->set_reference_ids(reference_ids_);
    }
    for (const auto& [tag, info] : tags_) {
      if (owner_of(tag) != shard.id) continue;
      shard.client->track(TrackRequest{tag, info.name, info.zone});
    }
    observe_ack(shard, shard.client->recover_now());
    replay(shard);
  } catch (const std::exception&) {
    shard.client.reset();
    kill_child(shard, SIGKILL);
    return false;
  }
  return true;
}

void Supervisor::replay(ManagedShard& shard) {
  const obs::TraceSpan span(&tracer_, "supervisor.replay",
                            shard_json(shard.id));
  for (auto it = shard.oplog.begin(); it != shard.oplog.end();) {
    if (it->kind == OpEntry::Kind::kBatch) {
      if (it->sequence > shard.last_ack) {
        shard.client->stream_sequenced(it->sequence, it->readings);
        replayed_batches_->inc();
        replayed_readings_->inc(it->readings.size());
      }
      ++it;  // trimmed below once the shard acks it durably
    } else {
      // A poll the shard never saw: execute it now so the shard's engine
      // state advances through the same update sequence as the original
      // timeline (its WAL gate substitutes any updates it already journaled).
      try {
        const std::vector<engine::Fix> fixes = shard.client->poll(it->time);
        for (const engine::Fix& fix : fixes) latest_[fix.tag] = fix;
        replayed_polls_->inc();
      } catch (const TransportError&) {
        throw;  // shard died mid-replay: bring_up fails and reschedules
      } catch (const std::exception&) {
        // kError: the shard is alive but REFUSED this poll (e.g. polled
        // before set_reference_ids). A healthy engine would have refused
        // the original identically, so dropping it cannot diverge the
        // timeline — keeping it would crash-loop bring_up forever.
      }
      it = shard.oplog.erase(it);
    }
  }
  // Heartbeat forces the shard to drain its queue and journal the replayed
  // suffix before we declare it up; the ack lets us trim the op-log.
  const HeartbeatAck ack = shard.client->heartbeat(++shard.heartbeat_seq);
  observe_ack(shard, ack.last_ack_sequence);
  trim_oplog(shard);
}

void Supervisor::observe_ack(ManagedShard& shard, std::uint64_t ack) {
  shard.last_ack = ack;
  if (ack > ingest_seq_) ingest_seq_ = ack;
}

void Supervisor::push_oplog(ManagedShard& shard, OpEntry entry) {
  if (shard.oplog.size() >= config_.oplog_capacity) {
    shard.oplog.pop_front();
    oplog_dropped_->inc();
  }
  shard.oplog.push_back(std::move(entry));
}

void Supervisor::trim_oplog(ManagedShard& shard) {
  const std::uint64_t ack = shard.last_ack;
  shard.oplog.erase(
      std::remove_if(shard.oplog.begin(), shard.oplog.end(),
                     [ack](const OpEntry& e) {
                       return e.kind == OpEntry::Kind::kBatch &&
                              e.sequence <= ack;
                     }),
      shard.oplog.end());
}

void Supervisor::handle_death(ManagedShard& shard, DeathCause cause) {
  deaths_total_[static_cast<std::size_t>(cause)]->inc();
  tracer_.instant("supervisor.shard_death",
                  "{\"shard\":" + std::to_string(shard.id) + ",\"cause\":\"" +
                      std::string(to_string(cause)) + "\"}",
                  'g');
  shard.client.reset();
  kill_child(shard, SIGKILL);  // a wedged-but-alive child must not linger
  const double now = clock_->now();
  shard.death_times.push_back(now);
  while (!shard.death_times.empty() &&
         shard.death_times.front() + config_.breaker_window_s < now) {
    shard.death_times.pop_front();
  }
  if (static_cast<int>(shard.death_times.size()) >=
      config_.breaker_max_deaths) {
    shard.state = ShardState::kDown;
    shard.breaker_open_until = now + config_.breaker_cooldown_s;
    breaker_open_total_->inc();
    tracer_.instant("supervisor.breaker_open", shard_json(shard.id), 'g');
  } else {
    shard.state = ShardState::kBackoff;
    shard.next_restart_time = now + backoff_delay(shard);
    ++shard.restart_count;
  }
  refresh_state_metrics();
}

bool Supervisor::try_revive(ManagedShard& shard) {
  if (shard.state == ShardState::kUp) return true;
  if (shard.state == ShardState::kDown) {
    if (clock_->now() < shard.breaker_open_until) return false;
    if (bring_up(shard)) {
      shard.death_times.clear();
      shard.restart_count = 0;
      mark_up(shard);
      return true;
    }
    shard.breaker_open_until = clock_->now() + config_.breaker_cooldown_s;
    refresh_state_metrics();
    return false;
  }
  // kStarting / kBackoff: wait out a *short* scheduled backoff, then restart.
  // A longer backoff is left to tick() — sleeping it out here would block the
  // event-loop thread (mutex_ held) for every other connection.
  const double wait = shard.next_restart_time - clock_->now();
  if (wait > config_.inline_revival_max_wait_s) return false;
  if (wait > 0.0) clock_->sleep_for(wait);
  if (bring_up(shard)) {
    mark_up(shard);
    return true;
  }
  handle_death(shard, DeathCause::kWaitpid);
  return false;
}

void Supervisor::mark_up(ManagedShard& shard) {
  shard.state = ShardState::kUp;
  const double now = clock_->now();
  shard.up_since = now;
  shard.last_heartbeat_ok = now;
  // A restarted process is a fresh clock epoch and a fresh dump counter:
  // mixing pre-restart offset samples would corrupt the rebase.
  shard.offset.reset();
  shard.anomaly_dumps = 0;
  if (started_) restarts_total_->inc();
  tracer_.instant("supervisor.shard_up", shard_json(shard.id), 'g');
  refresh_state_metrics();
}

double Supervisor::backoff_delay(const ManagedShard& shard) const {
  double delay = config_.restart_backoff_initial_s;
  for (int i = 0; i < shard.restart_count; ++i) {
    delay = std::min(delay * config_.restart_backoff_multiplier,
                     config_.restart_backoff_max_s);
  }
  // Deterministic jitter: same (seed, shard, restart#) -> same delay, so
  // drills and the restart-storm test are reproducible.
  std::uint64_t state = config_.seed ^
                        (static_cast<std::uint64_t>(shard.id) << 32) ^
                        (static_cast<std::uint64_t>(shard.restart_count) +
                         0x9e3779b97f4a7c15ULL);
  const double unit =
      static_cast<double>(support::splitmix64(state) >> 11) * 0x1.0p-53;
  return delay * (1.0 + config_.restart_jitter_frac * (2.0 * unit - 1.0));
}

void Supervisor::heartbeat_shard(ManagedShard& shard) {
  try {
    const double t0_us = tracer_.now_us();
    const HeartbeatAck ack = shard.client->heartbeat(++shard.heartbeat_seq);
    const double t1_us = tracer_.now_us();
    heartbeats_total_->inc();
    rtt_seconds_[shard.id]->observe((t1_us - t0_us) / 1e6);
    if (ack.mono_now_us > 0.0) {
      // NTP-style midpoint: the shard stamped its clock roughly halfway
      // through the round trip.  EWMA smoothing lives in the estimator.
      shard.offset.observe(t0_us, t1_us, ack.mono_now_us);
      clock_offset_gauges_[shard.id]->set(shard.offset.offset_us());
    }
    if (ack.anomaly_dumps > shard.anomaly_dumps) {
      anomaly_dumps_total_[shard.id]->inc(ack.anomaly_dumps -
                                          shard.anomaly_dumps);
    }
    shard.anomaly_dumps = ack.anomaly_dumps;
    observe_ack(shard, ack.last_ack_sequence);
    trim_oplog(shard);
    shard.last_heartbeat_ok = clock_->now();
    if (clock_->now() - shard.up_since >= config_.backoff_reset_after_s) {
      shard.restart_count = 0;  // stable for a while: forgive old crashes
    }
  } catch (const TimeoutError&) {
    handle_death(shard, DeathCause::kHeartbeatTimeout);
  } catch (const TransportError&) {
    handle_death(shard, DeathCause::kSocket);
  } catch (const std::exception&) {
    // kError response: the shard is alive but refused the probe; the
    // staleness detector in tick() escalates if this persists.
  }
}

void Supervisor::refresh_state_metrics() {
  std::size_t counts[4] = {};
  for (const auto& [id, shard] : shards_) {
    counts[static_cast<std::size_t>(shard.state)]++;
  }
  for (std::size_t i = 0; i < 4; ++i) {
    state_gauges_[i]->set(static_cast<double>(counts[i]));
  }
}

template <typename Fn>
auto Supervisor::with_shard(ManagedShard& shard, Fn fn)
    -> std::optional<decltype(fn(std::declval<ServiceClient&>()))> {
  for (int attempt = 0; attempt <= config_.request_retries; ++attempt) {
    if (!try_revive(shard)) return std::nullopt;
    try {
      return fn(*shard.client);
    } catch (const TransportError&) {
      handle_death(shard, DeathCause::kSocket);
    }
    // Non-transport errors (kError responses) propagate to the caller:
    // retrying a request the shard rejected would not change the answer.
  }
  return std::nullopt;
}

}  // namespace vire::service
