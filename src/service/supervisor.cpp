#include "service/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/exporters.h"
#include "persist/wal.h"
#include "support/rng.h"

namespace vire::service {

double SteadyClock::now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SteadyClock::sleep_for(double seconds) {
  if (seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

std::string_view to_string(ShardState state) noexcept {
  switch (state) {
    case ShardState::kStarting: return "starting";
    case ShardState::kUp: return "up";
    case ShardState::kBackoff: return "backoff";
    case ShardState::kDown: return "down";
  }
  return "unknown";
}

std::string_view to_string(DeathCause cause) noexcept {
  switch (cause) {
    case DeathCause::kHeartbeatTimeout: return "heartbeat_timeout";
    case DeathCause::kSocket: return "socket";
    case DeathCause::kWaitpid: return "waitpid";
  }
  return "unknown";
}

namespace {

constexpr ShardState kAllStates[] = {ShardState::kStarting, ShardState::kUp,
                                     ShardState::kBackoff, ShardState::kDown};
constexpr DeathCause kAllCauses[] = {DeathCause::kHeartbeatTimeout,
                                     DeathCause::kSocket, DeathCause::kWaitpid};

std::string shard_json(std::uint32_t id) {
  return "{\"shard\":" + std::to_string(id) + "}";
}

}  // namespace

Supervisor::Supervisor(const env::Deployment& deployment,
                       SupervisorConfig config, Clock* clock)
    : deployment_(deployment),
      config_(std::move(config)),
      clock_(clock != nullptr ? clock : &steady_clock_),
      router_(config_.router) {
  if (config_.shards < 1) {
    throw std::invalid_argument("Supervisor: shards must be >= 1");
  }
  if (config_.shardd_binary.empty()) {
    throw std::invalid_argument("Supervisor: shardd_binary is required");
  }
  if (config_.fleet_tracing) {
    tracer_.set_enabled(true);
    config_.shardd_extra_args.emplace_back("--trace");
  }

  restarts_total_ = &metrics_.counter("vire_supervisor_restarts_total", {},
                                      "Successful shard process restarts");
  for (DeathCause cause : kAllCauses) {
    deaths_total_[static_cast<std::size_t>(cause)] = &metrics_.counter(
        "vire_supervisor_deaths_total",
        obs::label_pair("cause", std::string(to_string(cause))),
        "Shard deaths by detection cause");
  }
  breaker_open_total_ =
      &metrics_.counter("vire_supervisor_breaker_open_total", {},
                        "Crash-loop circuit breaker openings");
  replayed_batches_ =
      &metrics_.counter("vire_supervisor_replayed_batches_total", {},
                        "Un-acked ingest batches re-sent after a restart");
  replayed_readings_ =
      &metrics_.counter("vire_supervisor_replayed_readings_total", {},
                        "Readings re-sent inside replayed batches");
  replayed_polls_ =
      &metrics_.counter("vire_supervisor_replayed_polls_total", {},
                        "Polls missed while a shard was dead, replayed on revival");
  held_fixes_ = &metrics_.counter(
      "vire_supervisor_held_fixes_total", {},
      "Degraded kHold fixes served for tags of unreachable shards");
  heartbeats_total_ = &metrics_.counter("vire_supervisor_heartbeats_total", {},
                                        "Successful shard heartbeat acks");
  oplog_dropped_ = &metrics_.counter(
      "vire_supervisor_oplog_dropped_total", {},
      "Op-log entries evicted by the capacity bound (no longer replayable)");
  oplog_overflow_ = &metrics_.counter(
      "vire_supervisor_oplog_overflow_total", {},
      "Op-log capacity overflows recovered via a journal-backed rebuild");
  adoptions_total_ = &metrics_.counter(
      "vire_supervisor_adoptions_total", {},
      "Orphaned shard processes re-adopted after a supervisor restart");
  membership_changes_add_ = &metrics_.counter(
      "vire_supervisor_membership_changes_total", obs::label_pair("op", "add"),
      "Live membership changes applied");
  membership_changes_remove_ = &metrics_.counter(
      "vire_supervisor_membership_changes_total",
      obs::label_pair("op", "remove"), "Live membership changes applied");
  membership_moved_tags_ = &metrics_.counter(
      "vire_supervisor_membership_moved_tags_total", {},
      "Tags migrated across shard processes by membership changes");
  membership_replayed_readings_ = &metrics_.counter(
      "vire_supervisor_membership_replayed_readings_total", {},
      "WAL-suffix readings re-fed through ingest during cross-process "
      "migration");
  polls_total_ =
      &metrics_.counter("vire_supervisor_polls_total", {}, "Fleet-wide polls");
  for (ShardState state : kAllStates) {
    state_gauges_[static_cast<std::size_t>(state)] = &metrics_.gauge(
        "vire_supervisor_shard_state",
        obs::label_pair("state", std::string(to_string(state))),
        "Shards currently in each supervision state");
  }
  poll_seconds_ =
      &metrics_.histogram("vire_supervisor_poll_seconds",
                          obs::default_latency_buckets_s(), {},
                          "Fleet poll latency (includes inline revivals)");
  ingest_to_fix_seconds_ = &metrics_.histogram(
      "vire_fleet_ingest_to_fix_seconds", obs::default_latency_buckets_s(), {},
      "End-to-end latency from ingest stamping to the poll merge that "
      "materialized the fix");
  slo_burn_ = &metrics_.counter(
      "vire_fleet_slo_burn_total", {},
      "Polled fixes whose ingest-to-fix latency exceeded the SLO");
  // Control journal first, membership second: a journal over an existing
  // root replaces the config_.shards bootstrap with the journaled truth.
  if (config_.control_journal && !config_.root_dir.empty()) {
    ControlJournalConfig jc;
    jc.dir = config_.root_dir / "journal";
    journal_ = std::make_unique<ControlJournal>(std::move(jc));
    journal_->attach_metrics(metrics_);
    if (config_.fleet_tracing) journal_->attach_tracer(&tracer_);
  }
  RecoveredControlState recovered;
  if (journal_ != nullptr) recovered = journal_->recover();
  if (recovered.recovered) {
    restore_from_journal(std::move(recovered));
  } else {
    for (int i = 0; i < config_.shards; ++i) {
      const auto id = static_cast<std::uint32_t>(i);
      router_.add_shard(id);
      shards_.emplace(id, make_shard(id));
      if (journal_ != nullptr) {
        journal_->record_add_shard(id);
        journal_->record_shard_active(id);
      }
    }
    next_shard_id_ = static_cast<std::uint32_t>(config_.shards);
  }
  refresh_state_metrics();
}

void Supervisor::restore_from_journal(RecoveredControlState recovered) {
  recovered_from_journal_ = true;
  ingest_seq_ = recovered.state.ingest_sequence;
  next_shard_id_ = recovered.state.next_shard_id;
  last_poll_time_ = recovered.state.last_poll_time;
  reference_ids_ = std::move(recovered.state.reference_ids);
  for (auto& tag : recovered.state.tags) {
    tags_[tag.tag] = TrackedTag{std::move(tag.name), tag.zone};
  }
  for (auto& fix : recovered.state.latest) {
    latest_[fix.tag] = std::move(fix);
  }
  for (const auto& member : recovered.state.members) {
    ManagedShard shard = make_shard(member.id);
    shard.phase = member.phase;
    shard.last_ack = member.last_ack;
    shard.polls_done = member.polls_done;
    // The un-acked suffix: freshest batch sequences must stay above every
    // journaled one, which restore already guarantees via ingest_sequence.
    auto ops = recovered.oplogs.find(member.id);
    if (ops != recovered.oplogs.end()) {
      for (auto& op : ops->second) {
        OpEntry entry;
        entry.journal_seq = op.journal_sequence;
        if (op.kind == JournaledOp::Kind::kBatch) {
          entry.kind = OpEntry::Kind::kBatch;
          entry.sequence = op.batch_sequence;
          entry.readings = std::move(op.readings);
        } else {
          entry.kind = OpEntry::Kind::kPoll;
          entry.time = op.time;
        }
        shard.oplog.push_back(std::move(entry));
      }
    }
    if (member.breaker_open) {
      // Re-open the breaker where it stood: the shard was crash-looping
      // when the previous supervisor died, so restart with a cooled probe
      // instead of an immediate respawn.
      shard.state = ShardState::kDown;
      shard.breaker_open_until = clock_->now() + config_.breaker_cooldown_s;
    }
    // Only active members sit in the router; joining members never finished
    // their insert, draining members already left it.
    if (member.phase == MemberPhase::kActive) router_.add_shard(member.id);
    shards_.emplace(member.id, std::move(shard));
  }
}

Supervisor::~Supervisor() {
  try {
    stop();
  } catch (...) {
    // Destructor must not throw; children get reaped by init if we lose them.
  }
}

void Supervisor::start() {
  std::lock_guard lock(mutex_);
  if (started_) return;
  std::filesystem::create_directories(config_.root_dir);
  for (auto& [id, shard] : shards_) {
    if (shard.state == ShardState::kDown) {
      continue;  // recovered breaker-open: tick() probes after the cooldown
    }
    if (bring_up(shard)) {
      mark_up(shard);
    } else {
      handle_death(shard, DeathCause::kWaitpid);
    }
  }
  started_ = true;
  // Finish any join/drain a previous incarnation left mid-flight, then
  // collapse the replayed journal suffix into a fresh checkpoint.
  resume_membership();
  if (journal_ != nullptr) write_control_checkpoint();
  refresh_state_metrics();
}

void Supervisor::stop() {
  std::lock_guard lock(mutex_);
  // Clean shutdown contract: every UP shard's WAL catches up and the control
  // journal checkpoints BEFORE teardown, so a SIGTERM restart replays zero
  // ops (only a SIGKILL leaves an un-acked suffix behind).
  if (started_) drain_and_checkpoint();
  for (auto& [id, shard] : shards_) {
    shard.client.reset();
    if (shard.pid > 0) ::kill(shard.pid, SIGTERM);
  }
  for (auto& [id, shard] : shards_) {
    shutdown_child(shard, 2.0);
    shard.state = ShardState::kDown;
    // Keep the breaker open forever so a stray poll() after stop() degrades
    // instead of respawning.
    shard.breaker_open_until = std::numeric_limits<double>::infinity();
  }
  started_ = false;
  refresh_state_metrics();
}

void Supervisor::tick() {
  std::lock_guard lock(mutex_);
  const double now = clock_->now();
  for (auto& [id, shard] : shards_) {
    switch (shard.state) {
      case ShardState::kUp: {
        if (shard.pid > 0 && process_dead(shard)) {
          handle_death(shard, DeathCause::kWaitpid);
          break;
        }
        if (now - shard.last_heartbeat_ok >= config_.heartbeat_interval_s) {
          heartbeat_shard(shard);
        }
        if (shard.state == ShardState::kUp &&
            clock_->now() - shard.last_heartbeat_ok >
                config_.heartbeat_timeout_s) {
          handle_death(shard, DeathCause::kHeartbeatTimeout);
        }
        break;
      }
      case ShardState::kStarting:
      case ShardState::kBackoff:
        if (now >= shard.next_restart_time) {
          if (bring_up(shard)) {
            mark_up(shard);
          } else {
            handle_death(shard, DeathCause::kWaitpid);
          }
        }
        break;
      case ShardState::kDown:
        if (now >= shard.breaker_open_until) {
          // Half-open probe: one restart attempt; success fully closes the
          // breaker, failure re-opens it for another cooldown.
          if (bring_up(shard)) {
            close_breaker(shard);
          } else {
            shard.breaker_open_until =
                clock_->now() + config_.breaker_cooldown_s;
          }
        }
        break;
    }
  }
  resume_membership();
  maybe_checkpoint();
  refresh_state_metrics();
}

// ---------------------------------------------------------------------------
// Frontend

void Supervisor::ingest(const std::vector<sim::RssiReading>& readings) {
  std::lock_guard lock(mutex_);
  if (readings.empty()) return;
  std::map<std::uint32_t, std::vector<sim::RssiReading>> parts;
  for (const sim::RssiReading& reading : readings) {
    if (is_reference(reading.tag)) {
      // Broadcast to active members only: a joining shard gets the reference
      // history with its seed, a draining one is already leaving the fleet.
      for (const auto& [id, shard] : shards_) {
        if (shard.phase == MemberPhase::kActive) parts[id].push_back(reading);
      }
    } else {
      parts[owner_of(reading.tag)].push_back(reading);
    }
  }
  // A shard's sub-batch must fit one kIngestSeq frame — encode_frame refuses
  // anything bigger, and an oversized entry in the op-log would make every
  // future replay (hence every bring_up) fail. Chunk the largest part's way,
  // one sequence per chunk index so acks stay a plain cursor.
  std::size_t chunks = 1;
  for (const auto& [id, sub] : parts) {
    chunks = std::max(
        chunks, (sub.size() + kMaxReadingsPerBatch - 1) / kMaxReadingsPerBatch);
  }
  const std::uint64_t base = ingest_seq_;
  ingest_seq_ += chunks;
  for (auto& [id, sub] : parts) {
    ManagedShard& shard = shards_.at(id);
    for (std::size_t off = 0; off < sub.size(); off += kMaxReadingsPerBatch) {
      const std::size_t len = std::min(kMaxReadingsPerBatch, sub.size() - off);
      OpEntry entry;
      entry.kind = OpEntry::Kind::kBatch;
      entry.sequence = base + 1 + off / kMaxReadingsPerBatch;
      entry.readings.assign(sub.begin() + static_cast<std::ptrdiff_t>(off),
                            sub.begin() + static_cast<std::ptrdiff_t>(off + len));
      if (journal_ != nullptr) {
        // Write-ahead: the batch is journaled before any delivery attempt,
        // so a supervisor killed mid-ingest still replays it on restart.
        entry.journal_seq =
            journal_->record_batch(id, entry.sequence, entry.readings);
      }
      const std::uint64_t sequence = entry.sequence;
      const std::vector<sim::RssiReading>& chunk = entry.readings;
      // Trace context is stamped UNCONDITIONALLY (same wire bytes whether
      // fleet tracing is on or off), so enabling tracing cannot perturb the
      // stream the shards see. The ingest stamp feeds the e2e histogram at
      // the poll that materializes this batch's fixes.
      const obs::TraceContext ctx{trace_id_for(sequence), sequence};
      if (shard.pending_batches.size() >= config_.oplog_capacity) {
        shard.pending_batches.erase(shard.pending_batches.begin());
      }
      shard.pending_batches.emplace(sequence, tracer_.now_us());
      if (shard.state != ShardState::kUp || shard.client == nullptr) {
        push_oplog(shard, std::move(entry));
        continue;  // journaled; delivered by replay() at the next revival
      }
      try {
        shard.client->stream_sequenced(sequence, ctx, chunk);
        push_oplog(shard, std::move(entry));
      } catch (const TransportError&) {
        // No inline restart on the ingest path: the op-log covers the batch,
        // and the next poll/tick revives the shard.
        push_oplog(shard, std::move(entry));
        handle_death(shard, DeathCause::kSocket);
      }
    }
  }
  maybe_checkpoint();
}

std::vector<engine::Fix> Supervisor::poll(sim::SimTime now) {
  std::lock_guard lock(mutex_);
  const obs::ScopedTimer timer(poll_seconds_);
  polls_total_->inc();
  const double poll_start_us = tracer_.now_us();
  const std::uint64_t poll_no = polls_total_->value();
  // Stamped on every shard poll like the ingest context: identical bytes
  // with tracing on or off.
  const obs::TraceContext poll_ctx{trace_id_for(~poll_no), poll_no};
  if (now > last_poll_time_) last_poll_time_ = now;  // migration horizon
  std::vector<engine::Fix> merged;
  for (auto& [id, shard] : shards_) {
    if (shard.phase != MemberPhase::kActive) continue;  // owns no tags
    auto fixes = with_shard(
        shard, [now, &poll_ctx](ServiceClient& c) { return c.poll(now, poll_ctx); });
    const double shard_end_us = tracer_.now_us();
    // E2E matching: a fix materialized by this poll covers every batch still
    // in flight for its shard, so its ingest-to-fix latency is measured from
    // the OLDEST pending stamp (worst case). A poll with nothing in flight
    // (no ingest since the last poll) degenerates to the poll duration.
    const double oldest_stamp_us = shard.pending_batches.empty()
                                       ? poll_start_us
                                       : shard.pending_batches.begin()->second;
    if (fixes.has_value()) {
      for (const engine::Fix& fix : *fixes) {
        latest_[fix.tag] = fix;
        observe_ingest_to_fix((shard_end_us - oldest_stamp_us) / 1e6);
      }
      merged.insert(merged.end(), fixes->begin(), fixes->end());
      if (tracer_.enabled()) {
        for (const auto& [sequence, stamp_us] : shard.pending_batches) {
          tracer_.complete(
              "supervisor.batch_e2e", stamp_us, shard_end_us,
              "{\"shard\":" + std::to_string(id) +
                  ",\"sequence\":" + std::to_string(sequence) +
                  ",\"trace_id\":" + std::to_string(trace_id_for(sequence)) +
                  "}");
        }
      }
      shard.pending_batches.clear();
      continue;
    }
    // Shard unreachable (breaker open / revival failed): journal the missed
    // poll so revival replays it, and answer its tags from last-known fixes.
    OpEntry entry;
    entry.kind = OpEntry::Kind::kPoll;
    entry.time = now;
    if (journal_ != nullptr) entry.journal_seq = journal_->record_poll(id, now);
    push_oplog(shard, std::move(entry));
    for (const auto& [tag, info] : tags_) {
      if (owner_of(tag) != id) continue;
      const auto it = latest_.find(tag);
      if (it == latest_.end()) continue;  // never fixed: nothing to hold
      engine::Fix held = it->second;
      held.age_s += now - held.time;
      held.time = now;
      held.valid = false;
      held.quality = engine::FixQuality::kHold;
      latest_[tag] = held;
      merged.push_back(held);
      held_fixes_->inc();
      // Held fixes are polled fixes too: the SLO histogram must record the
      // (still-growing) latency of batches stranded behind the dead shard.
      observe_ingest_to_fix((shard_end_us - oldest_stamp_us) / 1e6);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const engine::Fix& a, const engine::Fix& b) {
              return a.tag < b.tag;
            });
  maybe_checkpoint();
  return merged;
}

std::optional<engine::Fix> Supervisor::latest_fix(sim::TagId tag) const {
  std::lock_guard lock(mutex_);
  const auto it = latest_.find(tag);
  if (it == latest_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> Supervisor::explain_json(sim::TagId tag) {
  std::lock_guard lock(mutex_);
  const auto it = shards_.find(owner_of(tag));
  if (it == shards_.end()) return std::nullopt;
  auto result = with_shard(
      it->second, [tag](ServiceClient& c) { return c.explain(tag); });
  if (!result.has_value()) return std::nullopt;
  return *result;
}

std::string Supervisor::snapshot_prometheus() const {
  // Scraping mutates connection/supervision state; serialized by mutex_.
  auto* self = const_cast<Supervisor*>(this);
  std::lock_guard lock(self->mutex_);
  std::string out = obs::to_prometheus(metrics_);
  for (auto& [id, shard] : self->shards_) {
    if (shard.state != ShardState::kUp || shard.client == nullptr) continue;
    try {
      out += obs::relabel_prometheus(
          shard.client->snapshot_prometheus(),
          obs::label_pair("process", "shard-" + std::to_string(id)));
    } catch (const TransportError&) {
      self->handle_death(shard, DeathCause::kSocket);
    } catch (const std::exception&) {
      // kError response: skip this shard's scrape, keep the rest.
    }
  }
  return out;
}

std::string Supervisor::snapshot_json() const {
  // Fleet-health view: one document a dashboard can poll from the supervisor
  // socket alone — per-shard supervision state plus the supervisor registry.
  std::lock_guard lock(mutex_);
  const double now = clock_->now();
  std::string out = "{\"fleet\":{\"shards\":[";
  bool first = true;
  for (const auto& [id, shard] : shards_) {
    if (!first) out += ',';
    first = false;
    out += "{\"shard\":" + std::to_string(id);
    out += ",\"state\":\"" + std::string(to_string(shard.state)) + "\"";
    out += ",\"phase\":\"" + std::string(to_string(shard.phase)) + "\"";
    out += ",\"adopted\":";
    out += shard.adopted ? "true" : "false";
    out += ",\"pid\":" + std::to_string(shard.pid);
    out += ",\"restart_count\":" + std::to_string(shard.restart_count);
    out += ",\"heartbeat_age_s\":" +
           obs::format_double(shard.last_heartbeat_ok > 0.0
                                  ? now - shard.last_heartbeat_ok
                                  : -1.0);
    out += ",\"last_ack\":" + std::to_string(shard.last_ack);
    out += ",\"oplog\":" + std::to_string(shard.oplog.size());
    out += ",\"pending_batches\":" + std::to_string(shard.pending_batches.size());
    out += ",\"breaker_open\":";
    out += (shard.state == ShardState::kDown &&
            clock_->now() < shard.breaker_open_until)
               ? "true"
               : "false";
    out += ",\"clock_offset_us\":" +
           (shard.offset.valid() ? obs::format_double(shard.offset.offset_us())
                                 : std::string("null"));
    out += ",\"clock_rtt_us\":" +
           (shard.offset.valid() ? obs::format_double(shard.offset.last_rtt_us())
                                 : std::string("null"));
    out += ",\"anomaly_dumps\":" + std::to_string(shard.anomaly_dumps);
    out += '}';
  }
  out += "],\"journal\":{\"enabled\":";
  out += journal_ != nullptr ? "true" : "false";
  if (journal_ != nullptr) {
    out += ",\"next_sequence\":" + std::to_string(journal_->next_sequence());
    out += ",\"since_checkpoint\":" +
           std::to_string(journal_->appends_since_checkpoint());
  }
  out += "},\"recovered\":";
  out += recovered_from_journal_ ? "true" : "false";
  out += "},\"metrics\":" + obs::to_json(metrics_) + "}";
  return out;
}

void Supervisor::set_reference_ids(std::vector<sim::TagId> ids) {
  std::lock_guard lock(mutex_);
  reference_ids_ = std::move(ids);
  if (journal_ != nullptr) journal_->record_set_reference(reference_ids_);
  for (auto& [id, shard] : shards_) {
    if (shard.state != ShardState::kUp || shard.client == nullptr) {
      continue;  // re-applied during bring_up()
    }
    try {
      shard.client->set_reference_ids(reference_ids_);
    } catch (const TransportError&) {
      handle_death(shard, DeathCause::kSocket);
    }
  }
}

void Supervisor::track(sim::TagId tag, std::string name,
                       std::optional<std::uint32_t> zone) {
  std::lock_guard lock(mutex_);
  TrackedTag& info = tags_[tag];
  info.name = std::move(name);
  info.zone = zone;
  if (journal_ != nullptr) journal_->record_track(tag, info.name, info.zone);
  ManagedShard& shard = shards_.at(owner_of(tag));
  if (shard.state != ShardState::kUp || shard.client == nullptr) return;
  try {
    shard.client->track(TrackRequest{tag, info.name, info.zone});
  } catch (const TransportError&) {
    handle_death(shard, DeathCause::kSocket);
  }
}

HeartbeatInfo Supervisor::heartbeat() {
  std::lock_guard lock(mutex_);
  HeartbeatInfo info;
  info.wal_next_sequence = ingest_seq_ + 1;
  info.mono_now_us = tracer_.now_us();
  std::uint64_t min_ack = std::numeric_limits<std::uint64_t>::max();
  bool any = false;
  for (const auto& [id, shard] : shards_) {
    // Joining members have acked nothing yet and draining members are on
    // their way out: neither may drag the fleet durability cursor to zero.
    if (shard.phase != MemberPhase::kActive) continue;
    any = true;
    min_ack = std::min(min_ack, shard.last_ack);
    info.anomaly_dumps += shard.anomaly_dumps;
  }
  info.last_ack_sequence = any ? min_ack : 0;
  return info;
}

// ---------------------------------------------------------------------------
// Fleet tracing / provenance

std::uint64_t Supervisor::trace_id_for(std::uint64_t sequence) const {
  // Deterministic per (seed, sequence) so retries and the tracing-off path
  // stamp identical wire bytes; |1 keeps the id nonzero (zero = "no trace").
  std::uint64_t state = config_.seed ^ (sequence * 0x9e3779b97f4a7c15ULL) ^
                        0x5649524551ULL;  // "VIREQ"
  return support::splitmix64(state) | 1;
}

void Supervisor::observe_ingest_to_fix(double latency_s) {
  ingest_to_fix_seconds_->observe(latency_s);
  if (config_.ingest_to_fix_slo_s > 0.0 &&
      latency_s > config_.ingest_to_fix_slo_s) {
    slo_burn_->inc();
  }
}

obs::TraceDump Supervisor::trace_dump(std::size_t max_events) {
  std::lock_guard lock(mutex_);
  return tracer_.dump(max_events);
}

std::optional<std::string> Supervisor::provenance_json() {
  std::lock_guard lock(mutex_);
  std::string out = "{\"fleet\":[";
  bool first = true;
  for (auto& [id, shard] : shards_) {
    if (shard.state != ShardState::kUp || shard.client == nullptr) continue;
    try {
      auto prov = shard.client->provenance();
      if (!prov.has_value()) continue;  // shard has no recorded fixes yet
      if (!first) out += ',';
      first = false;
      out += "{\"shard\":" + std::to_string(id) + ",\"provenance\":" + *prov +
             "}";
    } catch (const TransportError&) {
      handle_death(shard, DeathCause::kSocket);
    } catch (const std::exception&) {
      // kError response: skip this shard, keep the rest of the fleet.
    }
  }
  out += "]}";
  if (first) return std::nullopt;  // no shard had anything to report
  return out;
}

std::string Supervisor::fleet_trace_json() {
  std::lock_guard lock(mutex_);
  std::vector<obs::FleetProcess> processes;
  processes.push_back(
      obs::FleetProcess{1, "vire-supervisord", tracer_.dump(0)});
  for (auto& [id, shard] : shards_) {
    if (shard.state != ShardState::kUp || shard.client == nullptr) continue;
    try {
      obs::TraceDump dump = shard.client->trace_dump(
          static_cast<std::uint32_t>(config_.trace_pull_events));
      // Rebase the shard's monotonic clock onto the supervisor's so spans
      // from different processes nest on one timeline.
      if (shard.offset.valid()) obs::rebase(dump, shard.offset.offset_us());
      processes.push_back(obs::FleetProcess{
          id + 2, "vire-shardd-" + std::to_string(id), std::move(dump)});
    } catch (const TransportError&) {
      handle_death(shard, DeathCause::kSocket);
    } catch (const std::exception&) {
      // kError response (e.g. tracing disabled shard-side): skip it.
    }
  }
  return obs::fleet_chrome_json(processes);
}

void Supervisor::write_fleet_trace(const std::filesystem::path& path) {
  const std::string json = fleet_trace_json();
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("vire: cannot open trace file " + path.string());
  }
  out << json;
}

// ---------------------------------------------------------------------------
// Introspection

ShardState Supervisor::shard_state(std::uint32_t shard) const {
  std::lock_guard lock(mutex_);
  return shards_.at(shard).state;
}

pid_t Supervisor::shard_pid(std::uint32_t shard) const {
  std::lock_guard lock(mutex_);
  return shards_.at(shard).pid;
}

std::uint64_t Supervisor::restarts() const noexcept {
  return restarts_total_->value();
}

std::size_t Supervisor::shard_count() const {
  std::lock_guard lock(mutex_);
  return shards_.size();
}

MemberPhase Supervisor::member_phase(std::uint32_t shard) const {
  std::lock_guard lock(mutex_);
  return shards_.at(shard).phase;
}

bool Supervisor::shard_adopted(std::uint32_t shard) const {
  std::lock_guard lock(mutex_);
  return shards_.at(shard).adopted;
}

void Supervisor::checkpoint_now() {
  std::lock_guard lock(mutex_);
  write_control_checkpoint();
}

// ---------------------------------------------------------------------------
// Routing

std::uint32_t Supervisor::owner_of(sim::TagId tag) const {
  const auto it = tags_.find(tag);
  return router_.route(tag,
                       it != tags_.end() ? it->second.zone : std::nullopt);
}

bool Supervisor::is_reference(sim::TagId tag) const {
  return std::find(reference_ids_.begin(), reference_ids_.end(), tag) !=
         reference_ids_.end();
}

// ---------------------------------------------------------------------------
// Process lifecycle

Supervisor::ManagedShard Supervisor::make_shard(std::uint32_t id) {
  ManagedShard shard;
  shard.id = id;
  shard.socket = config_.root_dir / ("shard-" + std::to_string(id) + ".sock");
  shard.data_dir = config_.root_dir / ("shard-" + std::to_string(id));
  ensure_shard_metrics(id);
  return shard;
}

void Supervisor::ensure_shard_metrics(std::uint32_t id) {
  // Lazy: shards can now join at runtime, so per-shard families are created
  // on first sight of an id instead of once in the constructor.
  if (rtt_seconds_.count(id) != 0) return;
  const auto label = obs::label_pair("shard", std::to_string(id));
  rtt_seconds_[id] = &metrics_.histogram(
      "vire_fleet_shard_rtt_seconds", obs::default_latency_buckets_s(), label,
      "Supervisor->shard heartbeat wire round-trip time");
  anomaly_dumps_total_[id] = &metrics_.counter(
      "vire_supervisor_shard_anomaly_dumps_total", label,
      "Anomaly auto-dumps reported by shards in heartbeat acks");
  clock_offset_gauges_[id] = &metrics_.gauge(
      "vire_fleet_shard_clock_offset_us", label,
      "Estimated shard trace-clock offset vs the supervisor (µs)");
}

void Supervisor::spawn(ManagedShard& shard) {
  std::error_code ec;
  std::filesystem::create_directories(shard.data_dir, ec);
  std::vector<std::string> args = {
      config_.shardd_binary.string(),
      "--socket", shard.socket.string(),
      "--data-dir", shard.data_dir.string(),
      "--shard-id", std::to_string(shard.id),
      "--workers", std::to_string(config_.engine_workers),
      "--window", obs::format_double(config_.middleware_window_s),
      "--checkpoint-every", std::to_string(config_.checkpoint_every_updates),
  };
  args.insert(args.end(), config_.shardd_extra_args.begin(),
              config_.shardd_extra_args.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    shard.pid = -1;
    return;
  }
  if (pid == 0) {
    // Child: only async-signal-safe calls between fork and exec.
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  shard.pid = pid;
  shard.adopted = false;
  // Pidfile for the adoption handshake: a future supervisor incarnation
  // finds the (by then orphaned) process through it. Plain ofstream is fine
  // — a torn pidfile just fails adoption and falls back to respawn.
  std::ofstream pidfile(shard.data_dir / "shardd.pid", std::ios::trunc);
  pidfile << pid << '\n';
  tracer_.instant("supervisor.spawn", "{\"shard\":" + std::to_string(shard.id) +
                                          ",\"pid\":" + std::to_string(pid) +
                                          "}");
}

bool Supervisor::try_adopt(ManagedShard& shard) {
  // A SIGKILLed supervisor's shardd children were reparented to init and
  // kept serving. We cannot waitpid a non-child, so liveness is kill(pid,0)
  // (ESRCH = gone) and the socket handshake proves it is actually serving.
  long pid = -1;
  {
    std::ifstream pidfile(shard.data_dir / "shardd.pid");
    if (!(pidfile >> pid) || pid <= 0) return false;
  }
  if (pid == static_cast<long>(::getpid())) return false;  // corrupt pidfile
  if (::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH) return false;
  try {
    ClientConfig cc;
    cc.read_timeout_s = config_.request_timeout_s;
    cc.peer_name = "supervisor";
    shard.client = std::make_unique<ServiceClient>(shard.socket, cc);
  } catch (const TransportError&) {
    // Alive but not serving (wedged orphan): clear it so spawn() owns the
    // socket path again.
    ::kill(static_cast<pid_t>(pid), SIGKILL);
    return false;
  }
  shard.pid = static_cast<pid_t>(pid);
  shard.adopted = true;
  adoptions_total_->inc();
  tracer_.instant("supervisor.adopt", "{\"shard\":" + std::to_string(shard.id) +
                                          ",\"pid\":" + std::to_string(pid) +
                                          "}");
  return true;
}

void Supervisor::kill_child(ManagedShard& shard, int signal) noexcept {
  if (shard.pid <= 0) return;
  ::kill(shard.pid, signal);
  if (shard.adopted) {
    // Not our child: init reaps it; poll for ESRCH instead of waitpid.
    const double deadline = clock_->now() + 2.0;
    while (::kill(shard.pid, 0) == 0 && clock_->now() < deadline) {
      clock_->sleep_for(0.005);
    }
  } else {
    int status = 0;
    ::waitpid(shard.pid, &status, 0);
  }
  shard.pid = -1;
  shard.adopted = false;
}

void Supervisor::shutdown_child(ManagedShard& shard, double grace_s) noexcept {
  if (shard.pid <= 0) return;
  const double deadline = clock_->now() + grace_s;
  for (;;) {
    if (process_dead(shard)) {
      shard.pid = -1;
      shard.adopted = false;
      return;
    }
    if (clock_->now() >= deadline) {
      kill_child(shard, SIGKILL);
      return;
    }
    clock_->sleep_for(0.01);
  }
}

bool Supervisor::process_dead(ManagedShard& shard) noexcept {
  if (shard.pid <= 0) return true;
  if (shard.adopted) {
    return ::kill(shard.pid, 0) != 0 && errno == ESRCH;
  }
  int status = 0;
  const pid_t reaped = ::waitpid(shard.pid, &status, WNOHANG);
  return reaped == shard.pid || (reaped == -1 && errno == ECHILD);
}

bool Supervisor::bring_up(ManagedShard& shard) {
  const obs::TraceSpan span(&tracer_, "supervisor.bring_up",
                            shard_json(shard.id));
  shard.client.reset();
  // Adoption first: when we hold no process (typically the first bring-up
  // after a supervisor restart) a previous incarnation's shardd may still be
  // running over this shard's data. Re-attaching keeps its warm engine state
  // AND its WAL exactly where the old supervisor left them.
  if (shard.pid <= 0 && try_adopt(shard)) {
    // Connected to a live orphan; registration + replay below.
  } else {
    kill_child(shard, SIGKILL);  // no-op when already reaped
    spawn(shard);
    if (shard.pid < 0) return false;

    const double deadline = clock_->now() + config_.spawn_wait_s;
    for (;;) {
      int status = 0;
      const pid_t reaped = ::waitpid(shard.pid, &status, WNOHANG);
      if (reaped == shard.pid || (reaped == -1 && errno == ECHILD)) {
        shard.pid = -1;  // died before serving (e.g. --abort-on-start)
        return false;
      }
      try {
        ClientConfig cc;
        cc.read_timeout_s = config_.request_timeout_s;
        cc.peer_name = "supervisor";
        shard.client = std::make_unique<ServiceClient>(shard.socket, cc);
        break;
      } catch (const TransportError&) {
        if (clock_->now() >= deadline) {
          kill_child(shard, SIGKILL);
          return false;
        }
        clock_->sleep_for(config_.connect_retry_s);
      }
    }
  }

  try {
    // Registration before recovery: the shard needs its reference grid and
    // tracked tags in place before the WAL replays through normal ingest.
    if (!reference_ids_.empty()) {
      shard.client->set_reference_ids(reference_ids_);
    }
    for (const auto& [tag, info] : tags_) {
      if (owner_of(tag) != shard.id) continue;
      shard.client->track(TrackRequest{tag, info.name, info.zone});
    }
    observe_ack(shard, shard.client->recover_now());
    replay(shard);
  } catch (const std::exception&) {
    shard.client.reset();
    kill_child(shard, SIGKILL);
    return false;
  }
  return true;
}

void Supervisor::replay(ManagedShard& shard) {
  const obs::TraceSpan span(&tracer_, "supervisor.replay",
                            shard_json(shard.id));
  if (shard.oplog_overflow && journal_ != nullptr) {
    // Capacity overflow evicted journal-backed entries (push_oplog): rebuild
    // the full un-acked suffix from the journal instead of replaying a
    // truncated one. overflow_floor kept the needed records from pruning.
    std::deque<OpEntry> rebuilt;
    for (auto& op : journal_->collect_oplog(shard.id, shard.last_ack,
                                            shard.polls_done)) {
      OpEntry entry;
      entry.journal_seq = op.journal_sequence;
      if (op.kind == JournaledOp::Kind::kBatch) {
        entry.kind = OpEntry::Kind::kBatch;
        entry.sequence = op.batch_sequence;
        entry.readings = std::move(op.readings);
      } else {
        entry.kind = OpEntry::Kind::kPoll;
        entry.time = op.time;
      }
      rebuilt.push_back(std::move(entry));
    }
    shard.oplog = std::move(rebuilt);
    shard.oplog_overflow = false;
    shard.overflow_floor = 0;
  }
  std::uint64_t polls_done = shard.polls_done;
  for (auto it = shard.oplog.begin(); it != shard.oplog.end();) {
    if (it->kind == OpEntry::Kind::kBatch) {
      if (it->sequence > shard.last_ack) {
        shard.client->stream_sequenced(it->sequence, it->readings);
        replayed_batches_->inc();
        replayed_readings_->inc(it->readings.size());
      }
      ++it;  // trimmed below once the shard acks it durably
    } else {
      // A poll the shard never saw: execute it now so the shard's engine
      // state advances through the same update sequence as the original
      // timeline (its WAL gate substitutes any updates it already journaled).
      try {
        const std::vector<engine::Fix> fixes = shard.client->poll(it->time);
        for (const engine::Fix& fix : fixes) latest_[fix.tag] = fix;
        replayed_polls_->inc();
      } catch (const TransportError&) {
        throw;  // shard died mid-replay: bring_up fails and reschedules
      } catch (const std::exception&) {
        // kError: the shard is alive but REFUSED this poll (e.g. polled
        // before set_reference_ids). A healthy engine would have refused
        // the original identically, so dropping it cannot diverge the
        // timeline — keeping it would crash-loop bring_up forever.
      }
      if (it->journal_seq > polls_done) polls_done = it->journal_seq;
      it = shard.oplog.erase(it);
    }
  }
  if (polls_done > shard.polls_done) {
    // Journaled polls are NOT idempotent the way batches are (no shard-side
    // sequence gate): mark them executed so a later recovery replays only
    // polls this incarnation never delivered.
    shard.polls_done = polls_done;
    if (journal_ != nullptr) {
      journal_->record_polls_done(shard.id, polls_done);
    }
  }
  // Heartbeat forces the shard to drain its queue and journal the replayed
  // suffix before we declare it up; the ack lets us trim the op-log.
  const HeartbeatAck ack = shard.client->heartbeat(++shard.heartbeat_seq);
  observe_ack(shard, ack.last_ack_sequence);
  trim_oplog(shard);
}

void Supervisor::observe_ack(ManagedShard& shard, std::uint64_t ack) {
  shard.last_ack = ack;
  if (ack > ingest_seq_) ingest_seq_ = ack;
}

void Supervisor::push_oplog(ManagedShard& shard, OpEntry entry) {
  if (shard.oplog.size() >= config_.oplog_capacity) {
    OpEntry& victim = shard.oplog.front();
    if (journal_ != nullptr && victim.journal_seq != 0) {
      // The evicted entry survives in the control journal: mark the shard
      // for a journal-backed op-log rebuild at its next bring-up (replay())
      // instead of silently losing replayable history. overflow_floor pins
      // the checkpoint floor so the suffix is not pruned meanwhile.
      if (shard.overflow_floor == 0 ||
          victim.journal_seq < shard.overflow_floor) {
        shard.overflow_floor = victim.journal_seq;
      }
      if (!shard.oplog_overflow) {
        shard.oplog_overflow = true;
        oplog_overflow_->inc();
        tracer_.instant("supervisor.oplog_overflow", shard_json(shard.id),
                        'g');
      }
    } else {
      // No journal to rebuild from: this entry really is gone.
      oplog_dropped_->inc();
    }
    shard.oplog.pop_front();
  }
  shard.oplog.push_back(std::move(entry));
}

void Supervisor::trim_oplog(ManagedShard& shard) {
  const std::uint64_t ack = shard.last_ack;
  shard.oplog.erase(
      std::remove_if(shard.oplog.begin(), shard.oplog.end(),
                     [ack](const OpEntry& e) {
                       return e.kind == OpEntry::Kind::kBatch &&
                              e.sequence <= ack;
                     }),
      shard.oplog.end());
}

void Supervisor::handle_death(ManagedShard& shard, DeathCause cause) {
  deaths_total_[static_cast<std::size_t>(cause)]->inc();
  tracer_.instant("supervisor.shard_death",
                  "{\"shard\":" + std::to_string(shard.id) + ",\"cause\":\"" +
                      std::string(to_string(cause)) + "\"}",
                  'g');
  shard.client.reset();
  kill_child(shard, SIGKILL);  // a wedged-but-alive child must not linger
  const double now = clock_->now();
  shard.death_times.push_back(now);
  while (!shard.death_times.empty() &&
         shard.death_times.front() + config_.breaker_window_s < now) {
    shard.death_times.pop_front();
  }
  if (static_cast<int>(shard.death_times.size()) >=
      config_.breaker_max_deaths) {
    shard.state = ShardState::kDown;
    shard.breaker_open_until = now + config_.breaker_cooldown_s;
    breaker_open_total_->inc();
    if (journal_ != nullptr) journal_->record_breaker(shard.id, true);
    tracer_.instant("supervisor.breaker_open", shard_json(shard.id), 'g');
  } else {
    shard.state = ShardState::kBackoff;
    shard.next_restart_time = now + backoff_delay(shard);
    ++shard.restart_count;
  }
  refresh_state_metrics();
}

bool Supervisor::try_revive(ManagedShard& shard) {
  if (shard.state == ShardState::kUp) return true;
  if (shard.state == ShardState::kDown) {
    if (clock_->now() < shard.breaker_open_until) return false;
    if (bring_up(shard)) {
      close_breaker(shard);
      return true;
    }
    shard.breaker_open_until = clock_->now() + config_.breaker_cooldown_s;
    refresh_state_metrics();
    return false;
  }
  // kStarting / kBackoff: wait out a *short* scheduled backoff, then restart.
  // A longer backoff is left to tick() — sleeping it out here would block the
  // event-loop thread (mutex_ held) for every other connection.
  const double wait = shard.next_restart_time - clock_->now();
  if (wait > config_.inline_revival_max_wait_s) return false;
  if (wait > 0.0) clock_->sleep_for(wait);
  if (bring_up(shard)) {
    mark_up(shard);
    return true;
  }
  handle_death(shard, DeathCause::kWaitpid);
  return false;
}

void Supervisor::close_breaker(ManagedShard& shard) {
  shard.death_times.clear();
  shard.restart_count = 0;
  if (journal_ != nullptr) journal_->record_breaker(shard.id, false);
  mark_up(shard);
}

void Supervisor::mark_up(ManagedShard& shard) {
  shard.state = ShardState::kUp;
  const double now = clock_->now();
  shard.up_since = now;
  shard.last_heartbeat_ok = now;
  // A restarted process is a fresh clock epoch and a fresh dump counter:
  // mixing pre-restart offset samples would corrupt the rebase.
  shard.offset.reset();
  shard.anomaly_dumps = 0;
  // A joining shard's first bring-up is an arrival, not a restart.
  if (started_ && shard.phase != MemberPhase::kJoining) restarts_total_->inc();
  tracer_.instant("supervisor.shard_up", shard_json(shard.id), 'g');
  refresh_state_metrics();
}

double Supervisor::backoff_delay(const ManagedShard& shard) const {
  double delay = config_.restart_backoff_initial_s;
  for (int i = 0; i < shard.restart_count; ++i) {
    delay = std::min(delay * config_.restart_backoff_multiplier,
                     config_.restart_backoff_max_s);
  }
  // Deterministic jitter: same (seed, shard, restart#) -> same delay, so
  // drills and the restart-storm test are reproducible.
  std::uint64_t state = config_.seed ^
                        (static_cast<std::uint64_t>(shard.id) << 32) ^
                        (static_cast<std::uint64_t>(shard.restart_count) +
                         0x9e3779b97f4a7c15ULL);
  const double unit =
      static_cast<double>(support::splitmix64(state) >> 11) * 0x1.0p-53;
  return delay * (1.0 + config_.restart_jitter_frac * (2.0 * unit - 1.0));
}

void Supervisor::heartbeat_shard(ManagedShard& shard) {
  try {
    const double t0_us = tracer_.now_us();
    const HeartbeatAck ack = shard.client->heartbeat(++shard.heartbeat_seq);
    const double t1_us = tracer_.now_us();
    heartbeats_total_->inc();
    rtt_seconds_[shard.id]->observe((t1_us - t0_us) / 1e6);
    if (ack.mono_now_us > 0.0) {
      // NTP-style midpoint: the shard stamped its clock roughly halfway
      // through the round trip.  EWMA smoothing lives in the estimator.
      shard.offset.observe(t0_us, t1_us, ack.mono_now_us);
      clock_offset_gauges_[shard.id]->set(shard.offset.offset_us());
    }
    if (ack.anomaly_dumps > shard.anomaly_dumps) {
      anomaly_dumps_total_[shard.id]->inc(ack.anomaly_dumps -
                                          shard.anomaly_dumps);
    }
    shard.anomaly_dumps = ack.anomaly_dumps;
    observe_ack(shard, ack.last_ack_sequence);
    trim_oplog(shard);
    shard.last_heartbeat_ok = clock_->now();
    if (clock_->now() - shard.up_since >= config_.backoff_reset_after_s) {
      shard.restart_count = 0;  // stable for a while: forgive old crashes
    }
  } catch (const TimeoutError&) {
    handle_death(shard, DeathCause::kHeartbeatTimeout);
  } catch (const TransportError&) {
    handle_death(shard, DeathCause::kSocket);
  } catch (const std::exception&) {
    // kError response: the shard is alive but refused the probe; the
    // staleness detector in tick() escalates if this persists.
  }
}

// ---------------------------------------------------------------------------
// Durable control plane

ControlCheckpoint Supervisor::build_checkpoint() const {
  ControlCheckpoint state;
  std::uint64_t floor = journal_->next_sequence();
  for (const auto& [id, shard] : shards_) {
    for (const auto& entry : shard.oplog) {
      if (entry.journal_seq != 0) floor = std::min(floor, entry.journal_seq);
    }
    if (shard.oplog_overflow && shard.overflow_floor != 0) {
      floor = std::min(floor, shard.overflow_floor);
    }
  }
  state.journal_floor = floor;
  state.ingest_sequence = ingest_seq_;
  state.next_shard_id = next_shard_id_;
  state.last_poll_time = last_poll_time_;
  for (const auto& [id, shard] : shards_) {
    ControlCheckpoint::Member member;
    member.id = id;
    member.phase = shard.phase;
    member.last_ack = shard.last_ack;
    member.breaker_open = shard.state == ShardState::kDown;
    member.polls_done = shard.polls_done;
    state.members.push_back(member);
  }
  state.reference_ids = reference_ids_;
  for (const auto& [tag, info] : tags_) {
    state.tags.push_back(ControlCheckpoint::Tag{tag, info.name, info.zone});
  }
  for (const auto& [tag, fix] : latest_) state.latest.push_back(fix);
  return state;
}

void Supervisor::write_control_checkpoint() {
  if (journal_ == nullptr) return;
  const obs::TraceSpan span(&tracer_, "supervisor.journal_checkpoint");
  journal_->checkpoint(build_checkpoint());
}

void Supervisor::maybe_checkpoint() {
  if (journal_ == nullptr) return;
  if (journal_->appends_since_checkpoint() <
      config_.journal_checkpoint_every_ops) {
    return;
  }
  write_control_checkpoint();
}

void Supervisor::drain_and_checkpoint() {
  if (journal_ == nullptr) return;
  for (auto& [id, shard] : shards_) {
    if (shard.state != ShardState::kUp || shard.client == nullptr) continue;
    try {
      const HeartbeatAck ack = shard.client->heartbeat(++shard.heartbeat_seq);
      observe_ack(shard, ack.last_ack_sequence);
      trim_oplog(shard);
    } catch (const std::exception&) {
      // Dead mid-shutdown: its un-acked suffix stays journaled for replay.
    }
  }
  write_control_checkpoint();
}

// ---------------------------------------------------------------------------
// Elastic membership

std::uint64_t Supervisor::admin_add_shard() {
  std::lock_guard lock(mutex_);
  if (!started_) {
    throw std::runtime_error("add_shard: supervisor is not started");
  }
  const std::uint32_t id = next_shard_id_++;
  // Journal the intent first: a supervisor killed mid-join resumes it.
  if (journal_ != nullptr) journal_->record_add_shard(id);
  ManagedShard fresh = make_shard(id);
  fresh.phase = MemberPhase::kJoining;
  auto [it, inserted] = shards_.emplace(id, std::move(fresh));
  ManagedShard& shard = it->second;
  if (!bring_up(shard)) {
    // Roll the membership record back — an id is cheap, a permanently
    // joining ghost member is not.
    if (journal_ != nullptr) journal_->record_remove_shard(id);
    shards_.erase(it);
    refresh_state_metrics();
    throw std::runtime_error("add_shard: new shard process failed to start");
  }
  mark_up(shard);
  complete_join(shard);
  maybe_checkpoint();
  refresh_state_metrics();
  return id;
}

std::uint64_t Supervisor::admin_remove_shard(std::uint32_t id) {
  std::lock_guard lock(mutex_);
  const auto it = shards_.find(id);
  if (it == shards_.end()) {
    throw std::invalid_argument("remove_shard: unknown shard " +
                                std::to_string(id));
  }
  ManagedShard& shard = it->second;
  if (shard.phase == MemberPhase::kJoining) {
    throw std::runtime_error("remove_shard: shard is still joining");
  }
  bool was_active = shard.phase == MemberPhase::kActive;
  if (was_active) {
    std::size_t active = 0;
    for (const auto& [sid, s] : shards_) {
      if (s.phase == MemberPhase::kActive) ++active;
    }
    if (active <= 1) {
      throw std::runtime_error("remove_shard: cannot remove the last active "
                               "shard");
    }
    // The drain needs the source's WAL complete: revive it (replaying any
    // un-acked suffix) before committing to the removal.
    if (!try_revive(shard)) {
      throw std::runtime_error("remove_shard: shard " + std::to_string(id) +
                               " is unreachable; retry once it revives");
    }
    if (journal_ != nullptr) journal_->record_shard_draining(id);
    shard.phase = MemberPhase::kDraining;
  }
  const std::uint64_t moved = drain_shard(shard, /*in_router=*/was_active);
  ::kill(shard.pid, SIGTERM);
  shutdown_child(shard, 2.0);
  if (journal_ != nullptr) journal_->record_remove_shard(id);
  shards_.erase(it);
  membership_changes_remove_->inc();
  membership_moved_tags_->inc(moved);
  tracer_.instant("supervisor.shard_removed", shard_json(id), 'g');
  maybe_checkpoint();
  refresh_state_metrics();
  return moved;
}

void Supervisor::complete_join(ManagedShard& fresh) {
  const obs::TraceSpan span(&tracer_, "supervisor.join", shard_json(fresh.id));
  // Pre-insert owners: only tags whose route changes get migrated.
  std::map<sim::TagId, std::uint32_t> old_owner;
  for (const auto& [tag, info] : tags_) {
    if (is_reference(tag)) continue;
    old_owner[tag] = owner_of(tag);
  }
  // Seed the newcomer with the fleet's broadcast state (reference tags,
  // reader health, grids) from any reachable active donor, so its engine
  // computes from the same history as everyone else's.
  for (auto& [donor_id, donor] : shards_) {
    if (donor_id == fresh.id || donor.phase != MemberPhase::kActive) continue;
    if (!try_revive(donor)) continue;
    const SeedState seed = donor.client->seed_export();
    fresh.client->seed_import(seed);
    break;
  }
  router_.add_shard(fresh.id);
  std::uint64_t moved = 0;
  for (const auto& [tag, owner] : old_owner) {
    const std::uint32_t now_owner = owner_of(tag);
    if (now_owner == owner) continue;
    migrate_tag_cross(tag, owner, now_owner);
    ++moved;
  }
  if (journal_ != nullptr) journal_->record_shard_active(fresh.id);
  fresh.phase = MemberPhase::kActive;
  membership_changes_add_->inc();
  membership_moved_tags_->inc(moved);
  tracer_.instant("supervisor.shard_joined", shard_json(fresh.id), 'g');
}

std::uint64_t Supervisor::drain_shard(ManagedShard& shard, bool in_router) {
  const obs::TraceSpan span(&tracer_, "supervisor.drain", shard_json(shard.id));
  // Owners as routed WITH the draining shard present, vs without: a resumed
  // drain (supervisor restarted mid-removal) rebuilt the router without it,
  // so re-insert temporarily to recompute what it used to own.
  if (!in_router) router_.add_shard(shard.id);
  std::map<sim::TagId, std::uint32_t> old_owner;
  for (const auto& [tag, info] : tags_) {
    if (is_reference(tag)) continue;
    old_owner[tag] = owner_of(tag);
  }
  router_.remove_shard(shard.id);
  std::uint64_t moved = 0;
  for (const auto& [tag, owner] : old_owner) {
    const std::uint32_t now_owner = owner_of(tag);
    if (now_owner == owner) continue;
    migrate_tag_cross(tag, owner, now_owner);
    ++moved;
  }
  return moved;
}

void Supervisor::resume_membership() {
  std::vector<std::uint32_t> pending;
  for (const auto& [id, shard] : shards_) {
    if (shard.phase != MemberPhase::kActive &&
        shard.state == ShardState::kUp) {
      pending.push_back(id);
    }
  }
  for (const std::uint32_t id : pending) {
    const auto it = shards_.find(id);
    if (it == shards_.end()) continue;
    ManagedShard& shard = it->second;
    try {
      if (shard.phase == MemberPhase::kJoining) {
        complete_join(shard);
      } else if (shard.phase == MemberPhase::kDraining) {
        const std::uint64_t moved = drain_shard(shard, /*in_router=*/false);
        ::kill(shard.pid, SIGTERM);
        shutdown_child(shard, 2.0);
        if (journal_ != nullptr) journal_->record_remove_shard(id);
        shards_.erase(it);
        membership_changes_remove_->inc();
        membership_moved_tags_->inc(moved);
        tracer_.instant("supervisor.shard_removed", shard_json(id), 'g');
      }
    } catch (const std::exception&) {
      // A peer this change depends on is unreachable right now; the phase is
      // journaled, so the next tick retries the completion.
    }
  }
}

void Supervisor::migrate_tag_cross(sim::TagId tag, std::uint32_t from_id,
                                   std::uint32_t to_id) {
  const obs::TraceSpan span(
      &tracer_, "supervisor.migrate_tag",
      "{\"tag\":" + std::to_string(tag) + ",\"from\":" +
          std::to_string(from_id) + ",\"to\":" + std::to_string(to_id) + "}");
  const TrackedTag& info = tags_.at(tag);
  ManagedShard& dest = shards_.at(to_id);
  std::optional<engine::TagStateSnapshot> state;
  std::vector<sim::RssiReading> readings;
  const auto from_it = shards_.find(from_id);
  if (from_it != shards_.end()) {
    ManagedShard& source = from_it->second;
    if (source.state == ShardState::kUp && source.client != nullptr) {
      try {
        // Flush the source first so its WAL covers everything delivered,
        // then export (+untrack) the per-tag tracker state.
        const HeartbeatAck ack =
            source.client->heartbeat(++source.heartbeat_seq);
        observe_ack(source, ack.last_ack_sequence);
        trim_oplog(source);
        state = source.client->export_tag_state(tag);
      } catch (const TransportError&) {
        handle_death(source, DeathCause::kSocket);
      } catch (const std::exception&) {
        // kError: the source no longer tracks the tag (e.g. a migration
        // interrupted by a supervisor crash already exported it).
      }
    }
    readings = migration_readings_cross(source, tag);
  }
  if (!state.has_value()) {
    // Source dead or already exported: the tag restarts from a fresh tracker
    // at the destination; its RSSI window still re-feeds from the WAL below.
    engine::TagStateSnapshot fallback;
    fallback.name = info.name;
    state = fallback;
  }
  if (!try_revive(dest)) {
    throw std::runtime_error("migrate: destination shard " +
                             std::to_string(to_id) + " is unreachable");
  }
  // Re-feed the moved tag's WAL suffix through the destination's NORMAL
  // ingest path (journaled into its WAL like any live reading), then land
  // the exported state on top — same order as the in-process rebalance.
  for (std::size_t off = 0; off < readings.size();
       off += kMaxReadingsPerBatch) {
    const std::size_t len =
        std::min(kMaxReadingsPerBatch, readings.size() - off);
    dest.client->stream(std::vector<sim::RssiReading>(
        readings.begin() + static_cast<std::ptrdiff_t>(off),
        readings.begin() + static_cast<std::ptrdiff_t>(off + len)));
  }
  dest.client->import_tag_state(tag, info.zone, *state);
  membership_replayed_readings_->inc(readings.size());
}

std::vector<sim::RssiReading> Supervisor::migration_readings_cross(
    const ManagedShard& source, sim::TagId tag) const {
  // The tag's journaled suffix still inside the middleware window — the same
  // strict half-open filter ShardedService::migration_readings uses, so the
  // re-fed set is exactly the source's buffer. shardd hosts a single-shard
  // ShardedService, so its WAL lives under <data_dir>/shard-0/wal.
  const double horizon = last_poll_time_ - config_.middleware_window_s;
  std::vector<sim::RssiReading> readings;
  const auto wal = persist::read_wal(source.data_dir / "shard-0" / "wal");
  for (const auto& frame : wal.frames) {
    if (frame.type != persist::FrameType::kReading) continue;
    if (frame.reading.tag != tag) continue;
    if (frame.reading.time <= horizon) continue;
    readings.push_back(frame.reading);
  }
  // Un-acked batches never reached the source's WAL; their readings live
  // only in our op-log. Append them after the WAL suffix (they are newer
  // than every acked reading by construction).
  for (const auto& entry : source.oplog) {
    if (entry.kind != OpEntry::Kind::kBatch) continue;
    if (entry.sequence <= source.last_ack) continue;
    for (const auto& reading : entry.readings) {
      if (reading.tag == tag && reading.time > horizon) {
        readings.push_back(reading);
      }
    }
  }
  return readings;
}

void Supervisor::refresh_state_metrics() {
  std::size_t counts[4] = {};
  for (const auto& [id, shard] : shards_) {
    counts[static_cast<std::size_t>(shard.state)]++;
  }
  for (std::size_t i = 0; i < 4; ++i) {
    state_gauges_[i]->set(static_cast<double>(counts[i]));
  }
}

template <typename Fn>
auto Supervisor::with_shard(ManagedShard& shard, Fn fn)
    -> std::optional<decltype(fn(std::declval<ServiceClient&>()))> {
  for (int attempt = 0; attempt <= config_.request_retries; ++attempt) {
    if (!try_revive(shard)) return std::nullopt;
    try {
      return fn(*shard.client);
    } catch (const TransportError&) {
      handle_death(shard, DeathCause::kSocket);
    }
    // Non-transport errors (kError responses) propagate to the caller:
    // retrying a request the shard rejected would not change the answer.
  }
  return std::nullopt;
}

}  // namespace vire::service
