// vire_supervisord: the self-healing multi-process deployment front door
// (docs/service.md, "Multi-process deployment").
//
// Spawns one vire_shardd process per shard under a Supervisor (heartbeats,
// exponential-backoff restarts, crash-loop circuit breaker, un-acked batch
// replay) and serves the same wire protocol clients already speak — a
// client cannot tell a supervised fleet from a monolithic service, except
// that shard crashes no longer lose data or stall polls.
//
//   vire_supervisord --socket PATH --root DIR --shardd PATH [--shards N]
//                    [--workers N] [--window SECONDS] [--checkpoint-every N]
//                    [--seed N] [--trace] [--fleet-trace-out PATH]
//
// Runs until SIGTERM or SIGINT; ticks supervision between signals.
// --trace turns on fleet tracing (supervisor spans + every shardd spawned
// with --trace); --fleet-trace-out writes the merged clock-aligned Chrome
// trace there on shutdown.

#include <signal.h>
#include <time.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "env/deployment.h"
#include "service/server.h"
#include "service/supervisor.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH --root DIR --shardd PATH\n"
               "          [--shards N] [--workers N] [--window SECONDS]\n"
               "          [--checkpoint-every N] [--seed N] [--trace]\n"
               "          [--fleet-trace-out PATH]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vire;

  std::filesystem::path socket_path;
  std::filesystem::path fleet_trace_out;
  service::SupervisorConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--socket" && (v = value()) != nullptr) {
      socket_path = v;
    } else if (arg == "--root" && (v = value()) != nullptr) {
      config.root_dir = v;
    } else if (arg == "--shardd" && (v = value()) != nullptr) {
      config.shardd_binary = v;
    } else if (arg == "--shards" && (v = value()) != nullptr) {
      config.shards = std::atoi(v);
    } else if (arg == "--workers" && (v = value()) != nullptr) {
      config.engine_workers = std::atoi(v);
    } else if (arg == "--window" && (v = value()) != nullptr) {
      config.middleware_window_s = std::atof(v);
    } else if (arg == "--checkpoint-every" && (v = value()) != nullptr) {
      config.checkpoint_every_updates = std::atoi(v);
    } else if (arg == "--seed" && (v = value()) != nullptr) {
      config.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--trace") {
      config.fleet_tracing = true;
    } else if (arg == "--fleet-trace-out" && (v = value()) != nullptr) {
      fleet_trace_out = v;
    } else {
      std::fprintf(stderr, "vire_supervisord: bad argument '%s'\n",
                   arg.c_str());
      return usage(argv[0]);
    }
  }
  if (socket_path.empty() || config.root_dir.empty() ||
      config.shardd_binary.empty()) {
    return usage(argv[0]);
  }

  service::ignore_sigpipe();

  sigset_t shutdown_set;
  sigemptyset(&shutdown_set);
  sigaddset(&shutdown_set, SIGINT);
  sigaddset(&shutdown_set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &shutdown_set, nullptr);

  const env::Deployment deployment = env::Deployment::paper_testbed();
  service::Supervisor supervisor(deployment, config);
  supervisor.start();

  service::ServerConfig server_config;
  server_config.socket_path = socket_path;
  server_config.server_name = "vire-supervisord";
  service::ServiceServer server(supervisor, server_config);
  server.start();
  std::fprintf(stderr, "vire_supervisord: %d shard(s) behind %s (root %s)\n",
               supervisor.config().shards, socket_path.c_str(),
               supervisor.config().root_dir.c_str());

  // Tick twice per heartbeat interval; a shutdown signal ends the loop.
  const double tick_s = supervisor.config().heartbeat_interval_s / 2.0;
  struct timespec tick_ts;
  tick_ts.tv_sec = static_cast<time_t>(tick_s);
  tick_ts.tv_nsec =
      static_cast<long>((tick_s - std::floor(tick_s)) * 1e9);
  for (;;) {
    const int sig = sigtimedwait(&shutdown_set, nullptr, &tick_ts);
    if (sig == SIGINT || sig == SIGTERM) break;
    supervisor.tick();
  }

  std::fprintf(stderr, "vire_supervisord: stopping\n");
  server.stop();
  if (!fleet_trace_out.empty()) {
    try {
      supervisor.write_fleet_trace(fleet_trace_out);
      std::fprintf(stderr, "vire_supervisord: fleet trace -> %s\n",
                   fleet_trace_out.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "vire_supervisord: fleet trace failed: %s\n",
                   e.what());
    }
  }
  // stop() heartbeat-drains every reachable shard and checkpoints the
  // control journal, so a clean SIGTERM restart replays zero batches.
  supervisor.stop();
  std::fprintf(stderr, "vire_supervisord: stopped (journal checkpointed)\n");
  return 0;
}
