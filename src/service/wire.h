#pragma once
// Wire protocol of the sharded localization service (docs/service.md):
// length-prefixed CRC-framed messages over a byte stream (Unix domain
// socket in practice), reusing the persistence layer's little-endian byte
// IO and CRC-32 so doubles cross the process boundary by bit pattern —
// a fix queried over the wire is the *identical* IEEE-754 value the engine
// produced.
//
// Frame layout (all integers little-endian):
//   u32 frame_len | u8 type | payload | u32 crc32(type byte + payload)
// where frame_len = 1 + payload_len + 4 (everything after the prefix).
//
// The decoder is incremental and hostile-input safe (fuzzed in
// tests/service/wire_test.cpp): a bad CRC or unknown type drops that frame
// and resyncs at the next length prefix; an oversized or undersized length
// prefix poisons the stream (framing can no longer be trusted) and the
// connection must be closed; a partial frame at connection close counts as
// truncated. Every rejection is counted per reason, exported as
// vire_service_rejected_frames_total{reason=...}.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/localization_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/middleware.h"
#include "sim/types.h"

namespace vire::service {

/// Frames larger than this are rejected as hostile/corrupt (the largest
/// legitimate message, a big fix batch, stays far below it). Enforced on
/// BOTH sides: encode_frame refuses to build a frame the peer's decoder
/// would reject (see its doc), so an oversized payload is a local, typed
/// error instead of a remotely poisoned stream.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/// Encoded size of one RssiReading inside kIngest payloads
/// (f64 time + u32 tag + u16 reader + f64 rssi).
inline constexpr std::size_t kReadingEncoding = 22;

/// Most readings one kIngestSeq frame can carry under kMaxFramePayload
/// (u64 sequence + u64 trace id + u64 parent span + u32 count precede the
/// readings). Senders must chunk larger batches (Supervisor::ingest does).
inline constexpr std::size_t kMaxReadingsPerBatch =
    (kMaxFramePayload - 28) / kReadingEncoding;

/// Protocol version carried by the kHello handshake. Bump whenever a frame's
/// payload layout changes incompatibly; peers with a different version are
/// rejected fast with kVersionMismatch instead of limping through CRC
/// resyncs. v2 added hello/heartbeat/sequenced-ingest/control frames; v3
/// added trace-context propagation on kIngestSeq/kPoll, the kTraceDump /
/// kProvenanceDump pull frames, and the extended heartbeat ack; v4 added the
/// elastic-membership frames (kExportTag/kImportTag, kSeedExport/kSeedImport,
/// kAddShard/kRemoveShard) carrying checkpoint-codec state snapshots.
inline constexpr std::uint32_t kWireVersion = 4;

enum class MsgType : std::uint8_t {
  // requests
  kIngest = 1,    ///< reading batch in; fire-and-forget (no response)
  kPoll = 2,      ///< evict + update every shard at `now`; responds kFixBatch
  kLatestFix = 3, ///< latest cached fix of one tag; responds kFixReply
  kExplain = 4,   ///< flight-recorder provenance of one tag; kText or kError
  kSnapshot = 5,  ///< merged metrics snapshot; responds kText
  kHello = 6,     ///< version handshake; kHelloAck, or kError + close on skew
  kHeartbeat = 7, ///< liveness probe; responds kHeartbeatAck
  kIngestSeq = 8, ///< sequenced reading batch; fire-and-forget, acked via WAL
  kTrack = 9,     ///< register one tag (name + optional zone pin); kOk
  kSetReference = 10, ///< declare the reference-tag id set; responds kOk
  kRecover = 11,  ///< run checkpoint+WAL recovery now; kOk(u64 last_ack)
  kTraceDump = 12,      ///< pull the span ring (u32 max events); kTraceDumpReply
  kProvenanceDump = 13, ///< pull flight-recorder provenance JSON; kText or kError
  kExportTag = 14, ///< export + untrack one tag's state; kTagState or kError
  kImportTag = 15, ///< adopt one tag's exported state; kOk
  // responses
  kFixBatch = 16,
  kFixReply = 17,
  kText = 18,
  kError = 19,
  kHelloAck = 20,
  kHeartbeatAck = 21,
  kOk = 22,       ///< generic success, u64 detail payload
  kTraceDumpReply = 23, ///< encode_trace_dump payload
  // v4 requests (the 1..15 request block is full; responses stay 16..23 + 28+)
  kSeedExport = 24, ///< export reference-only seed state; kSeedState or kError
  kSeedImport = 25, ///< restore reference-only seed state; kOk
  kAddShard = 26,   ///< supervisor only: join one shard; kOk(u64 new shard id)
  kRemoveShard = 27,///< supervisor only: drain + retire one shard; kOk(u64 moved)
  // v4 responses
  kTagState = 28,   ///< encode_tag_state payload (kExportTag reply)
  kSeedState = 29,  ///< encode_seed_state payload (kSeedExport reply)
};

/// Payload format selector for kSnapshot.
inline constexpr std::uint8_t kSnapshotPrometheus = 0;
inline constexpr std::uint8_t kSnapshotJson = 1;

struct Frame {
  MsgType type = MsgType::kError;
  std::string payload;
};

enum class RejectReason : std::uint8_t {
  kOversized = 0, ///< length prefix beyond max_payload (or below the minimum)
  kBadCrc = 1,
  kBadType = 2,
  kTruncated = 3, ///< connection closed mid-frame
  kMalformed = 4, ///< frame ok, typed payload did not decode
  kVersionMismatch = 5, ///< kHello carried a different kWireVersion
};
inline constexpr std::size_t kRejectReasonCount = 6;

[[nodiscard]] std::string_view to_string(RejectReason reason) noexcept;

/// Serializes one frame, ready to write to the stream. Throws
/// std::length_error when the payload exceeds kMaxFramePayload — the peer's
/// decoder would mark the stream poisoned and drop the connection, which on
/// a supervised link reads as a shard death; failing locally keeps an
/// oversized response a request-level error.
[[nodiscard]] std::string encode_frame(MsgType type, std::string_view payload);

/// Incremental frame decoder over an arbitrary chunking of the byte stream
/// (interleaved partial reads are the normal case). One instance per
/// connection; not thread-safe.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxFramePayload) noexcept
      : max_payload_(max_payload) {}

  void feed(std::string_view bytes) { buffer_.append(bytes); }

  /// Next complete, CRC-valid frame of a known type; nullopt when more bytes
  /// are needed or the stream is failed. Invalid frames are skipped and
  /// counted, never returned.
  [[nodiscard]] std::optional<Frame> next();

  /// True once an oversized/undersized length prefix destroyed framing; the
  /// caller should drop the connection.
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  /// Call when the peer closes the stream: a buffered partial frame counts
  /// as kTruncated.
  void finish();

  /// Counts a kMalformed rejection — for the layer above, when a structurally
  /// valid frame's typed payload fails to decode.
  void note_malformed() { count(RejectReason::kMalformed); }

  /// Counts a kVersionMismatch rejection — for the layer above, when a
  /// kHello carried a different kWireVersion.
  void note_version_mismatch() { count(RejectReason::kVersionMismatch); }

  [[nodiscard]] std::uint64_t rejected(RejectReason reason) const noexcept {
    return rejected_[static_cast<std::size_t>(reason)];
  }
  [[nodiscard]] std::uint64_t rejected_total() const noexcept;

  /// Registers vire_service_rejected_frames_total{reason=...} (one series
  /// per reason) and mirrors every future rejection into it. Idempotent
  /// registration; the registry must outlive this decoder.
  void attach_metrics(obs::MetricsRegistry& registry);

 private:
  void count(RejectReason reason);

  std::size_t max_payload_;
  std::string buffer_;
  std::size_t pos_ = 0;  ///< consumed prefix of buffer_
  bool failed_ = false;
  bool finished_ = false;
  std::array<std::uint64_t, kRejectReasonCount> rejected_{};
  std::array<obs::Counter*, kRejectReasonCount> counters_{};
};

// Typed payload codecs. Every decode returns nullopt on malformed input
// (wrong length, overrunning string prefix, unknown enum value) — never
// throws, never reads out of bounds.
[[nodiscard]] std::string encode_ingest(const std::vector<sim::RssiReading>& readings);
[[nodiscard]] std::optional<std::vector<sim::RssiReading>> decode_ingest(
    std::string_view payload);

[[nodiscard]] std::string encode_time(sim::SimTime now);
[[nodiscard]] std::optional<sim::SimTime> decode_time(std::string_view payload);

[[nodiscard]] std::string encode_tag(sim::TagId tag);
[[nodiscard]] std::optional<sim::TagId> decode_tag(std::string_view payload);

[[nodiscard]] std::string encode_snapshot_request(std::uint8_t format);
[[nodiscard]] std::optional<std::uint8_t> decode_snapshot_request(
    std::string_view payload);

[[nodiscard]] std::string encode_fixes(const std::vector<engine::Fix>& fixes);
[[nodiscard]] std::optional<std::vector<engine::Fix>> decode_fixes(
    std::string_view payload);

[[nodiscard]] std::string encode_fix_reply(const std::optional<engine::Fix>& fix);
/// Outer nullopt: malformed. Inner nullopt: "no fix for this tag".
[[nodiscard]] std::optional<std::optional<engine::Fix>> decode_fix_reply(
    std::string_view payload);

/// kHello / kHelloAck: u32 version | str peer_name.
struct Hello {
  std::uint32_t version = kWireVersion;
  std::string peer_name;
};
[[nodiscard]] std::string encode_hello(const Hello& hello);
[[nodiscard]] std::optional<Hello> decode_hello(std::string_view payload);

/// kHeartbeat carries a u64 probe sequence (encode_u64); the ack echoes it
/// plus the shard's durability cursor, so the supervisor learns which ingest
/// batches survived a crash without replaying blind. v3 appends the shard's
/// monotonic trace-clock reading (for NTP-style offset estimation) and its
/// cumulative anomaly auto-dump count; a 24-byte v2 ack still decodes with
/// those fields zero.
struct HeartbeatAck {
  std::uint64_t seq = 0;               ///< echoed probe sequence
  std::uint64_t wal_next_sequence = 0; ///< shard WAL frontier
  std::uint64_t last_ack_sequence = 0; ///< highest durably journaled batch
  double mono_now_us = 0.0;            ///< shard trace clock at ack time
  std::uint64_t anomaly_dumps = 0;     ///< cumulative anomaly auto-dumps
};
[[nodiscard]] std::string encode_heartbeat_ack(const HeartbeatAck& ack);
[[nodiscard]] std::optional<HeartbeatAck> decode_heartbeat_ack(
    std::string_view payload);

/// kIngestSeq: u64 batch sequence | u64 trace id | u64 parent span id |
/// ingest payload. The sequence keys the sender's resend window; redelivery
/// is idempotent downstream. The trace context is capture-only: an all-zero
/// context is always valid and never alters localization.
struct SequencedBatch {
  std::uint64_t sequence = 0;
  obs::TraceContext ctx;
  std::vector<sim::RssiReading> readings;
};
[[nodiscard]] std::string encode_ingest_seq(
    std::uint64_t sequence, const obs::TraceContext& ctx,
    const std::vector<sim::RssiReading>& readings);
[[nodiscard]] std::string encode_ingest_seq(
    std::uint64_t sequence, const std::vector<sim::RssiReading>& readings);
[[nodiscard]] std::optional<SequencedBatch> decode_ingest_seq(
    std::string_view payload);

/// kPoll: f64 now | u64 trace id | u64 span id. A bare 8-byte `now` (the v2
/// layout) still decodes with a zero context, so hand-rolled pollers keep
/// working within a v3 session.
struct PollRequest {
  sim::SimTime now = 0.0;
  obs::TraceContext ctx;
};
[[nodiscard]] std::string encode_poll(const PollRequest& request);
[[nodiscard]] std::optional<PollRequest> decode_poll(std::string_view payload);

/// kTraceDumpReply: f64 clock | u32 thread-name count | (u32 tid, str name)*
/// | u32 event count | (str name, u8 ph, u8 scope, f64 ts, f64 dur, u32 tid,
/// str args)*. The codec lives here rather than in obs because obs carries
/// no persistence dependency; the payload must fit one frame, so pullers
/// bound the event count (kTraceDump's u32 max-events request).
[[nodiscard]] std::string encode_trace_dump(const obs::TraceDump& dump);
[[nodiscard]] std::optional<obs::TraceDump> decode_trace_dump(
    std::string_view payload);

/// kTrack: u32 tag | str name | u8 has_zone | [u32 zone].
struct TrackRequest {
  sim::TagId tag = 0;
  std::string name;
  std::optional<std::uint32_t> zone;
};
[[nodiscard]] std::string encode_track(const TrackRequest& request);
[[nodiscard]] std::optional<TrackRequest> decode_track(std::string_view payload);

/// kSetReference: u32 count | u32 tag*.
[[nodiscard]] std::string encode_reference_ids(const std::vector<sim::TagId>& ids);
[[nodiscard]] std::optional<std::vector<sim::TagId>> decode_reference_ids(
    std::string_view payload);

/// Bare u64 payload: kHeartbeat probe sequence and the kOk detail value.
[[nodiscard]] std::string encode_u64(std::uint64_t value);
[[nodiscard]] std::optional<std::uint64_t> decode_u64(std::string_view payload);

/// Bare u32 payload: the kTraceDump max-events bound (0 = all retained),
/// the kExportTag tag id, and the kRemoveShard shard id.
[[nodiscard]] std::string encode_u32(std::uint32_t value);
[[nodiscard]] std::optional<std::uint32_t> decode_u32(std::string_view payload);

/// kTagState: u8 has | [persist tag-state codec]. The inner nullopt means
/// "source shard held no state for this tag" (the mover imports a fresh
/// snapshot instead). Outer nullopt: malformed.
[[nodiscard]] std::string encode_tag_state(
    const std::optional<engine::TagStateSnapshot>& state);
[[nodiscard]] std::optional<std::optional<engine::TagStateSnapshot>>
decode_tag_state(std::string_view payload);

/// kImportTag: u32 tag | u8 has_zone | [u32 zone] | persist tag-state codec.
struct ImportTagRequest {
  sim::TagId tag = 0;
  std::optional<std::uint32_t> zone;
  engine::TagStateSnapshot state;
};
[[nodiscard]] std::string encode_import_tag(const ImportTagRequest& request);
[[nodiscard]] std::optional<ImportTagRequest> decode_import_tag(
    std::string_view payload);

/// kSeedState / kSeedImport: persist engine-state codec | persist middleware
/// codec — the reference-only seed a joining shard restores before it takes
/// ownership of any tag (see ShardedService::seed_export).
struct SeedState {
  engine::EngineStateSnapshot engine;
  sim::Middleware::Snapshot middleware;
};
[[nodiscard]] std::string encode_seed_state(const SeedState& seed);
[[nodiscard]] std::optional<SeedState> decode_seed_state(
    std::string_view payload);

}  // namespace vire::service
