#pragma once
// Wire-protocol clients of the localization service (docs/service.md).
//
// ServiceClient is a minimal blocking client: one connection, one
// outstanding request at a time. Robustness hardening lives here rather
// than in callers:
//   * every read is bounded by ClientConfig::read_timeout_s via poll(2) —
//     a hung or wedged server surfaces as TimeoutError, never an infinite
//     block;
//   * a version/hello handshake runs at connect (ClientConfig::handshake),
//     so a peer speaking a different kWireVersion fails fast with a clear
//     error instead of limping through CRC resyncs;
//   * writes use MSG_NOSIGNAL — a peer dying mid-write is a TransportError
//     return, not SIGPIPE process death.
//
// RetryingClient wraps ServiceClient with bounded reconnect + retry and
// exponential backoff. Only transport-level failures (TransportError:
// timeout, dead socket, failed connect) are retried; a server-side kError
// response is a real answer and is never retried. Re-sending an ingest
// batch after an ambiguous failure is safe when sequenced: the service's
// last-write-wins duplicate policy and the kIngestSeq ack window make
// redelivery idempotent.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/localization_engine.h"
#include "service/wire.h"
#include "sim/types.h"

namespace vire::service {

/// Socket-level failure (connect, send, read, handshake transport). Retry
/// may help; the request's effect on the server is unknown.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A read exceeded ClientConfig::read_timeout_s.
class TimeoutError : public TransportError {
 public:
  using TransportError::TransportError;
};

struct ClientConfig {
  /// Frame payload cap handed to the response decoder.
  std::size_t max_payload = kMaxFramePayload;
  /// Per-read deadline in seconds; <= 0 blocks forever (legacy behavior).
  double read_timeout_s = 5.0;
  /// Exchange kHello/kHelloAck at connect; a version skew throws
  /// TransportError with the server's reason text.
  bool handshake = true;
  /// Name sent in the hello frame (diagnostics only).
  std::string peer_name = "client";
};

/// Installs SIG_IGN for SIGPIPE, so a peer dying mid-write surfaces as an
/// EPIPE error return instead of killing the process. Call once from main();
/// idempotent. (The clients/server also pass MSG_NOSIGNAL on every send —
/// this guards third-party code writing to sockets.)
void ignore_sigpipe() noexcept;

class ServiceClient {
 public:
  /// Connects immediately; throws TransportError on failure.
  explicit ServiceClient(const std::filesystem::path& socket_path,
                         ClientConfig config = {});
  /// Back-compat shim for the original (path, max_payload) signature.
  ServiceClient(const std::filesystem::path& socket_path,
                std::size_t max_payload);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Fire-and-forget reading batch.
  void stream(const std::vector<sim::RssiReading>& readings);
  /// Fire-and-forget sequenced batch (kIngestSeq); the server acks it
  /// durably via its WAL, observable through heartbeat(). The ctx overload
  /// propagates a trace context the server records capture-only.
  void stream_sequenced(std::uint64_t sequence,
                        const std::vector<sim::RssiReading>& readings);
  void stream_sequenced(std::uint64_t sequence, const obs::TraceContext& ctx,
                        const std::vector<sim::RssiReading>& readings);

  /// Round trips. Each throws TransportError (TimeoutError on deadline) on
  /// a transport failure, std::runtime_error on a kError response (message
  /// = the server's error text).
  std::vector<engine::Fix> poll(sim::SimTime now);
  std::vector<engine::Fix> poll(sim::SimTime now, const obs::TraceContext& ctx);
  std::optional<engine::Fix> latest_fix(sim::TagId tag);
  /// Flight-recorder JSON for the tag, or nullopt when the server has none.
  std::optional<std::string> explain(sim::TagId tag);
  std::string snapshot_prometheus();
  std::string snapshot_json();

  /// Liveness probe: sends kHeartbeat with `seq`, returns the server's
  /// durability cursor.
  HeartbeatAck heartbeat(std::uint64_t seq);
  void track(const TrackRequest& request);
  void set_reference_ids(const std::vector<sim::TagId>& ids);
  /// Asks the server to run checkpoint+WAL recovery; returns the recovered
  /// last-ack batch sequence.
  std::uint64_t recover_now();
  /// Pulls the server's span ring (kTraceDump) for fleet-trace aggregation;
  /// `max_events` bounds the reply (0 = everything retained).
  obs::TraceDump trace_dump(std::uint32_t max_events);
  /// Pulls flight-recorder provenance JSON (kProvenanceDump), or nullopt
  /// when the server records none.
  std::optional<std::string> provenance();

  // Elastic-membership round trips (wire v4). Each surfaces a refusing
  // frontend (kError) as std::runtime_error, like the calls above.
  /// Export + untrack one tag's state; nullopt = tag held no state.
  std::optional<engine::TagStateSnapshot> export_tag_state(sim::TagId tag);
  /// Register `tag` on the server and adopt its exported state.
  void import_tag_state(sim::TagId tag, std::optional<std::uint32_t> zone,
                        const engine::TagStateSnapshot& state);
  /// Pull the server's reference-only seed (kSeedExport).
  SeedState seed_export();
  /// Restore a reference-only seed (kSeedImport).
  void seed_import(const SeedState& seed);
  /// Supervisor admin: join one shard; returns the new shard id.
  std::uint64_t add_shard();
  /// Supervisor admin: drain + retire shard `id`; returns tags moved.
  std::uint64_t remove_shard(std::uint32_t id);

  [[nodiscard]] const std::string& server_name() const noexcept {
    return server_name_;
  }

 private:
  void connect(const std::filesystem::path& socket_path);
  void handshake();
  void send_all(std::string_view bytes);
  /// Blocks until one complete frame arrives or the deadline expires.
  Frame read_frame();
  std::string snapshot(std::uint8_t format);
  /// One round trip expecting `expected` (kError → runtime_error).
  Frame request(MsgType type, std::string_view payload, MsgType expected,
                const char* what);

  ClientConfig config_;
  int fd_ = -1;
  FrameDecoder decoder_;
  std::string server_name_;
};

struct RetryConfig {
  /// Total attempts per operation (first try included).
  int max_attempts = 3;
  double backoff_initial_s = 0.05;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 1.0;
};

/// ServiceClient with bounded reconnect + retry. Lazily connects; after a
/// TransportError the connection is torn down and re-established before the
/// next attempt, sleeping an exponentially growing backoff between attempts.
/// The last attempt's TransportError propagates when the budget is spent.
class RetryingClient {
 public:
  explicit RetryingClient(std::filesystem::path socket_path,
                          ClientConfig client = {}, RetryConfig retry = {});

  void stream(const std::vector<sim::RssiReading>& readings);
  void stream_sequenced(std::uint64_t sequence,
                        const std::vector<sim::RssiReading>& readings);
  std::vector<engine::Fix> poll(sim::SimTime now);
  std::optional<engine::Fix> latest_fix(sim::TagId tag);
  std::optional<std::string> explain(sim::TagId tag);
  std::string snapshot_prometheus();
  std::string snapshot_json();
  HeartbeatAck heartbeat(std::uint64_t seq);
  void track(const TrackRequest& request);
  void set_reference_ids(const std::vector<sim::TagId>& ids);
  std::uint64_t recover_now();
  obs::TraceDump trace_dump(std::uint32_t max_events);
  std::optional<std::string> provenance();

  /// Connections (re)established over this client's lifetime.
  [[nodiscard]] std::uint64_t reconnects() const noexcept { return reconnects_; }
  /// Drop the connection now; the next operation reconnects.
  void disconnect() noexcept { client_.reset(); }

 private:
  ServiceClient& ensure_connected();
  template <typename F>
  auto with_retry(F&& op) -> decltype(op(std::declval<ServiceClient&>()));

  std::filesystem::path socket_path_;
  ClientConfig client_config_;
  RetryConfig retry_;
  std::unique_ptr<ServiceClient> client_;
  std::uint64_t reconnects_ = 0;
};

}  // namespace vire::service
