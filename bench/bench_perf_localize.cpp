// Performance: end-to-end localization latency — proximity maps +
// elimination + weighting (the paper's Sec. 4.3 pipeline) — for VIRE in
// each threshold mode, against the LANDMARC baseline, across grid
// densities. This quantifies the cost of VIRE's accuracy gain.

#include <benchmark/benchmark.h>

#include <cmath>

#include "core/refinement.h"
#include "core/vire_localizer.h"
#include "env/deployment.h"
#include "landmarc/landmarc.h"

namespace {

using namespace vire;

sim::RssiVector field_at(geom::Vec2 p) {
  static const geom::Vec2 readers[4] = {
      {-0.7, -0.7}, {3.7, -0.7}, {3.7, 3.7}, {-0.7, 3.7}};
  sim::RssiVector v;
  for (const auto& r : readers) {
    v.push_back(-40.0 - 20.0 * std::log10(std::max(0.1, p.distance_to(r))));
  }
  return v;
}

std::vector<sim::RssiVector> references() {
  const env::Deployment deployment = env::Deployment::paper_testbed();
  std::vector<sim::RssiVector> refs;
  for (const auto& p : deployment.reference_positions()) refs.push_back(field_at(p));
  return refs;
}

void BM_VireLocate(benchmark::State& state) {
  const env::Deployment deployment = env::Deployment::paper_testbed();
  core::VireConfig config = core::recommended_vire_config();
  config.virtual_grid.subdivision = static_cast<int>(state.range(0));
  config.elimination.mode = state.range(1) == 0 ? core::ThresholdMode::kFixed
                                                : core::ThresholdMode::kAdaptive;
  core::VireLocalizer localizer(deployment.reference_grid(), config);
  localizer.set_reference_rssi(references());

  const auto tracking = field_at({1.4, 1.8});
  for (auto _ : state) {
    auto result = localizer.locate(tracking);
    benchmark::DoNotOptimize(result);
  }
  state.counters["virtual_tags"] =
      static_cast<double>(localizer.virtual_tag_count());
  state.SetLabel(state.range(1) == 0 ? "fixed" : "adaptive");
}
BENCHMARK(BM_VireLocate)
    ->Args({5, 0})
    ->Args({10, 0})
    ->Args({20, 0})
    ->Args({5, 1})
    ->Args({10, 1})
    ->Args({20, 1});

void BM_VireGridRefresh(benchmark::State& state) {
  // Cost of reacting to changed reference readings (the paper's map update).
  const env::Deployment deployment = env::Deployment::paper_testbed();
  core::VireLocalizer localizer(deployment.reference_grid(),
                                core::recommended_vire_config());
  const auto refs = references();
  for (auto _ : state) {
    localizer.set_reference_rssi(refs);
    benchmark::DoNotOptimize(localizer.virtual_tag_count());
  }
}
BENCHMARK(BM_VireGridRefresh);

void BM_CoarseToFineLocate(benchmark::State& state) {
  // The Sec. 6 per-cell-granularity extension vs a uniform fine lattice at
  // the same resolution, on a large 8x8 reference grid where the win shows.
  const geom::RegularGrid big_grid({0, 0}, 1.0, 8, 8);
  std::vector<sim::RssiVector> refs;
  for (std::size_t i = 0; i < big_grid.node_count(); ++i) {
    refs.push_back(field_at(big_grid.position(i)));
  }
  const auto tracking = field_at({2.5, 3.5});
  if (state.range(0) == 0) {
    core::CoarseToFineLocalizer localizer(big_grid);
    localizer.set_reference_rssi(refs);
    for (auto _ : state) {
      auto result = localizer.locate(tracking);
      benchmark::DoNotOptimize(result);
    }
    state.SetLabel("coarse-to-fine n=3->16");
  } else {
    core::VireConfig config = core::recommended_vire_config();
    config.virtual_grid.subdivision = 16;
    config.virtual_grid.boundary_extension_cells = 8;
    core::VireLocalizer localizer(big_grid, config);
    localizer.set_reference_rssi(refs);
    for (auto _ : state) {
      auto result = localizer.locate(tracking);
      benchmark::DoNotOptimize(result);
    }
    state.SetLabel("uniform n=16");
  }
}
BENCHMARK(BM_CoarseToFineLocate)->Arg(0)->Arg(1);

void BM_LandmarcLocate(benchmark::State& state) {
  const env::Deployment deployment = env::Deployment::paper_testbed();
  landmarc::LandmarcLocalizer localizer;
  std::vector<landmarc::Reference> refs;
  const auto rssi = references();
  for (std::size_t j = 0; j < rssi.size(); ++j) {
    refs.push_back({deployment.reference_positions()[j], rssi[j]});
  }
  localizer.set_references(std::move(refs));
  const auto tracking = field_at({1.4, 1.8});
  for (auto _ : state) {
    auto result = localizer.locate(tracking);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LandmarcLocate);

void BM_LandmarcLocateLargeGrid(benchmark::State& state) {
  // kNN over a big reference population (scaling comparison with VIRE).
  const int side = static_cast<int>(state.range(0));
  landmarc::LandmarcLocalizer localizer;
  std::vector<landmarc::Reference> refs;
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      const geom::Vec2 p{static_cast<double>(x), static_cast<double>(y)};
      refs.push_back({p, field_at(p)});
    }
  }
  localizer.set_references(std::move(refs));
  const auto tracking = field_at({1.4, 1.8});
  for (auto _ : state) {
    auto result = localizer.locate(tracking);
    benchmark::DoNotOptimize(result);
  }
  state.counters["references"] = static_cast<double>(side) * side;
}
BENCHMARK(BM_LandmarcLocateLargeGrid)->Arg(4)->Arg(8)->Arg(16)->Arg(31);

}  // namespace

#include "gbench_report_main.h"
VIRE_GBENCH_REPORT_MAIN("perf_localize")
