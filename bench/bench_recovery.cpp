// Persistence overhead and recovery speed: how expensive is crash safety?
// Three headline numbers (docs/robustness.md, "Crash recovery"):
//
//   * checkpoint write  — serialize + atomic-rename of a live engine's full
//     state, the per-cadence cost of checkpointing;
//   * WAL append        — journaled readings/s, the steady-state tax on the
//     ingest path (measured with fsync off and with the every-64 default);
//   * WAL replay        — readings/s through the real recovery path
//     (checkpoint load + Middleware::ingest/evict + engine updates), which
//     bounds restart time: downtime ~ WAL-suffix length / replay rate.
//
// Env knobs: VIRE_RECOVERY_POLLS       scenario polls journaled (default 12)
//            VIRE_RECOVERY_READINGS    synthetic WAL appends (default 100000)
//            VIRE_RECOVERY_CHECKPOINTS checkpoint writes timed (default 10)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "obs/bench_report.h"
#include "persist/checkpoint.h"
#include "persist/recovery.h"
#include "persist/wal.h"
#include "sim/simulator.h"

namespace {

using namespace vire;
namespace fs = std::filesystem;

int env_int(const char* name, int fallback) {
  if (const char* s = std::getenv(name)) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct Pipeline {
  std::unique_ptr<sim::RfidSimulator> simulator;
  std::unique_ptr<engine::LocalizationEngine> engine;
};

Pipeline make_pipeline() {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = 11;
  sim_config.middleware.window_s = 10.0;

  Pipeline p;
  p.simulator = std::make_unique<sim::RfidSimulator>(environment, deployment,
                                                     sim_config);
  const auto reference_ids = p.simulator->add_reference_tags();
  const sim::TagId pallet = p.simulator->add_tag({1.4, 1.8});
  const sim::TagId forklift = p.simulator->add_tag({2.3, 1.1});

  engine::EngineConfig config;
  config.min_refresh_interval_s = 10.0;
  p.engine = std::make_unique<engine::LocalizationEngine>(deployment, config);
  p.simulator->middleware().attach_metrics(p.engine->metrics());
  p.engine->set_reference_ids(reference_ids);
  p.engine->track(pallet, "pallet");
  p.engine->track(forklift, "forklift");
  return p;
}

double wal_append_rate(const fs::path& dir, int readings,
                       persist::FsyncPolicy policy) {
  fs::remove_all(dir);
  persist::WalConfig config;
  config.dir = dir;
  config.fsync = policy;
  persist::WalWriter wal(config);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < readings; ++i) {
    wal.on_accepted({0.01 * i, static_cast<sim::TagId>(100 + (i & 15)),
                     static_cast<sim::ReaderId>(i & 3), -55.0 - (i & 7)});
  }
  wal.sync();
  const double elapsed = seconds_since(start);
  fs::remove_all(dir);
  return static_cast<double>(readings) / elapsed;
}

}  // namespace

int main() {
  const int polls = env_int("VIRE_RECOVERY_POLLS", 12);
  const int readings = env_int("VIRE_RECOVERY_READINGS", 100000);
  const int checkpoints = env_int("VIRE_RECOVERY_CHECKPOINTS", 10);
  const fs::path scratch = "bench_out/recovery_scratch";

  std::printf("=== Crash-safety overhead & recovery speed ===\n");
  std::printf("polls: %d, synthetic readings: %d, checkpoint reps: %d\n\n",
              polls, readings, checkpoints);

  // 1. A live scenario with the journal attached, to get a realistic engine
  // state for checkpointing and a realistic WAL for replay.
  fs::remove_all(scratch);
  Pipeline live = make_pipeline();
  persist::WalConfig wal_config;
  wal_config.dir = scratch / "wal";
  wal_config.fsync = persist::FsyncPolicy::kOff;
  auto wal = std::make_unique<persist::WalWriter>(wal_config);
  live.simulator->middleware().attach_journal(wal.get());

  persist::CheckpointStoreConfig store_config;
  store_config.dir = scratch / "ckpt";
  persist::CheckpointStore store(store_config);
  const std::uint64_t fingerprint =
      persist::engine_config_fingerprint(live.engine->config());

  live.simulator->run_for(40.0);
  persist::Checkpoint checkpoint;  // refreshed every poll; last one wins
  for (int poll = 0; poll < polls; ++poll) {
    live.simulator->run_for(5.0);
    const sim::SimTime now = live.simulator->now();
    live.simulator->middleware().evict_stale(now);
    wal->append_update_marker(now);
    live.engine->update(live.simulator->middleware(), now);
    if (poll == 0) {
      // Checkpoint once, early: recovery below replays the long suffix.
      checkpoint.config_fingerprint = fingerprint;
      checkpoint.wal_sequence = wal->next_sequence();
      checkpoint.sim_time = now;
      checkpoint.engine = live.engine->snapshot();
      checkpoint.middleware = live.simulator->middleware().snapshot();
      checkpoint.counters = persist::sample_counters(live.engine->metrics());
      store.write(checkpoint);
    }
  }
  // Refresh the snapshot to end-of-run state for the checkpoint timing.
  checkpoint.engine = live.engine->snapshot();
  checkpoint.middleware = live.simulator->middleware().snapshot();
  checkpoint.counters = persist::sample_counters(live.engine->metrics());
  const std::size_t checkpoint_bytes = persist::serialize(checkpoint).size();
  live.simulator->middleware().attach_journal(nullptr);
  wal.reset();  // close the segment cleanly

  // 2. Checkpoint write latency (serialize + atomic rename, fsync on).
  // A separate scratch store: these timing writes must not shadow the real
  // poll-0 checkpoint the recovery below loads.
  persist::CheckpointStoreConfig timing_config;
  timing_config.dir = scratch / "ckpt_timing";
  persist::CheckpointStore timing_store(timing_config);
  const auto ckpt_start = std::chrono::steady_clock::now();
  for (int i = 0; i < checkpoints; ++i) {
    checkpoint.wal_sequence += 1;  // distinct file names, keep-prune active
    timing_store.write(checkpoint);
  }
  const double checkpoint_ms =
      seconds_since(ckpt_start) * 1000.0 / checkpoints;

  // 3. Synthetic WAL append throughput.
  const double append_nofsync =
      wal_append_rate(scratch / "wal_bench", readings, persist::FsyncPolicy::kOff);
  const double append_fsync64 = wal_append_rate(
      scratch / "wal_bench", readings, persist::FsyncPolicy::kEveryN);

  // 4. Replay speed through the real recovery path.
  Pipeline fresh = make_pipeline();
  persist::RecoveryManager manager({scratch / "wal", scratch / "ckpt"});
  const persist::RecoveryReport report =
      manager.recover(*fresh.engine, fresh.simulator->middleware());
  const double replay_rate =
      report.recovery_seconds > 0.0
          ? static_cast<double>(report.readings_replayed) / report.recovery_seconds
          : 0.0;

  std::printf("checkpoint write   : %8.3f ms  (%zu bytes, %d reps)\n",
              checkpoint_ms, checkpoint_bytes, checkpoints);
  std::printf("WAL append (no fsync): %10.0f readings/s\n", append_nofsync);
  std::printf("WAL append (fsync/64): %10.0f readings/s\n", append_fsync64);
  std::printf("WAL replay          : %10.0f readings/s  (%llu frames, %llu "
              "updates, %.3f s)\n",
              replay_rate,
              static_cast<unsigned long long>(report.frames_replayed),
              static_cast<unsigned long long>(report.updates_replayed),
              report.recovery_seconds);

  obs::BenchReport bench;
  bench.name = "recovery";
  bench.git_rev = VIRE_GIT_REV;
  bench.config = {{"polls", std::to_string(polls)},
                  {"synthetic_readings", std::to_string(readings)},
                  {"checkpoint_reps", std::to_string(checkpoints)},
                  {"checkpoint_bytes", std::to_string(checkpoint_bytes)}};
  bench.wall_ms = report.recovery_seconds * 1000.0;
  bench.throughput = replay_rate;
  bench.throughput_unit = "replayed_readings_per_sec";
  bench.results = {{"checkpoint_write_ms", checkpoint_ms},
                   {"wal_append_nofsync_per_sec", append_nofsync},
                   {"wal_append_fsync64_per_sec", append_fsync64},
                   {"replay_readings_per_sec", replay_rate},
                   {"frames_replayed", static_cast<double>(report.frames_replayed)}};
  const auto path = obs::write_bench_report(bench);
  std::printf("\nreport: %s\n", path.string().c_str());

  fs::remove_all(scratch);
  return report.checkpoint_loaded && report.frames_replayed > 0 ? 0 : 1;
}
