// Robustness: localization error CDF vs fraction of failed readers. For each
// failure level (0..K-1 of the K paper-testbed readers killed mid-run by a
// seed-driven FaultPlan) the full pipeline — simulator, fault injector,
// middleware, health monitor, engine with LANDMARC fallback — runs the same
// deterministic scenario and the post-kill error distribution is recorded.
// This is the headline graceful-degradation curve of docs/robustness.md:
// accuracy should decay smoothly with failures, not cliff to invalid fixes.
//
// Env knobs: VIRE_ROUNDS (post-kill update rounds, default 16),
//            VIRE_TAGS (tracked tags, default 8).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "fault/fault_injector.h"
#include "obs/bench_report.h"
#include "sim/simulator.h"
#include "support/csv.h"
#include "support/rng.h"

namespace {

using namespace vire;

int env_int(const char* name, int fallback) {
  if (const char* s = std::getenv(name)) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}

double quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return std::nan("");
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

struct LevelResult {
  int failed_readers = 0;
  std::size_t fixes = 0;
  std::size_t fresh = 0;     ///< kOk or kDegraded (a new position this round)
  std::size_t fallback = 0;  ///< fresh fixes produced by the LANDMARC fallback
  std::vector<double> errors;  ///< fresh-fix errors, post-kill rounds only
};

}  // namespace

int main() {
  const int rounds = env_int("VIRE_ROUNDS", 16);
  const int tag_count = env_int("VIRE_TAGS", 8);
  constexpr double kKillTime = 60.0;
  constexpr double kRoundStep = 5.0;

  const env::Deployment deployment = env::Deployment::paper_testbed();
  const int reader_count = static_cast<int>(deployment.reader_count());

  std::printf("=== Error CDF vs fraction of failed readers ===\n");
  std::printf("readers: %d, tags: %d, post-kill rounds: %d\n\n", reader_count,
              tag_count, rounds);

  obs::BenchReport report;
  report.name = "fault_degradation";
  report.git_rev = VIRE_GIT_REV;
  report.config = {{"readers", std::to_string(reader_count)},
                   {"tags", std::to_string(tag_count)},
                   {"rounds", std::to_string(rounds)}};
  report.throughput_unit = "fixes_per_sec";

  support::CsvWriter csv("bench_out/fault_degradation.csv");
  csv.header({"failed_readers", "failed_fraction", "fresh_fix_fraction",
              "fallback_fraction", "err_p50_m", "err_p90_m", "err_max_m"});

  std::printf("%8s %10s %8s %10s %8s %8s %8s\n", "failed", "fraction", "fresh",
              "fallback", "p50 m", "p90 m", "max m");

  const auto bench_start = std::chrono::steady_clock::now();
  std::size_t total_fixes = 0;
  for (int failed = 0; failed < reader_count; ++failed) {
    const env::Environment environment =
        env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
    sim::SimulatorConfig sim_config;
    sim_config.seed = 7;
    sim_config.middleware.window_s = 10.0;
    sim::RfidSimulator simulator(environment, deployment, sim_config);

    fault::FaultPlan plan;
    for (int r = 0; r < failed; ++r) plan.kill_reader(r, kKillTime);
    fault::FaultInjector injector(plan, /*seed=*/7);
    simulator.set_interceptor(&injector);

    const auto reference_ids = simulator.add_reference_tags();
    // Deterministic tag fleet over the interior of the testbed.
    std::vector<sim::TagId> tags;
    std::vector<geom::Vec2> truths;
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    for (int i = 0; i < tag_count; ++i) {
      const double x = 0.5 + 3.0 * (static_cast<double>(
                                        support::splitmix64(state) >> 11) /
                                    9007199254740992.0);
      const double y = 0.5 + 3.0 * (static_cast<double>(
                                        support::splitmix64(state) >> 11) /
                                    9007199254740992.0);
      truths.push_back({x, y});
      tags.push_back(simulator.add_tag({x, y}));
    }

    engine::EngineConfig config;
    config.min_refresh_interval_s = 10.0;
    config.degradation.health.quarantine_after = 2;
    config.degradation.health.recover_after = 2;
    engine::LocalizationEngine engine(deployment, config);
    engine.set_reference_ids(reference_ids);
    for (const auto id : tags) engine.track(id);

    simulator.run_for(40.0);  // fill the aggregation window

    LevelResult level;
    level.failed_readers = failed;
    // Warm rounds up to the kill, then settle rounds for quarantine latency
    // (eviction window + hysteresis), then the measured post-kill rounds.
    const int settle = 4 + static_cast<int>(kKillTime / kRoundStep);
    for (int r = 0; r < settle + rounds; ++r) {
      simulator.run_for(kRoundStep);
      const sim::SimTime now = simulator.now();
      simulator.middleware().evict_stale(now);
      const auto fixes = engine.update(simulator.middleware(), now);
      if (r < settle) continue;
      for (std::size_t i = 0; i < fixes.size(); ++i) {
        ++level.fixes;
        const bool fresh = fixes[i].quality == engine::FixQuality::kOk ||
                           fixes[i].quality == engine::FixQuality::kDegraded;
        if (!fresh) continue;
        ++level.fresh;
        if (fixes[i].used_fallback) ++level.fallback;
        level.errors.push_back(geom::distance(fixes[i].position, truths[i]));
      }
    }
    total_fixes += level.fixes;

    std::sort(level.errors.begin(), level.errors.end());
    const double fraction =
        static_cast<double>(failed) / static_cast<double>(reader_count);
    const double fresh_fraction =
        level.fixes == 0 ? 0.0
                         : static_cast<double>(level.fresh) /
                               static_cast<double>(level.fixes);
    const double fallback_fraction =
        level.fresh == 0 ? 0.0
                         : static_cast<double>(level.fallback) /
                               static_cast<double>(level.fresh);
    const double p50 = quantile(level.errors, 0.5);
    const double p90 = quantile(level.errors, 0.9);
    const double pmax = level.errors.empty() ? std::nan("") : level.errors.back();

    std::printf("%8d %9.0f%% %7.0f%% %9.0f%% %8.3f %8.3f %8.3f\n", failed,
                100.0 * fraction, 100.0 * fresh_fraction,
                100.0 * fallback_fraction, p50, p90, pmax);
    csv.row({std::to_string(failed), std::to_string(fraction),
             std::to_string(fresh_fraction), std::to_string(fallback_fraction),
             std::to_string(p50), std::to_string(p90), std::to_string(pmax)});

    const std::string prefix = "failed_" + std::to_string(failed) + "_";
    report.results.emplace_back(prefix + "err_p50_m", p50);
    report.results.emplace_back(prefix + "err_p90_m", p90);
    report.results.emplace_back(prefix + "fresh_fix_fraction", fresh_fraction);
  }

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - bench_start)
                            .count();
  report.wall_ms = 1e3 * wall_s;
  report.throughput = static_cast<double>(total_fixes) / std::max(1e-12, wall_s);
  const auto json_path = obs::write_bench_report(report);
  std::printf("\nCSV written to bench_out/fault_degradation.csv\n");
  std::printf("JSON report written to %s\n", json_path.string().c_str());
  return 0;
}
