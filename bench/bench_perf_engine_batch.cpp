// Performance: batch localization throughput of the LocalizationEngine vs
// `parallel_workers`. One simulated testbed, a fleet of static tags, and
// repeated update() rounds against a fixed middleware snapshot — so after
// the first round the unchanged-reference skip keeps the virtual grid
// cached and the measurement isolates the per-tag locate() fan-out, which
// is the server's hot path.
//
// Also cross-checks the determinism contract: every worker count must
// reproduce the serial fixes bit-for-bit.
//
// Env knobs: VIRE_TAGS (default 64), VIRE_ROUNDS (default 30).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "obs/bench_report.h"
#include "sim/simulator.h"
#include "support/csv.h"
#include "support/rng.h"

namespace {

using namespace vire;

int env_int(const char* name, int fallback) {
  if (const char* s = std::getenv(name)) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}

bool fixes_identical(const std::vector<engine::Fix>& a,
                     const std::vector<engine::Fix>& b) {
  if (a.size() != b.size()) return false;
  auto same = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  };
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].tag != b[i].tag || a[i].valid != b[i].valid ||
        a[i].survivor_count != b[i].survivor_count ||
        !same(a[i].position.x, b[i].position.x) ||
        !same(a[i].position.y, b[i].position.y) ||
        !same(a[i].smoothed_position.x, b[i].smoothed_position.x) ||
        !same(a[i].smoothed_position.y, b[i].smoothed_position.y)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const int tag_count = env_int("VIRE_TAGS", 64);
  const int rounds = env_int("VIRE_ROUNDS", 30);
  // Honest hardware report: hardware_concurrency() as-is (0 = unknown). The
  // old max(1, ...) clamp hid the difference between "single core" and
  // "could not detect", and the scaling curve below keys off the real value.
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const unsigned hw = std::max(1u, hw_raw);
  const bool can_scale = hw > 1;

  std::printf("=== Engine batch throughput vs parallel_workers ===\n");
  std::printf("tags: %d, update rounds: %d, hardware threads: %u%s\n\n", tag_count,
              rounds, hw_raw, hw_raw == 0 ? " (undetected)" : "");
  if (!can_scale) {
    std::printf(
        "NOTE: single hardware thread — a multi-worker \"speedup\" here would\n"
        "just measure oversubscription, so the scaling curve is refused and\n"
        "only the serial throughput is reported.\n\n");
  }

  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = 7;
  sim::RfidSimulator simulator(environment, deployment, sim_config);
  const auto reference_ids = simulator.add_reference_tags();

  // Deterministic pseudo-random fleet over the deployment area (plus a
  // fringe outside the reference lattice, the hard boundary cases).
  std::vector<sim::TagId> tags;
  std::uint64_t state = 0x243f6a8885a308d3ULL;
  for (int i = 0; i < tag_count; ++i) {
    const double x = -0.5 + 4.0 * (static_cast<double>(support::splitmix64(state) >> 11) /
                                   9007199254740992.0);
    const double y = -0.5 + 4.0 * (static_cast<double>(support::splitmix64(state) >> 11) /
                                   9007199254740992.0);
    tags.push_back(simulator.add_tag({x, y}));
  }
  simulator.run_for(40.0);
  const sim::SimTime now = simulator.now();
  const sim::Middleware& middleware = simulator.middleware();

  // Pinned sweep: serial first (the baseline every row is compared to),
  // then powers of two up to the machine's real thread count, then 0
  // (= auto-size). On a single-thread machine the sweep is just {1} — see
  // the refusal note above.
  std::vector<int> worker_counts = {1};
  if (can_scale) {
    for (int w = 2; static_cast<unsigned>(w) <= hw; w *= 2) {
      worker_counts.push_back(w);
    }
    worker_counts.push_back(0);
  }
  support::CsvWriter csv("bench_out/perf_engine_batch.csv");
  csv.header({"workers_requested", "workers_actual", "tags", "rounds",
              "mean_update_ms", "tags_per_sec", "speedup_vs_serial",
              "bit_identical_to_serial"});

  std::printf("%10s %8s %16s %14s %9s %12s\n", "workers", "actual", "mean update ms",
              "tags/sec", "speedup", "identical");

  obs::BenchReport report;
  report.name = "perf_engine_batch";
  report.git_rev = VIRE_GIT_REV;
  report.config = {{"tags", std::to_string(tag_count)},
                   {"rounds", std::to_string(rounds)},
                   {"hardware_threads", std::to_string(hw_raw)},
                   {"scaling_curve",
                    can_scale ? "measured" : "refused: single hardware thread"}};
  report.throughput_unit = "tags_per_sec";

  const auto bench_start = std::chrono::steady_clock::now();
  double serial_tags_per_sec = 0.0;
  std::vector<engine::Fix> serial_fixes;
  for (const int workers : worker_counts) {
    engine::EngineConfig config;
    config.parallel_workers = workers;
    config.min_refresh_interval_s = 1000.0;  // grid built once, then cached
    engine::LocalizationEngine engine(deployment, config);
    engine.set_reference_ids(reference_ids);
    for (const auto id : tags) engine.track(id);

    auto fixes = engine.update(middleware, now);  // warm-up: builds the grid
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) fixes = engine.update(middleware, now);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(stop - start).count();

    const double mean_update_ms = 1e3 * seconds / rounds;
    const double tags_per_sec =
        static_cast<double>(tag_count) * rounds / std::max(1e-12, seconds);
    if (workers == 1) {
      serial_tags_per_sec = tags_per_sec;
      serial_fixes = fixes;
    }
    const bool identical = fixes_identical(fixes, serial_fixes);
    const double speedup = tags_per_sec / std::max(1e-12, serial_tags_per_sec);

    std::printf("%10d %8zu %16.3f %14.0f %8.2fx %12s\n", workers,
                engine.worker_count(), mean_update_ms, tags_per_sec, speedup,
                identical ? "yes" : "NO");
    csv.row({std::to_string(workers), std::to_string(engine.worker_count()),
             std::to_string(tag_count), std::to_string(rounds),
             std::to_string(mean_update_ms), std::to_string(tags_per_sec),
             std::to_string(speedup), identical ? "1" : "0"});
    if (!identical) {
      std::printf("\nDETERMINISM VIOLATION at workers=%d\n", workers);
      return 1;
    }
    report.results.emplace_back(
        "tags_per_sec_workers_" + std::to_string(workers), tags_per_sec);
    report.throughput = std::max(report.throughput, tags_per_sec);
  }

  report.wall_ms = 1e3 * std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - bench_start)
                             .count();
  const auto json_path = obs::write_bench_report(report);
  std::printf("\nCSV written to bench_out/perf_engine_batch.csv\n");
  std::printf("JSON report written to %s\n", json_path.string().c_str());
  return 0;
}
