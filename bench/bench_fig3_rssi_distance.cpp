// Reproduces Fig. 3: the relationship between distance and RSSI.
// For each distance 1..20 m the tag's RSSI is measured 20 times; the plot
// shows the measured mean together with the min/max envelope and the
// theoretical (free-space, inverse-square) curve.
//
// Paper shape targets:
//   * the measured curve decreases overall but "the change of RSSI values
//     is not as smooth as expected" — zig-zag around the theoretical curve;
//   * a visible min/max spread at each distance;
//   * values spanning roughly -60 to -100 dBm over 0-20 m.

#include <cmath>
#include <cstdio>
#include <vector>

#include "env/environment.h"
#include "eval/report.h"
#include "rf/channel.h"
#include "rf/pathloss.h"
#include "support/ascii_chart.h"
#include "support/csv.h"
#include "support/stats.h"

int main() {
  using namespace vire;

  std::printf("=== Fig. 3: RSSI vs distance (measured vs theoretical) ===\n\n");

  // One reader in the Env2 hall; the tag walks away from it along a line.
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv2Spacious);
  rf::RfChannel channel(environment.extent(), environment.surfaces(),
                        environment.channel_config, /*seed=*/33);
  const geom::Vec2 reader_pos{-4.5, 0.5};
  const int reader = channel.add_reader(reader_pos);

  const auto theoretical =
      rf::make_free_space_model(environment.channel_config.rssi_at_1m_dbm);

  support::Rng rng(2007);
  constexpr int kSamplesPerPoint = 20;  // as in the paper

  std::vector<double> xs, mean_series, min_series, max_series, theory_series;
  support::CsvWriter csv("bench_out/fig3_rssi_distance.csv");
  csv.header({"distance_m", "measured_mean_dbm", "measured_min_dbm",
              "measured_max_dbm", "theoretical_dbm"});

  for (double d = 1.0; d <= 20.0; d += 0.5) {
    const geom::Vec2 tag_pos{reader_pos.x + d, reader_pos.y};
    support::RunningStats stats;
    for (int s = 0; s < kSamplesPerPoint; ++s) {
      stats.add(channel.sample_rssi_dbm(reader, tag_pos, rng));
    }
    xs.push_back(d);
    mean_series.push_back(stats.mean());
    min_series.push_back(stats.min());
    max_series.push_back(stats.max());
    theory_series.push_back(theoretical->mean_rssi_dbm(d));
    csv.row_numeric({d, stats.mean(), stats.min(), stats.max(),
                     theoretical->mean_rssi_dbm(d)});
  }

  support::ChartOptions chart;
  chart.title = "Fig. 3 — RSSI vs distance";
  chart.x_label = "distance (m)";
  chart.y_label = "RSSI (dBm)";
  chart.height = 24;
  std::printf("%s\n",
              support::render_line_chart(
                  xs,
                  {{"measured mean", '*', mean_series},
                   {"measured min", '.', min_series},
                   {"measured max", '\'', max_series},
                   {"theoretical", '-', theory_series}},
                  chart)
                  .c_str());

  // Shape checks.
  std::vector<eval::ShapeCheck> checks;
  const auto fit = support::fit_line(xs, mean_series);
  checks.push_back({"measured RSSI decreases with distance (negative trend)",
                    fit.slope < -0.5,
                    "slope " + eval::fixed(fit.slope, 2) + " dB/m"});

  // Zig-zag: count local non-monotonic steps of the measured mean.
  int reversals = 0;
  for (std::size_t i = 2; i < mean_series.size(); ++i) {
    const double d1 = mean_series[i - 1] - mean_series[i - 2];
    const double d2 = mean_series[i] - mean_series[i - 1];
    if (d1 * d2 < 0.0) ++reversals;
  }
  checks.push_back({"measured curve zig-zags (not smooth like the theory)",
                    reversals >= 5, std::to_string(reversals) + " reversals"});

  double max_spread = 0.0, mean_spread = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double spread = max_series[i] - min_series[i];
    max_spread = std::max(max_spread, spread);
    mean_spread += spread;
  }
  mean_spread /= static_cast<double>(xs.size());
  checks.push_back({"visible min/max envelope at each distance",
                    mean_spread > 1.0 && max_spread < 30.0,
                    "mean spread " + eval::fixed(mean_spread, 1) + " dB"});

  checks.push_back({"values span roughly -60..-100 dBm",
                    mean_series.front() > -75.0 && mean_series.back() < -80.0 &&
                        mean_series.back() > -110.0,
                    "near " + eval::fixed(mean_series.front(), 1) + ", far " +
                        eval::fixed(mean_series.back(), 1) + " dBm"});

  // The measured mean deviates from the theoretical curve (multipath), but
  // tracks it within a sane band.
  double max_dev = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    max_dev = std::max(max_dev, std::abs(mean_series[i] - theory_series[i]));
  }
  checks.push_back({"measured deviates from theoretical (multipath ripple)",
                    max_dev > 2.0 && max_dev < 25.0,
                    "max deviation " + eval::fixed(max_dev, 1) + " dB"});

  std::printf("%s", eval::render_checks(checks).c_str());
  std::printf("\nCSV written to bench_out/fig3_rssi_distance.csv\n");
  return 0;
}
