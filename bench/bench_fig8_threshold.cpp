// Reproduces Fig. 8: the impact of the elimination threshold (Env3,
// N^2 ~ 900, fixed-threshold mode, non-boundary tags).
//
// Paper shape targets:
//   * U-shaped curve: error rises for very small thresholds (the real
//     position is "swept away") and for large thresholds (noisy virtual
//     tags are selected);
//   * the minimum sits near 1-1.5 dB.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "eval/report.h"
#include "eval/runner.h"
#include "support/ascii_chart.h"
#include "support/csv.h"

namespace {
int trials_from_env(int fallback) {
  if (const char* s = std::getenv("VIRE_TRIALS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}
}  // namespace

int main() {
  using namespace vire;

  const int trials = trials_from_env(30);
  std::printf("=== Fig. 8: threshold vs accuracy (Env3, fixed threshold) ===\n");
  std::printf("trials per point: %d\n\n", trials);

  const auto specs = eval::paper_tracking_tags();
  std::vector<geom::Vec2> positions;
  std::vector<bool> boundary;
  for (const auto& s : specs) {
    positions.push_back(s.position);
    boundary.push_back(s.boundary);
  }

  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv3Office);

  // Dense sampling over the paper's 0-4 dB range, coarser out to 12 dB to
  // expose the right branch of the U (our simulated Env3 has ~1.5 dB of
  // interpolation mismatch, which shifts the whole curve right relative to
  // the paper's testbed).
  std::vector<double> thresholds;
  for (double t = 0.25; t <= 4.01; t += 0.25) thresholds.push_back(t);
  for (double t = 4.5; t <= 12.01; t += 0.5) thresholds.push_back(t);

  std::vector<double> error_series;
  support::CsvWriter csv("bench_out/fig8_threshold.csv");
  csv.header({"threshold_db", "nonboundary_error_m", "ci95_m"});

  for (double threshold : thresholds) {
    support::RunningStats stats;
    for (int trial = 0; trial < trials; ++trial) {
      eval::ObservationOptions options;
      options.seed = 424242 + static_cast<std::uint64_t>(trial) * 0x9e3779b9ULL;
      const auto obs = eval::observe_testbed(environment, positions, options);

      core::VireConfig config = core::recommended_vire_config();
      config.elimination.mode = core::ThresholdMode::kFixed;
      config.elimination.fixed_threshold_db = threshold;
      const auto errs = eval::vire_errors(obs, config, options.deployment);
      for (std::size_t i = 0; i < errs.size(); ++i) {
        if (!boundary[i] && !std::isnan(errs[i])) stats.add(errs[i]);
      }
    }
    error_series.push_back(stats.mean());
    csv.row_numeric({threshold, stats.mean(), stats.ci95_halfwidth()});
    std::printf("  threshold %.2f dB -> non-boundary error %.3f m (±%.3f)\n",
                threshold, stats.mean(), stats.ci95_halfwidth());
  }

  support::ChartOptions chart;
  chart.title = "Fig. 8 — threshold vs estimation error";
  chart.x_label = "threshold (dB)";
  chart.y_label = "estimation error (m)";
  chart.y_from_zero = true;
  std::printf("\n%s\n", support::render_line_chart(
                            thresholds, {{"VIRE", '*', error_series}}, chart)
                            .c_str());

  // Shape checks.
  std::size_t best = 0;
  for (std::size_t i = 0; i < error_series.size(); ++i) {
    if (error_series[i] < error_series[best]) best = i;
  }
  const double best_threshold = thresholds[best];

  // The U-shape is the paper's claim; the minimum's absolute location is a
  // property of the channel's roughness scale. In the authors' testbed it
  // fell at 1-1.5 dB; our simulated Env3 has ~1.5 dB of interpolation
  // mismatch which shifts the optimum to ~2-4 dB (see EXPERIMENTS.md).
  std::vector<eval::ShapeCheck> checks;
  checks.push_back({"minimum is interior (true U-shape, not monotonic)",
                    best > 0 && best + 1 < thresholds.size(),
                    "minimum at " + eval::fixed(best_threshold, 2) + " dB"});
  checks.push_back({"very small thresholds increase error (position swept)",
                    error_series.front() > 1.2 * error_series[best],
                    eval::fixed(error_series.front()) + " m at " +
                        eval::fixed(thresholds.front(), 2) + " dB"});
  checks.push_back({"large thresholds increase error (noisy tags selected)",
                    error_series.back() > 1.15 * error_series[best],
                    eval::fixed(error_series.back()) + " m at " +
                        eval::fixed(thresholds.back(), 2) + " dB"});
  checks.push_back({"optimum within a few dB of the paper's 1-1.5 dB",
                    best_threshold >= 0.75 && best_threshold <= 5.0,
                    "minimum at " + eval::fixed(best_threshold, 2) + " dB"});
  std::printf("%s", eval::render_checks(checks).c_str());
  std::printf("\nCSV written to bench_out/fig8_threshold.csv\n");
  return 0;
}
