// Reproduces Fig. 2(b): LANDMARC estimation error for the 9 tracking tags
// in the three environments (the paper's LANDMARC-revisited experiment).
//
// Paper shape targets:
//   * Env3 (closed office) errors are clearly the largest;
//   * Tag 1 (well covered by four nearby reference tags) has near-minimal
//     error in Env1 and Env2;
//   * boundary tags (6-9) err more than interior tags (1-5) on average;
//   * Tag 9 (outside the reference perimeter) has the worst accuracy.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/report.h"
#include "eval/runner.h"
#include "support/ascii_chart.h"
#include "support/csv.h"

namespace {
int trials_from_env(int fallback) {
  if (const char* s = std::getenv("VIRE_TRIALS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}
}  // namespace

int main() {
  using namespace vire;

  const int trials = trials_from_env(40);
  std::printf("=== Fig. 2(b): LANDMARC estimation error, 9 tags x 3 environments ===\n");
  std::printf("trials per environment: %d\n\n", trials);

  const auto specs = eval::paper_tracking_tags();
  std::vector<geom::Vec2> positions;
  for (const auto& s : specs) positions.push_back(s.position);

  support::CsvWriter csv("bench_out/fig2_landmarc.csv");
  csv.header({"environment", "tag", "boundary", "landmarc_error_m", "ci95_m"});

  // errors[env][tag]
  std::vector<std::vector<support::RunningStats>> errors;
  for (auto which : env::all_paper_environments()) {
    const env::Environment environment = env::make_paper_environment(which);
    std::vector<support::RunningStats> per_tag(specs.size());
    for (int trial = 0; trial < trials; ++trial) {
      eval::ObservationOptions options;
      options.seed = 20030314 + static_cast<std::uint64_t>(trial) * 0x9e3779b9ULL;
      const auto obs = eval::observe_testbed(environment, positions, options);
      const auto errs = eval::landmarc_errors(obs, landmarc::LandmarcConfig{});
      for (std::size_t i = 0; i < errs.size(); ++i) {
        if (!std::isnan(errs[i])) per_tag[i].add(errs[i]);
      }
    }
    errors.push_back(std::move(per_tag));
  }

  eval::TextTable table({"tag", "type", "Env1 (m)", "Env2 (m)", "Env3 (m)"});
  std::vector<std::string> categories;
  std::vector<support::Series> series = {{"Env1", '1', {}}, {"Env2", '2', {}},
                                         {"Env3", '3', {}}};
  const auto envs = env::all_paper_environments();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    table.add_row({specs[i].name, specs[i].boundary ? "boundary" : "interior",
                   eval::fixed(errors[0][i].mean()), eval::fixed(errors[1][i].mean()),
                   eval::fixed(errors[2][i].mean())});
    categories.push_back(specs[i].name);
    for (std::size_t e = 0; e < 3; ++e) {
      series[e].y.push_back(errors[e][i].mean());
      csv.row({std::string(env::name(envs[e])), specs[i].name,
               specs[i].boundary ? "1" : "0",
               support::format_number(errors[e][i].mean()),
               support::format_number(errors[e][i].ci95_halfwidth())});
    }
  }
  std::printf("%s\n", table.render().c_str());

  support::ChartOptions chart;
  chart.title = "Fig. 2(b) — LANDMARC estimation error per tracking tag";
  chart.x_label = "estimation error (m)";
  std::printf("%s\n", support::render_bar_chart(categories, series, chart).c_str());

  // Shape checks.
  auto env_mean = [&](std::size_t e) {
    double sum = 0;
    for (const auto& s : errors[e]) sum += s.mean();
    return sum / static_cast<double>(errors[e].size());
  };
  auto subset_mean = [&](std::size_t e, bool boundary) {
    double sum = 0;
    int n = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].boundary != boundary) continue;
      sum += errors[e][i].mean();
      ++n;
    }
    return sum / n;
  };

  std::vector<eval::ShapeCheck> checks;
  checks.push_back({"Env3 has the largest mean LANDMARC error",
                    env_mean(2) > env_mean(0) && env_mean(2) > env_mean(1),
                    "Env1 " + eval::fixed(env_mean(0)) + ", Env2 " +
                        eval::fixed(env_mean(1)) + ", Env3 " +
                        eval::fixed(env_mean(2)) + " m"});
  bool tag1_small = true;
  for (std::size_t e = 0; e < 2; ++e) {
    double interior_mean = 0.0;
    for (std::size_t i = 0; i < 5; ++i) interior_mean += errors[e][i].mean();
    interior_mean /= 5.0;
    if (errors[e][0].mean() > 1.25 * interior_mean) tag1_small = false;
  }
  checks.push_back({"Tag1 (well covered) is not worse than the interior average "
                    "in Env1/Env2",
                    tag1_small, ""});
  bool boundary_worse = true;
  for (std::size_t e = 0; e < 3; ++e) {
    if (subset_mean(e, true) <= subset_mean(e, false)) boundary_worse = false;
  }
  checks.push_back({"boundary tags err more than interior tags in every environment",
                    boundary_worse, ""});
  bool tag9_worst = true;
  for (std::size_t e = 0; e < 3; ++e) {
    for (std::size_t i = 0; i + 1 < specs.size(); ++i) {
      if (errors[e][8].mean() < errors[e][i].mean()) tag9_worst = false;
    }
  }
  checks.push_back({"Tag9 (outside the perimeter) has the worst accuracy", tag9_worst,
                    ""});
  std::printf("%s", eval::render_checks(checks).c_str());
  std::printf("\nCSV written to bench_out/fig2_landmarc.csv\n");
  return 0;
}
