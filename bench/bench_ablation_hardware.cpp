// Ablation: equipment generations (paper Secs. 3.1-3.2).
// The original LANDMARC hardware had three pitfalls the improved RF Code
// equipment fixed: (a) no direct RSSI — only 8 discrete power levels,
// (b) 7.5 s average beacon interval (vs 2 s), (c) visibly different per-tag
// behaviour (mitigated by individual calibration). This bench replays
// LANDMARC under each handicap and shows how much error each one added —
// and that per-tag calibration recovers most of (c).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/report.h"
#include "eval/runner.h"
#include "landmarc/calibration.h"
#include "landmarc/power_level.h"
#include "support/csv.h"

namespace {
int trials_from_env(int fallback) {
  if (const char* s = std::getenv("VIRE_TRIALS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}
}  // namespace

int main() {
  using namespace vire;

  const int trials = trials_from_env(20);
  std::printf("=== Ablation: equipment generations (LANDMARC, Env2) ===\n");
  std::printf("trials per row: %d\n\n", trials);

  const auto specs = eval::paper_tracking_tags();
  std::vector<geom::Vec2> positions;
  for (const auto& s : specs) positions.push_back(s.position);
  const auto which = env::PaperEnvironment::kEnv2Spacious;
  const env::Environment environment = env::make_paper_environment(which);

  struct Row {
    std::string name;
    bool legacy_timing;       // 7.5 s beacons + coarse tag behaviour
    bool power_levels;        // 8-level quantisation instead of RSSI
    bool calibrate;           // per-tag calibration table applied
  };
  const std::vector<Row> rows = {
      {"improved equipment (2 s, RSSI)", false, false, false},
      {"+ power levels only", false, true, false},
      {"legacy timing & tag spread", true, false, false},
      {"legacy + power levels (original LANDMARC)", true, true, false},
      {"legacy + power levels + calibration", true, true, true},
  };

  support::CsvWriter csv("bench_out/ablation_hardware.csv");
  csv.header({"configuration", "mean_error_m"});

  std::vector<double> means;
  eval::TextTable table({"configuration", "mean error (m)"});
  for (const auto& row : rows) {
    support::RunningStats errors;
    for (int trial = 0; trial < trials; ++trial) {
      eval::ObservationOptions options;
      options.seed = 88000 + static_cast<std::uint64_t>(trial) * 0x9e3779b9ULL;
      options.legacy_equipment = row.legacy_timing;
      options.survey_duration_s = 60.0;
      const auto obs = eval::observe_testbed(environment, positions, options);

      // Optional per-tag calibration. Reference tags sit at known
      // positions, so each tag's behaviour bias can be estimated in place:
      // its measured deviation from the mean of its grid neighbours (the
      // spatial field is smooth at 1 m scale, so a persistent offset across
      // readers is tag behaviour, not geography). The 0.7 factor shrinks
      // the estimate toward zero to avoid overcorrecting noise.
      landmarc::CalibrationTable calibration;
      if (row.calibrate) {
        const env::Deployment deployment(options.deployment);
        const auto& grid = deployment.reference_grid();
        for (std::size_t j = 0; j < obs.reference_rssi.size(); ++j) {
          const auto idx = grid.from_linear(j);
          double deviation = 0.0;
          int used = 0;
          for (const auto& n : grid.neighbors4(idx)) {
            const std::size_t nj = grid.to_linear(n);
            for (std::size_t k = 0; k < obs.reference_rssi[j].size(); ++k) {
              if (std::isnan(obs.reference_rssi[j][k]) ||
                  std::isnan(obs.reference_rssi[nj][k])) {
                continue;
              }
              deviation += obs.reference_rssi[j][k] - obs.reference_rssi[nj][k];
              ++used;
            }
          }
          calibration.set_bias(static_cast<sim::TagId>(j),
                               used > 0 ? 0.7 * deviation / used : 0.0);
        }
      }

      landmarc::LandmarcLocalizer localizer;
      landmarc::PowerLevelQuantizer quantizer;
      std::vector<landmarc::Reference> refs;
      for (std::size_t j = 0; j < obs.reference_positions.size(); ++j) {
        sim::RssiVector rssi = obs.reference_rssi[j];
        if (row.calibrate) {
          rssi = calibration.apply(static_cast<sim::TagId>(j), rssi);
        }
        if (row.power_levels) rssi = quantizer.quantize_vector(rssi);
        refs.push_back({obs.reference_positions[j], std::move(rssi)});
      }
      localizer.set_references(std::move(refs));
      for (std::size_t t = 0; t < obs.tracking_rssi.size(); ++t) {
        sim::RssiVector rssi = obs.tracking_rssi[t];
        if (row.power_levels) rssi = quantizer.quantize_vector(rssi);
        const auto result = localizer.locate(rssi);
        if (result) {
          errors.add(geom::distance(result->position, obs.tracking_positions[t]));
        }
      }
    }
    means.push_back(errors.mean());
    table.add_row({row.name, eval::fixed(errors.mean())});
    csv.row({row.name, support::format_number(errors.mean())});
  }
  std::printf("%s\n", table.render().c_str());

  std::vector<eval::ShapeCheck> checks;
  checks.push_back({"power-level quantisation degrades LANDMARC",
                    means[1] > means[0],
                    eval::fixed(means[0]) + " -> " + eval::fixed(means[1]) + " m"});
  checks.push_back({"legacy timing/tag spread degrades LANDMARC",
                    means[2] > means[0],
                    eval::fixed(means[0]) + " -> " + eval::fixed(means[2]) + " m"});
  checks.push_back({"original-LANDMARC stack is the worst configuration",
                    means[3] >= means[0] && means[3] >= means[1] && means[3] >= means[2],
                    eval::fixed(means[3]) + " m"});
  checks.push_back({"per-tag calibration recovers part of the legacy penalty",
                    means[4] < means[3],
                    eval::fixed(means[3]) + " -> " + eval::fixed(means[4]) + " m"});
  std::printf("%s", eval::render_checks(checks).c_str());
  std::printf("\nCSV written to bench_out/ablation_hardware.csv\n");
  return 0;
}
