// Reproduces Fig. 6(a-c): per-tag estimation error of VIRE vs LANDMARC in
// the three locales, plus the paper's headline numbers — improvement range
// per environment and worst/average non-boundary VIRE error.
//
// Paper targets (shape, not absolute):
//   Env1: reduction 28-72%; non-boundary worst 0.21 m, avg 0.14 m
//   Env2: reduction 17-69%; non-boundary worst 0.23 m, avg 0.17 m
//   Env3: reduction 27-73%; non-boundary worst 0.47 m, avg 0.29 m
//   VIRE < LANDMARC for every tag in every environment.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/report.h"
#include "eval/runner.h"
#include "obs/metrics.h"
#include "support/ascii_chart.h"
#include "support/csv.h"

namespace {

int env_trials_from_env(int fallback) {
  if (const char* s = std::getenv("VIRE_TRIALS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}

}  // namespace

int main() {
  using namespace vire;

  obs::MetricsRegistry metrics;
  eval::ComparisonOptions options;
  options.trials = env_trials_from_env(40);
  options.base_seed = 20070901;  // ICPP 2007
  options.metrics = &metrics;
  // options.vire defaults to recommended_vire_config(): n=10 (N^2 = 961 ~
  // the paper's 900), linear interpolation, adaptive threshold.

  std::printf("=== Fig. 6: VIRE vs LANDMARC, per tracking tag, 3 environments ===\n");
  std::printf("trials per environment: %d\n\n", options.trials);

  support::CsvWriter csv("bench_out/fig6_comparison.csv");
  csv.header({"environment", "tag", "boundary", "landmarc_error_m", "vire_error_m",
              "improvement_pct"});

  std::vector<eval::ShapeCheck> checks;
  const struct {
    env::PaperEnvironment which;
    double paper_min_impr, paper_max_impr;
    double paper_worst_nb, paper_avg_nb;
  } targets[] = {
      {env::PaperEnvironment::kEnv1SemiOpen, 28, 72, 0.21, 0.14},
      {env::PaperEnvironment::kEnv2Spacious, 17, 69, 0.23, 0.17},
      {env::PaperEnvironment::kEnv3Office, 27, 73, 0.47, 0.29},
  };

  std::vector<double> env_vire_avg;
  for (const auto& target : targets) {
    const eval::ComparisonSummary summary =
        eval::run_paper_comparison(target.which, options);
    std::printf("%s\n", eval::render_comparison(summary).c_str());

    // Bar chart in the style of Fig. 6.
    std::vector<std::string> categories;
    support::Series lm{"LANDMARC", 'L', {}};
    support::Series vr{"VIRE", 'V', {}};
    for (const auto& tag : summary.tags) {
      categories.push_back(tag.name);
      lm.y.push_back(tag.landmarc_error.mean());
      vr.y.push_back(tag.vire_error.mean());
      csv.row({std::string(env::name(target.which)), tag.name,
               tag.boundary ? "1" : "0",
               support::format_number(tag.landmarc_error.mean()),
               support::format_number(tag.vire_error.mean()),
               support::format_number(tag.improvement_percent())});
    }
    support::ChartOptions chart;
    chart.title = std::string("Fig. 6 — ") + std::string(env::name(target.which));
    chart.x_label = "estimation error (m)";
    std::printf("%s\n", support::render_bar_chart(categories, {vr, lm}, chart).c_str());

    // Shape checks against the paper's claims. Reproduction is shape-level:
    // our simulated LANDMARC baseline is cleaner than the authors' real
    // hardware (see EXPERIMENTS.md), so the per-tag criterion is a majority
    // of wins plus an overall win, not a win at literally every position.
    const std::string env_name(env::name(target.which));
    int wins = 0;
    for (const auto& tag : summary.tags) {
      if (tag.vire_error.mean() < tag.landmarc_error.mean()) ++wins;
    }
    checks.push_back({env_name + ": VIRE beats LANDMARC overall (all-tag mean)",
                      summary.mean_error(true) < summary.mean_error(false),
                      "LANDMARC " + eval::fixed(summary.mean_error(false)) +
                          " m vs VIRE " + eval::fixed(summary.mean_error(true)) +
                          " m"});
    checks.push_back({env_name + ": VIRE wins at a majority of tag positions",
                      wins >= 5, std::to_string(wins) + "/9 positions"});
    const double max_impr = summary.max_improvement_percent();
    checks.push_back(
        {env_name + ": best-tag improvement reaches paper's band (" +
             eval::fixed(target.paper_min_impr, 0) + "-" +
             eval::fixed(target.paper_max_impr, 0) + "%)",
         max_impr >= target.paper_min_impr,
         "measured max " + eval::fixed(max_impr, 1) + "%"});
    const double avg_nb = summary.mean_error(true, true);
    checks.push_back({env_name + ": non-boundary VIRE avg within 3x of paper (" +
                          eval::fixed(target.paper_avg_nb, 2) + " m)",
                      avg_nb < 3.0 * target.paper_avg_nb,
                      "measured " + eval::fixed(avg_nb, 3) + " m"});
    env_vire_avg.push_back(avg_nb);
  }

  checks.push_back({"Env3 (closed office) is the hardest locale for VIRE",
                    env_vire_avg.size() == 3 &&
                        env_vire_avg[2] >= env_vire_avg[0] &&
                        env_vire_avg[2] >= env_vire_avg[1],
                    ""});

  std::printf("%s", eval::render_checks(checks).c_str());
  std::printf("\npipeline metrics (all 3 environments):\n%s",
              eval::render_metrics(metrics).c_str());
  std::printf("\nCSV written to bench_out/fig6_comparison.csv\n");
  return 0;
}
