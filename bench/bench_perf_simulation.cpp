// Performance: the discrete-event simulation substrate — beacon throughput,
// channel evaluation cost (ray tracing orders, aperture sampling), and the
// Monte-Carlo trial driver's thread scaling.

#include <benchmark/benchmark.h>

#include "env/deployment.h"
#include "env/environment.h"
#include "rf/channel.h"
#include "sim/simulator.h"
#include "support/thread_pool.h"

namespace {

using namespace vire;

void BM_ChannelMeanRssi(benchmark::State& state) {
  env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv3Office);
  environment.channel_config.multipath.max_reflection_order =
      static_cast<int>(state.range(0));
  rf::RfChannel channel(environment.extent(), environment.surfaces(),
                        environment.channel_config, 1);
  channel.add_reader({-0.7, -0.7});
  double x = 0.0;
  for (auto _ : state) {
    x = x >= 3.0 ? 0.0 : x + 0.013;
    benchmark::DoNotOptimize(channel.mean_rssi_dbm(0, {x, 1.5}));
  }
  state.SetLabel("reflection order " + std::to_string(state.range(0)));
}
BENCHMARK(BM_ChannelMeanRssi)->Arg(0)->Arg(1)->Arg(2);

void BM_SimulatorBeaconThroughput(benchmark::State& state) {
  const int tags = static_cast<int>(state.range(0));
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv2Spacious);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  for (auto _ : state) {
    state.PauseTiming();
    sim::RfidSimulator simulator(environment, deployment, {});
    support::Rng rng(7);
    for (int i = 0; i < tags; ++i) {
      simulator.add_tag({rng.uniform(0.0, 3.0), rng.uniform(0.0, 3.0)});
    }
    state.ResumeTiming();
    simulator.run_for(60.0);  // ~30 beacons x 4 readers per tag
    benchmark::DoNotOptimize(simulator.now());
  }
  state.SetItemsProcessed(state.iterations() * tags * 30);
  state.counters["tags"] = tags;
}
BENCHMARK(BM_SimulatorBeaconThroughput)->Arg(16)->Arg(64)->Arg(256);

void BM_ParallelTrialScaling(benchmark::State& state) {
  // Thread scaling of embarrassingly-parallel Monte-Carlo work (the shape
  // every evaluation driver in eval/runner.cpp has).
  const auto threads = static_cast<std::size_t>(state.range(0));
  support::ThreadPool pool(threads);
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  for (auto _ : state) {
    support::parallel_for(
        0, 16,
        [&](std::size_t trial) {
          sim::SimulatorConfig config;
          config.seed = 1000 + trial;
          sim::RfidSimulator simulator(environment, deployment, config);
          simulator.add_reference_tags();
          simulator.run_for(20.0);
          benchmark::DoNotOptimize(simulator.rssi_vector(0));
        },
        &pool);
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ParallelTrialScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
