// Reproduces Fig. 4: RF interference among densely packed tags.
// 20 active tags are measured 2 m from a reader under two protocols:
//   "independence" — tags are placed at the spot ONE AT A TIME (sequential),
//   "interference" — all 20 tags are packed together simultaneously.
// The paper observes near-identical RSSI in the first case and wild scatter
// (one snapshot shown) in the second — the reason VIRE densifies the grid
// with virtual rather than real tags.

#include <cmath>
#include <cstdio>
#include <vector>

#include "env/deployment.h"
#include "env/environment.h"
#include "eval/report.h"
#include "sim/simulator.h"
#include "support/ascii_chart.h"
#include "support/csv.h"
#include "support/stats.h"

int main() {
  using namespace vire;

  std::printf("=== Fig. 4: interference of 20 packed tags vs sequential tags ===\n\n");

  constexpr int kTagCount = 20;
  const geom::Vec2 spot{1.5, 1.5};
  const double reader_distance = 2.0;

  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv2Spacious);
  // A single reader 2 m from the spot: realise it with a custom deployment
  // whose grid is irrelevant (we only read the simulator's channel).
  env::DeploymentConfig dep_config;
  dep_config.origin = {spot.x - reader_distance - 1.0, spot.y - 1.0};
  const env::Deployment deployment(dep_config);

  std::vector<double> independence, interference;
  std::vector<double> tag_numbers;

  // The room (channel realisation) is identical across both protocols —
  // only the tags change, exactly as in the paper's procedure.
  constexpr std::uint64_t kRoomSeed = 987654321;

  // Protocol A: sequential placement — each tag alone at the spot, measured
  // over a 30 s window (the steady per-tag reading).
  for (int i = 0; i < kTagCount; ++i) {
    sim::SimulatorConfig config;
    config.seed = 555 + static_cast<std::uint64_t>(i);
    config.channel_seed = kRoomSeed;
    sim::RfidSimulator simulator(environment, deployment, config);
    const sim::TagId id = simulator.add_tag(spot);
    simulator.run_for(30.0);
    const auto rssi = simulator.rssi_vector(id);
    independence.push_back(rssi[0]);
    tag_numbers.push_back(i + 1);
  }

  // Protocol B: all 20 tags packed within a 30 cm box at the spot; the
  // paper plots ONE SNAPSHOT of the interference-corrupted readings, so the
  // window covers roughly a single beacon per tag.
  {
    sim::SimulatorConfig config;
    config.seed = 999;
    config.channel_seed = kRoomSeed;
    config.middleware.window_s = 2.5;  // ~one beacon per tag
    sim::RfidSimulator simulator(environment, deployment, config);
    support::Rng placement(4242);
    std::vector<sim::TagId> ids;
    for (int i = 0; i < kTagCount; ++i) {
      const geom::Vec2 jitter{placement.uniform(-0.15, 0.15),
                              placement.uniform(-0.15, 0.15)};
      ids.push_back(simulator.add_tag(spot + jitter));
    }
    simulator.run_for(30.0);
    for (const sim::TagId id : ids) {
      interference.push_back(simulator.rssi_vector(id)[0]);
    }
  }

  support::CsvWriter csv("bench_out/fig4_interference.csv");
  csv.header({"tag", "independence_dbm", "interference_dbm"});
  for (int i = 0; i < kTagCount; ++i) {
    csv.row_numeric({static_cast<double>(i + 1), independence[static_cast<std::size_t>(i)],
                     interference[static_cast<std::size_t>(i)]});
  }

  support::ChartOptions chart;
  chart.title = "Fig. 4 — RSSI of 20 tags at 2 m";
  chart.x_label = "tag number";
  chart.y_label = "RSSI (dBm)";
  chart.connect = false;
  chart.height = 22;
  std::printf("%s\n", support::render_line_chart(
                          tag_numbers,
                          {{"independence", 'o', independence},
                           {"interference", 'x', interference}},
                          chart)
                          .c_str());

  const auto ind = support::summarize(independence);
  const auto inf = support::summarize(interference);
  std::printf("  independence: mean %.1f dBm, spread (max-min) %.1f dB\n", ind.mean,
              ind.max - ind.min);
  std::printf("  interference: mean %.1f dBm, spread (max-min) %.1f dB\n\n", inf.mean,
              inf.max - inf.min);

  std::vector<vire::eval::ShapeCheck> checks;
  checks.push_back({"sequential tags show near-identical RSSI (small spread)",
                    (ind.max - ind.min) < 5.0,
                    "spread " + eval::fixed(ind.max - ind.min, 1) + " dB"});
  checks.push_back({"packed tags scatter far more (interference)",
                    (inf.max - inf.min) > 3.0 * (ind.max - ind.min),
                    "spread " + eval::fixed(inf.max - inf.min, 1) + " dB"});
  checks.push_back({"interference mostly degrades RSSI (mean drops)",
                    inf.mean < ind.mean, ""});
  checks.push_back({"interference reaches deep losses (toward -100 dBm)",
                    inf.min < ind.min - 8.0,
                    "worst " + eval::fixed(inf.min, 1) + " dBm"});
  std::printf("%s", eval::render_checks(checks).c_str());
  std::printf("\nCSV written to bench_out/fig4_interference.csv\n");
  return 0;
}
