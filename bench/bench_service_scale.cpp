// Performance: sharded-service ingest throughput and query latency vs shard
// count. One captured simulator stream is replayed through the full service
// path (router -> shard queues -> worker threads -> engines) at each shard
// count; readings/s covers ingest+poll, and the p99 latency is measured on
// latest_fix() queries interleaved with the load.
//
// Honesty rules (docs/benchmarks.md): hardware_threads is reported raw, and
// on a single-hardware-thread machine the shard-count scaling curve is
// REFUSED — every shard worker would time-slice one core, so a "curve"
// would measure oversubscription, not sharding. Only shards=1 is measured
// there (that number is still meaningful: it is the service-path overhead
// over the bare engine).
//
// Env knobs: VIRE_TAGS (default 48), VIRE_ROUNDS (poll rounds, default 12),
// VIRE_QUERIES (queries per round, default 200).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "env/environment.h"
#include "obs/bench_report.h"
#include "service/sharded_service.h"
#include "sim/simulator.h"
#include "support/csv.h"
#include "support/rng.h"

namespace {

using namespace vire;

int env_int(const char* name, int fallback) {
  if (const char* s = std::getenv(name)) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}

}  // namespace

int main() {
  const int tag_count = env_int("VIRE_TAGS", 48);
  const int rounds = env_int("VIRE_ROUNDS", 12);
  const int queries = env_int("VIRE_QUERIES", 200);
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const bool can_scale = hw_raw > 1;

  std::printf("=== Sharded service throughput vs shard count ===\n");
  std::printf("tags: %d, poll rounds: %d, queries/round: %d, hardware threads: %u%s\n\n",
              tag_count, rounds, queries, hw_raw,
              hw_raw == 0 ? " (undetected)" : "");
  if (!can_scale) {
    std::printf(
        "NOTE: single hardware thread — shard workers would time-slice one\n"
        "core, so the shard scaling curve is refused; only shards=1 (the\n"
        "service-path overhead datum) is measured.\n\n");
  }

  // Capture one reading stream; every shard count replays the identical one.
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = 7;
  sim_config.middleware.window_s = 10.0;
  sim::RfidSimulator simulator(environment, deployment, sim_config);
  sim::ReadingRecorder recorder;
  simulator.set_interceptor(&recorder);
  const auto reference_ids = simulator.add_reference_tags();
  std::vector<sim::TagId> tags;
  std::uint64_t state = 0x243f6a8885a308d3ULL;
  for (int i = 0; i < tag_count; ++i) {
    const double x = -0.5 + 4.0 * (static_cast<double>(support::splitmix64(state) >> 11) /
                                   9007199254740992.0);
    const double y = -0.5 + 4.0 * (static_cast<double>(support::splitmix64(state) >> 11) /
                                   9007199254740992.0);
    tags.push_back(simulator.add_tag({x, y}));
  }
  simulator.run_for(40.0);
  const std::vector<sim::RssiReading> warmup = recorder.take();
  std::vector<std::vector<sim::RssiReading>> segments;
  std::vector<sim::SimTime> poll_times;
  for (int r = 0; r < rounds; ++r) {
    simulator.run_for(5.0);
    segments.push_back(recorder.take());
    poll_times.push_back(simulator.now());
  }
  std::size_t total_readings = warmup.size();
  for (const auto& s : segments) total_readings += s.size();

  std::vector<int> shard_counts = {1};
  if (can_scale) {
    for (int s = 2; static_cast<unsigned>(s) <= std::min(8u, hw_raw); s *= 2) {
      shard_counts.push_back(s);
    }
  }

  obs::BenchReport report;
  report.name = "service_scale";
  report.git_rev = VIRE_GIT_REV;
  report.config = {{"tags", std::to_string(tag_count)},
                   {"rounds", std::to_string(rounds)},
                   {"queries_per_round", std::to_string(queries)},
                   {"readings", std::to_string(total_readings)},
                   {"hardware_threads", std::to_string(hw_raw)},
                   {"scaling_curve",
                    can_scale ? "measured" : "refused: single hardware thread"}};
  report.throughput_unit = "readings_per_sec";

  support::CsvWriter csv("bench_out/service_scale.csv");
  csv.header({"shards", "readings_per_sec", "query_p99_us", "queue_drops"});
  std::printf("%8s %18s %14s %12s\n", "shards", "readings/sec", "query p99 us",
              "drops");

  const auto bench_start = std::chrono::steady_clock::now();
  for (const int shards : shard_counts) {
    service::ServiceConfig config;
    config.shards = shards;
    config.engine.min_refresh_interval_s = 10.0;
    config.middleware.window_s = 10.0;
    service::ShardedService service(deployment, config);
    service.set_reference_ids(reference_ids);
    for (const auto id : tags) service.track(id);

    std::vector<double> query_us;
    query_us.reserve(static_cast<std::size_t>(rounds) * queries);
    const auto start = std::chrono::steady_clock::now();
    service.ingest(warmup);
    for (int r = 0; r < rounds; ++r) {
      service.ingest(segments[static_cast<std::size_t>(r)]);
      (void)service.poll(poll_times[static_cast<std::size_t>(r)]);
      for (int q = 0; q < queries; ++q) {
        const auto t0 = std::chrono::steady_clock::now();
        (void)service.latest_fix(tags[static_cast<std::size_t>(q) % tags.size()]);
        query_us.push_back(1e6 * std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() - t0)
                                     .count());
      }
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double readings_per_sec =
        static_cast<double>(total_readings) / std::max(1e-12, seconds);
    std::sort(query_us.begin(), query_us.end());
    const double p99 =
        query_us[static_cast<std::size_t>(0.99 * (query_us.size() - 1))];

    std::printf("%8d %18.0f %14.2f %12llu\n", shards, readings_per_sec, p99,
                static_cast<unsigned long long>(service.dropped_batches()));
    csv.row({std::to_string(shards), std::to_string(readings_per_sec),
             std::to_string(p99), std::to_string(service.dropped_batches())});
    report.results.emplace_back("readings_per_sec_shards_" + std::to_string(shards),
                                readings_per_sec);
    report.results.emplace_back("query_p99_us_shards_" + std::to_string(shards),
                                p99);
    report.throughput = std::max(report.throughput, readings_per_sec);
  }

  report.wall_ms = 1e3 * std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - bench_start)
                             .count();
  const auto json_path = obs::write_bench_report(report);
  std::printf("\nCSV written to bench_out/service_scale.csv\n");
  std::printf("JSON report written to %s\n", json_path.string().c_str());
  return 0;
}
