// Ablation: VIRE's weighting factors (paper Sec. 4.3). Compares the
// combined w1*w2 weighting against w1-only, w2-only, uniform (plain
// centroid of survivors), and a sharpened w1 exponent, per environment.
// The paper introduces both factors "to improve the accuracy of VIRE" —
// this bench quantifies how much each contributes in each locale.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/report.h"
#include "eval/runner.h"
#include "support/csv.h"

namespace {
int trials_from_env(int fallback) {
  if (const char* s = std::getenv("VIRE_TRIALS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}
}  // namespace

int main() {
  using namespace vire;

  const int trials = trials_from_env(20);
  std::printf("=== Ablation: VIRE weighting factors (w1, w2) ===\n");
  std::printf("trials per cell: %d\n\n", trials);

  struct Variant {
    std::string name;
    core::WeightingMode mode;
    double w1_exponent;
  };
  const std::vector<Variant> variants = {
      {"w1*w2 (paper)", core::WeightingMode::kCombined, 1.0},
      {"w1 only", core::WeightingMode::kW1Only, 1.0},
      {"w2 only", core::WeightingMode::kW2Only, 1.0},
      {"uniform centroid", core::WeightingMode::kUniform, 1.0},
      {"w1^2 * w2", core::WeightingMode::kCombined, 2.0},
  };

  const auto specs = eval::paper_tracking_tags();
  std::vector<geom::Vec2> positions;
  for (const auto& s : specs) positions.push_back(s.position);

  support::CsvWriter csv("bench_out/ablation_weights.csv");
  csv.header({"variant", "environment", "mean_error_m"});

  eval::TextTable table({"variant", "Env1 (m)", "Env2 (m)", "Env3 (m)"});
  std::vector<double> combined_errors, uniform_errors;
  for (const auto& variant : variants) {
    std::vector<std::string> row = {variant.name};
    for (auto which : env::all_paper_environments()) {
      const env::Environment environment = env::make_paper_environment(which);
      support::RunningStats errors;
      for (int trial = 0; trial < trials; ++trial) {
        eval::ObservationOptions options;
        options.seed = 555000 + static_cast<std::uint64_t>(trial) * 0x9e3779b9ULL;
        const auto obs = eval::observe_testbed(environment, positions, options);
        core::VireConfig config = core::recommended_vire_config();
        config.weighting = variant.mode;
        config.w1_exponent = variant.w1_exponent;
        for (double e : eval::vire_errors(obs, config, options.deployment)) {
          if (!std::isnan(e)) errors.add(e);
        }
      }
      row.push_back(eval::fixed(errors.mean()));
      csv.row({variant.name, std::string(env::name(which)),
               support::format_number(errors.mean())});
      if (variant.mode == core::WeightingMode::kCombined && variant.w1_exponent == 1.0) {
        combined_errors.push_back(errors.mean());
      }
      if (variant.mode == core::WeightingMode::kUniform) {
        uniform_errors.push_back(errors.mean());
      }
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  std::vector<eval::ShapeCheck> checks;
  bool weighted_helps = true;
  for (std::size_t e = 0; e < combined_errors.size(); ++e) {
    if (combined_errors[e] > uniform_errors[e] * 1.05) weighted_helps = false;
  }
  checks.push_back({"combined w1*w2 never loses to the plain centroid",
                    weighted_helps, ""});
  std::printf("%s", eval::render_checks(checks).c_str());
  std::printf("\nCSV written to bench_out/ablation_weights.csv\n");
  return 0;
}
