// Reproduces Fig. 7: localization accuracy vs the number of virtual
// reference tags (Env3, non-boundary tags).
//
// Paper shape targets:
//   * error improves sharply as N^2 grows toward ~600;
//   * only marginal improvement between ~600 and ~900;
//   * a plateau beyond ~900 (no further improvement);
//   * the paper consequently fixes N^2 = 900 (we use n = 10 -> 961).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "eval/report.h"
#include "eval/runner.h"
#include "support/ascii_chart.h"
#include "support/csv.h"

namespace {
int trials_from_env(int fallback) {
  if (const char* s = std::getenv("VIRE_TRIALS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}
}  // namespace

int main() {
  using namespace vire;

  const int trials = trials_from_env(30);
  std::printf("=== Fig. 7: number of virtual reference tags vs accuracy (Env3) ===\n");
  std::printf("trials per point: %d\n\n", trials);

  const auto specs = eval::paper_tracking_tags();
  std::vector<geom::Vec2> positions;
  std::vector<bool> boundary;
  for (const auto& s : specs) {
    positions.push_back(s.position);
    boundary.push_back(s.boundary);
  }

  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv3Office);

  // Subdivision n gives (3n+1)^2 virtual tags on the 4x4 testbed.
  const std::vector<int> subdivisions = {1, 2, 3, 4, 5, 6, 8, 10, 12, 13};

  std::vector<double> n2_series, error_series;
  support::CsvWriter csv("bench_out/fig7_density.csv");
  csv.header({"subdivision", "virtual_tags_n2", "nonboundary_error_m", "ci95_m"});

  for (int n : subdivisions) {
    support::RunningStats stats;
    for (int trial = 0; trial < trials; ++trial) {
      eval::ObservationOptions options;
      options.seed = 777 + static_cast<std::uint64_t>(trial) * 0x9e3779b9ULL;
      const auto obs = eval::observe_testbed(environment, positions, options);

      core::VireConfig config = core::recommended_vire_config();
      config.virtual_grid.subdivision = n;
      // Keep the boundary ring at ~0.5 m regardless of n.
      config.virtual_grid.boundary_extension_cells = (n + 1) / 2;
      const auto errs = eval::vire_errors(obs, config, options.deployment);
      for (std::size_t i = 0; i < errs.size(); ++i) {
        if (!boundary[i] && !std::isnan(errs[i])) stats.add(errs[i]);
      }
    }
    const double n2 = static_cast<double>((3 * n + 1) * (3 * n + 1));
    n2_series.push_back(n2);
    error_series.push_back(stats.mean());
    csv.row_numeric({static_cast<double>(n), n2, stats.mean(),
                     stats.ci95_halfwidth()});
    std::printf("  n=%-3d N^2=%-5.0f non-boundary error %.3f m (±%.3f)\n", n, n2,
                stats.mean(), stats.ci95_halfwidth());
  }

  support::ChartOptions chart;
  chart.title = "Fig. 7 — number of virtual reference tags vs estimation error";
  chart.x_label = "N^2 (total virtual reference tags)";
  chart.y_label = "estimation error (m)";
  chart.y_from_zero = true;
  std::printf("\n%s\n", support::render_line_chart(
                            n2_series, {{"VIRE", '*', error_series}}, chart)
                            .c_str());

  // Shape checks. Helper: error at the point nearest a given N^2.
  auto error_at = [&](double n2) {
    std::size_t best = 0;
    for (std::size_t i = 0; i < n2_series.size(); ++i) {
      if (std::abs(n2_series[i] - n2) < std::abs(n2_series[best] - n2)) best = i;
    }
    return error_series[best];
  };

  std::vector<eval::ShapeCheck> checks;
  checks.push_back({"error improves sharply from N^2=16 to N^2~600",
                    error_at(16) > 1.15 * error_at(625),
                    eval::fixed(error_at(16)) + " -> " + eval::fixed(error_at(625)) +
                        " m"});
  checks.push_back(
      {"improvement between ~600 and ~900 is small",
       std::abs(error_at(625) - error_at(961)) < 0.25 * error_at(625),
       eval::fixed(error_at(625)) + " vs " + eval::fixed(error_at(961)) + " m"});
  checks.push_back(
      {"plateau beyond ~900 (no further improvement)",
       error_at(1600) > error_at(961) - 0.15 * error_at(961),
       eval::fixed(error_at(961)) + " vs " + eval::fixed(error_at(1600)) + " m"});
  checks.push_back({"plateau error within 3x of the paper's ~0.5 m",
                    error_at(961) < 1.5, eval::fixed(error_at(961)) + " m"});
  std::printf("%s", eval::render_checks(checks).c_str());
  std::printf("\nCSV written to bench_out/fig7_density.csv\n");
  return 0;
}
