// Study: reader placement (paper Sec. 6 future work: "the placement of
// these readers to the performance of VIRE"). Four layouts around the 4x4
// grid in Env2, identical budgets except the 8-reader row:
//   corners (paper) · edge midpoints · corners+midpoints (8) · one-sided.
// Expected shape: surrounding layouts (corners / midpoints) are comparable;
// the collinear one-sided layout is clearly worst (poor geometric dilution
// across one axis); 8 readers help interior accuracy.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/report.h"
#include "eval/runner.h"
#include "support/csv.h"

namespace {
int trials_from_env(int fallback) {
  if (const char* s = std::getenv("VIRE_TRIALS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}
}  // namespace

int main() {
  using namespace vire;

  const int trials = trials_from_env(20);
  std::printf("=== Study: reader placement (Env2, VIRE) ===\n");
  std::printf("trials per row: %d\n\n", trials);

  const auto specs = eval::paper_tracking_tags();
  std::vector<geom::Vec2> positions;
  std::vector<bool> is_boundary;
  for (const auto& s : specs) {
    positions.push_back(s.position);
    is_boundary.push_back(s.boundary);
  }
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv2Spacious);

  struct Layout {
    env::ReaderPlacement placement;
    int readers;
  };
  const std::vector<Layout> layouts = {
      {env::ReaderPlacement::kCorners, 4},
      {env::ReaderPlacement::kEdgeMidpoints, 4},
      {env::ReaderPlacement::kCornersAndMidpoints, 8},
      {env::ReaderPlacement::kOneSided, 4},
  };

  support::CsvWriter csv("bench_out/study_placement.csv");
  csv.header({"placement", "readers", "interior_error_m", "boundary_error_m"});

  std::vector<double> interior_means, boundary_means;
  eval::TextTable table({"placement", "readers", "interior err (m)",
                         "boundary err (m)"});
  for (const auto& layout : layouts) {
    support::RunningStats interior, boundary;
    for (int trial = 0; trial < trials; ++trial) {
      eval::ObservationOptions options;
      options.seed = 321000 + static_cast<std::uint64_t>(trial) * 0x9e3779b9ULL;
      options.deployment.placement = layout.placement;
      options.deployment.readers = layout.readers;
      const auto obs = eval::observe_testbed(environment, positions, options);
      const auto errors = eval::vire_errors(obs, core::recommended_vire_config(),
                                            options.deployment);
      for (std::size_t i = 0; i < errors.size(); ++i) {
        if (std::isnan(errors[i])) continue;
        (is_boundary[i] ? boundary : interior).add(errors[i]);
      }
    }
    interior_means.push_back(interior.mean());
    boundary_means.push_back(boundary.mean());
    table.add_row({std::string(env::to_string(layout.placement)),
                   std::to_string(layout.readers), eval::fixed(interior.mean()),
                   eval::fixed(boundary.mean())});
    csv.row({std::string(env::to_string(layout.placement)),
             std::to_string(layout.readers),
             support::format_number(interior.mean()),
             support::format_number(boundary.mean())});
  }
  std::printf("%s\n", table.render().c_str());

  std::vector<eval::ShapeCheck> checks;
  checks.push_back(
      {"one-sided (collinear) placement is the worst layout",
       interior_means[3] > interior_means[0] &&
           interior_means[3] > interior_means[1] &&
           interior_means[3] > interior_means[2],
       "one-sided " + eval::fixed(interior_means[3]) + " m interior"});
  // Finding: midpoint readers sit closer to the interior tags, so their
  // steeper (more informative) gradients give them an interior edge over
  // the paper's corner layout; both are same-league surrounding layouts.
  checks.push_back({"corner and midpoint layouts are same-league (within 60%)",
                    interior_means[1] < 1.6 * interior_means[0] &&
                        interior_means[0] < 1.6 * interior_means[1],
                    eval::fixed(interior_means[0]) + " vs " +
                        eval::fixed(interior_means[1]) + " m"});
  checks.push_back({"8 readers give the best interior accuracy",
                    interior_means[2] <= interior_means[0] &&
                        interior_means[2] <= interior_means[1] &&
                        interior_means[2] <= interior_means[3],
                    eval::fixed(interior_means[2]) + " m"});
  std::printf("%s", eval::render_checks(checks).c_str());
  std::printf("\nCSV written to bench_out/study_placement.csv\n");
  return 0;
}
