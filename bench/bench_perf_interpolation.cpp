// Performance: virtual-grid construction (the paper's O(N^2) interpolation
// stage, Sec. 4.2) across subdivision factors and interpolation methods.
// google-benchmark computes the empirical complexity exponent; the paper's
// claim is linear in the number of virtual tags N^2.

#include <benchmark/benchmark.h>

#include <cmath>

#include "core/virtual_grid.h"
#include "geom/grid.h"

namespace {

using namespace vire;

geom::RegularGrid paper_grid() { return {{0, 0}, 1.0, 4, 4}; }

std::vector<sim::RssiVector> synth_references(const geom::RegularGrid& grid) {
  std::vector<sim::RssiVector> refs;
  for (std::size_t i = 0; i < grid.node_count(); ++i) {
    const geom::Vec2 p = grid.position(i);
    refs.push_back({-50.0 - 4.0 * p.x, -50.0 - 4.0 * p.y,
                    -50.0 - 3.0 * (p.x + p.y), -50.0 - 3.0 * (3.0 - p.x + p.y)});
  }
  return refs;
}

void BM_VirtualGridBuild(benchmark::State& state) {
  const auto grid = paper_grid();
  const auto refs = synth_references(grid);
  core::VirtualGridConfig config;
  config.subdivision = static_cast<int>(state.range(0));
  std::size_t nodes = 0;
  for (auto _ : state) {
    core::VirtualGrid vg(grid, refs, config);
    nodes = vg.node_count();
    benchmark::DoNotOptimize(vg.reader_values(0).data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(nodes));
  state.counters["virtual_tags_N2"] = static_cast<double>(nodes);
}
BENCHMARK(BM_VirtualGridBuild)->RangeMultiplier(2)->Range(2, 64)->Complexity();

void BM_VirtualGridBuildMethod(benchmark::State& state) {
  const auto grid = paper_grid();
  const auto refs = synth_references(grid);
  core::VirtualGridConfig config;
  config.subdivision = 10;  // the paper's N^2 ~ 900 operating point
  config.method = static_cast<core::InterpolationMethod>(state.range(0));
  for (auto _ : state) {
    core::VirtualGrid vg(grid, refs, config);
    benchmark::DoNotOptimize(vg.reader_values(0).data());
  }
  state.SetLabel(std::string(core::to_string(config.method)));
}
BENCHMARK(BM_VirtualGridBuildMethod)->Arg(0)->Arg(1)->Arg(2);

void BM_InterpolateSinglePoint(benchmark::State& state) {
  const auto method = static_cast<core::InterpolationMethod>(state.range(0));
  std::vector<double> values;
  for (int i = 0; i < 16; ++i) values.push_back(-60.0 - i * 0.7);
  double gx = 0.1;
  for (auto _ : state) {
    gx = gx >= 2.9 ? 0.1 : gx + 0.013;
    benchmark::DoNotOptimize(core::interpolate_at(values, 4, 4, gx, gx, method));
  }
  state.SetLabel(std::string(core::to_string(method)));
}
BENCHMARK(BM_InterpolateSinglePoint)->Arg(0)->Arg(1)->Arg(2);

void BM_VirtualGridWithBoundaryExtension(benchmark::State& state) {
  const auto grid = paper_grid();
  const auto refs = synth_references(grid);
  core::VirtualGridConfig config;
  config.subdivision = 10;
  config.boundary_extension_cells = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::VirtualGrid vg(grid, refs, config);
    benchmark::DoNotOptimize(vg.node_count());
  }
}
BENCHMARK(BM_VirtualGridWithBoundaryExtension)->Arg(0)->Arg(5)->Arg(10);

}  // namespace

#include "gbench_report_main.h"
VIRE_GBENCH_REPORT_MAIN("perf_interpolation")
