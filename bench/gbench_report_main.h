#pragma once
// Shared main() for the google-benchmark perf benches: runs the registered
// benchmarks with the usual console output, collects every per-iteration
// run, and writes bench_out/BENCH_<name>.json through obs::write_bench_report
// so the gbench-based benches feed the same throughput trajectory as the
// hand-rolled ones (bench_perf_engine_batch et al).
//
// Usage — instead of BENCHMARK_MAIN():
//   #include "gbench_report_main.h"
//   VIRE_GBENCH_REPORT_MAIN("perf_localize")
//
// The report's headline throughput is the fastest benchmark's iteration
// rate; every individual benchmark lands in `results` as
// <name>_items_per_sec. Aggregate rows (BigO/RMS fits) and errored runs are
// excluded.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "obs/bench_report.h"

#ifndef VIRE_GIT_REV
#define VIRE_GIT_REV "unknown"
#endif

namespace vire::benchutil {

/// ConsoleReporter that additionally records (name, iterations/sec, wall s)
/// for every real iteration run.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double items_per_sec = 0.0;
    double wall_s = 0.0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred ||
          run.report_big_o || run.report_rms) {
        continue;
      }
      Row row;
      row.name = run.benchmark_name();
      row.wall_s = run.real_accumulated_time;
      if (run.real_accumulated_time > 0.0) {
        row.items_per_sec =
            static_cast<double>(run.iterations) / run.real_accumulated_time;
      }
      rows.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<Row> rows;
};

/// Runs all registered benchmarks and writes BENCH_<report_name>.json.
/// Returns the process exit code.
inline int run_and_report(int argc, char** argv, const char* report_name) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  CollectingReporter reporter;
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (ran == 0 || reporter.rows.empty()) {
    std::fprintf(stderr, "%s: no benchmarks ran, skipping BENCH report\n",
                 report_name);
    return ran == 0 ? 1 : 0;
  }

  obs::BenchReport report;
  report.name = report_name;
  report.git_rev = VIRE_GIT_REV;
  report.config.emplace_back("benchmarks", std::to_string(reporter.rows.size()));
  double wall_s = 0.0;
  double best = 0.0;
  for (const CollectingReporter::Row& row : reporter.rows) {
    wall_s += row.wall_s;
    best = std::max(best, row.items_per_sec);
    report.results.emplace_back(row.name + "_items_per_sec", row.items_per_sec);
  }
  report.wall_ms = 1e3 * wall_s;
  report.throughput = best;
  try {
    const auto path = obs::write_bench_report(report);
    std::printf("BENCH report: %s\n", path.string().c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: BENCH report write failed: %s\n", report_name,
                 e.what());
  }
  return 0;
}

}  // namespace vire::benchutil

#define VIRE_GBENCH_REPORT_MAIN(report_name)                         \
  int main(int argc, char** argv) {                                  \
    return vire::benchutil::run_and_report(argc, argv, report_name); \
  }
