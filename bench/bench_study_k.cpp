// Study: LANDMARC's k (number of nearest reference tags).
// The paper fixes k = 4 ("an algorithm looking for the 4 nearest tags");
// the original LANDMARC paper (Ni et al., PerCom 2003) reported k = 4 as
// the sweet spot on the same kind of 1 m grid. This bench sweeps k per
// environment and verifies that k = 4 is at or near the optimum — i.e. our
// simulated testbed reproduces the baseline's own tuning, not just VIRE's.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/report.h"
#include "eval/runner.h"
#include "support/ascii_chart.h"
#include "support/csv.h"

namespace {
int trials_from_env(int fallback) {
  if (const char* s = std::getenv("VIRE_TRIALS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}
}  // namespace

int main() {
  using namespace vire;

  const int trials = trials_from_env(20);
  std::printf("=== Study: LANDMARC k-nearest sweep ===\n");
  std::printf("trials per point: %d\n\n", trials);

  const auto specs = eval::paper_tracking_tags();
  std::vector<geom::Vec2> positions;
  for (const auto& s : specs) positions.push_back(s.position);

  const std::vector<int> ks = {1, 2, 3, 4, 5, 6, 8, 12, 16};

  support::CsvWriter csv("bench_out/study_k.csv");
  csv.header({"k", "env1_error_m", "env2_error_m", "env3_error_m"});

  std::vector<double> k_series(ks.begin(), ks.end());
  std::vector<support::Series> chart_series = {
      {"Env1", '1', {}}, {"Env2", '2', {}}, {"Env3", '3', {}}};
  // errors[env][k index]
  std::vector<std::vector<double>> errors(3);

  for (std::size_t e = 0; e < 3; ++e) {
    const env::Environment environment =
        env::make_paper_environment(env::all_paper_environments()[e]);
    // One observation set per trial, shared across all k (paired sweep).
    std::vector<eval::TestbedObservation> observations;
    for (int trial = 0; trial < trials; ++trial) {
      eval::ObservationOptions options;
      options.seed = 654000 + static_cast<std::uint64_t>(trial) * 0x9e3779b9ULL;
      observations.push_back(eval::observe_testbed(environment, positions, options));
    }
    for (int k : ks) {
      support::RunningStats err;
      landmarc::LandmarcConfig config;
      config.k_nearest = k;
      for (const auto& obs : observations) {
        for (double x : eval::landmarc_errors(obs, config)) {
          if (!std::isnan(x)) err.add(x);
        }
      }
      errors[e].push_back(err.mean());
      chart_series[e].y.push_back(err.mean());
    }
  }
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    csv.row_numeric({static_cast<double>(ks[ki]), errors[0][ki], errors[1][ki],
                     errors[2][ki]});
  }

  eval::TextTable table({"k", "Env1 (m)", "Env2 (m)", "Env3 (m)"});
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    table.add_row_numeric(std::to_string(ks[ki]),
                          {errors[0][ki], errors[1][ki], errors[2][ki]});
  }
  std::printf("%s\n", table.render().c_str());

  support::ChartOptions chart;
  chart.title = "LANDMARC error vs k";
  chart.x_label = "k (nearest reference tags)";
  chart.y_label = "mean error (m)";
  chart.y_from_zero = true;
  std::printf("%s\n", support::render_line_chart(k_series, chart_series, chart).c_str());

  std::vector<eval::ShapeCheck> checks;
  // k = 4 within 15% of each environment's best k.
  bool k4_near_best = true;
  const std::size_t k4_index = 3;
  for (std::size_t e = 0; e < 3; ++e) {
    double best = errors[e][0];
    for (double v : errors[e]) best = std::min(best, v);
    if (errors[e][k4_index] > 1.15 * best) k4_near_best = false;
  }
  checks.push_back({"k = 4 (the paper's choice) is near-optimal everywhere",
                    k4_near_best, ""});
  bool extremes_worse = true;
  for (std::size_t e = 0; e < 3; ++e) {
    if (errors[e][0] <= errors[e][k4_index]) extremes_worse = false;       // k=1
    if (errors[e].back() <= errors[e][k4_index]) extremes_worse = false;   // k=16
  }
  checks.push_back({"both extremes (k=1 and k=16) are worse than k=4",
                    extremes_worse, ""});
  std::printf("%s", eval::render_checks(checks).c_str());
  std::printf("\nCSV written to bench_out/study_k.csv\n");
  return 0;
}
