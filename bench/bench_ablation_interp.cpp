// Ablation: interpolation algorithm (paper Sec. 6 future work).
// "Linear interpolation is fast and easy. But it is not very precise in
// complex situations. ... It may be interesting to study how much accuracy
// can be further achieved by using some novel nonlinear interpolation
// algorithms." — this bench answers that question on the simulated testbed:
// linear (the paper), Catmull-Rom spline (local nonlinear), and full
// Lagrange polynomial (global; the paper predicts end-point misbehaviour).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/report.h"
#include "eval/runner.h"
#include "obs/bench_report.h"
#include "support/csv.h"

namespace {
int trials_from_env(int fallback) {
  if (const char* s = std::getenv("VIRE_TRIALS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}
}  // namespace

int main() {
  using namespace vire;

  const int trials = trials_from_env(20);
  std::printf("=== Ablation: interpolation algorithm (paper Sec. 6) ===\n");
  std::printf("trials per cell: %d\n\n", trials);

  const std::vector<core::InterpolationMethod> methods = {
      core::InterpolationMethod::kLinear, core::InterpolationMethod::kCatmullRom,
      core::InterpolationMethod::kPolynomial};

  const auto specs = eval::paper_tracking_tags();
  std::vector<geom::Vec2> positions;
  std::vector<bool> boundary;
  for (const auto& s : specs) {
    positions.push_back(s.position);
    boundary.push_back(s.boundary);
  }

  support::CsvWriter csv("bench_out/ablation_interp.csv");
  csv.header({"method", "environment", "interior_error_m", "boundary_error_m"});

  obs::BenchReport report;
  report.name = "ablation_interp";
  report.git_rev = VIRE_GIT_REV;
  report.config = {{"trials", std::to_string(trials)}};
  report.throughput_unit = "localizations_per_sec";
  std::size_t localizations = 0;
  const auto bench_start = std::chrono::steady_clock::now();

  // errors[method][env] -> (interior, boundary)
  std::vector<std::vector<std::pair<double, double>>> all;
  eval::TextTable table({"method", "Env1 int/bnd (m)", "Env2 int/bnd (m)",
                         "Env3 int/bnd (m)"});
  for (const auto method : methods) {
    std::vector<std::string> row = {std::string(core::to_string(method))};
    std::vector<std::pair<double, double>> per_env;
    for (auto which : env::all_paper_environments()) {
      const env::Environment environment = env::make_paper_environment(which);
      support::RunningStats interior, bnd;
      for (int trial = 0; trial < trials; ++trial) {
        eval::ObservationOptions options;
        options.seed = 77000 + static_cast<std::uint64_t>(trial) * 0x9e3779b9ULL;
        const auto obs = eval::observe_testbed(environment, positions, options);
        core::VireConfig config = core::recommended_vire_config();
        config.virtual_grid.method = method;
        const auto errors = eval::vire_errors(obs, config, options.deployment);
        localizations += errors.size();
        for (std::size_t i = 0; i < errors.size(); ++i) {
          if (std::isnan(errors[i])) continue;
          (boundary[i] ? bnd : interior).add(errors[i]);
        }
      }
      row.push_back(eval::fixed(interior.mean()) + " / " + eval::fixed(bnd.mean()));
      const std::string env_tag(env::name(which).substr(0, 4));  // "Env1".."Env3"
      const std::string key =
          std::string(core::to_string(method)) + "_" + env_tag;
      report.results.emplace_back(key + "_interior_m", interior.mean());
      report.results.emplace_back(key + "_boundary_m", bnd.mean());
      per_env.push_back({interior.mean(), bnd.mean()});
      csv.row({std::string(core::to_string(method)), std::string(env::name(which)),
               support::format_number(interior.mean()),
               support::format_number(bnd.mean())});
    }
    all.push_back(std::move(per_env));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  std::vector<eval::ShapeCheck> checks;
  // Linear is competitive: within 25% of the best method everywhere
  // (justifying the paper's choice of the cheap algorithm).
  bool linear_competitive = true;
  for (std::size_t e = 0; e < 3; ++e) {
    const double best = std::min({all[0][e].first, all[1][e].first, all[2][e].first});
    if (all[0][e].first > 1.25 * best) linear_competitive = false;
  }
  checks.push_back({"linear interpolation stays within 25% of the best method",
                    linear_competitive, ""});
  // Polynomial interpolation misbehaves at boundaries relative to its own
  // interior (the paper's end-point warning) in at least one environment.
  bool poly_edge_penalty = false;
  for (std::size_t e = 0; e < 3; ++e) {
    const double poly_ratio = all[2][e].second / std::max(1e-9, all[2][e].first);
    const double lin_ratio = all[0][e].second / std::max(1e-9, all[0][e].first);
    if (poly_ratio > lin_ratio) poly_edge_penalty = true;
  }
  checks.push_back({"polynomial shows a boundary penalty vs linear somewhere",
                    poly_edge_penalty, ""});
  std::printf("%s", eval::render_checks(checks).c_str());

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - bench_start)
          .count();
  report.wall_ms = 1e3 * seconds;
  report.throughput = static_cast<double>(localizations) / std::max(1e-12, seconds);
  const auto json_path = obs::write_bench_report(report);
  std::printf("\nCSV written to bench_out/ablation_interp.csv\n");
  std::printf("JSON report written to %s\n", json_path.string().c_str());
  return 0;
}
