// Ablation: VIRE design choices beyond the weighting —
//   * threshold strategy: fixed 1.5 dB vs common adaptive vs per-reader
//     greedy (the literal reading of the paper's three-step procedure);
//   * boundary-compensation ring: on vs off (the paper's acknowledged
//     weakness at boundary/outside tags, Sec. 6);
//   * reader count: 4 corner readers vs 8 (corners + edge midpoints) — the
//     paper's "effects with more readers" future-work question.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/report.h"
#include "eval/runner.h"
#include "support/csv.h"

namespace {
int trials_from_env(int fallback) {
  if (const char* s = std::getenv("VIRE_TRIALS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}

struct Cell {
  double interior = 0.0;
  double boundary = 0.0;
};

}  // namespace

int main() {
  using namespace vire;

  const int trials = trials_from_env(20);
  std::printf("=== Ablation: elimination strategy, boundary ring, reader count ===\n");
  std::printf("Env3 office, trials per row: %d\n\n", trials);

  const auto specs = eval::paper_tracking_tags();
  std::vector<geom::Vec2> positions;
  std::vector<bool> is_boundary;
  for (const auto& s : specs) {
    positions.push_back(s.position);
    is_boundary.push_back(s.boundary);
  }
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv3Office);

  struct Variant {
    std::string name;
    core::ThresholdMode mode;
    int extension_cells;
    int readers;
  };
  const std::vector<Variant> variants = {
      {"adaptive + ring + 4 readers (default)", core::ThresholdMode::kAdaptive, 5, 4},
      {"fixed 1.5 dB + ring", core::ThresholdMode::kFixed, 5, 4},
      {"per-reader greedy + ring", core::ThresholdMode::kAdaptivePerReader, 5, 4},
      {"adaptive, no boundary ring (strict paper)", core::ThresholdMode::kAdaptive, 0, 4},
      {"adaptive + ring + 8 readers", core::ThresholdMode::kAdaptive, 5, 8},
  };

  support::CsvWriter csv("bench_out/ablation_design.csv");
  csv.header({"variant", "interior_error_m", "boundary_error_m"});

  std::vector<Cell> cells;
  eval::TextTable table({"variant", "interior err (m)", "boundary err (m)"});
  for (const auto& variant : variants) {
    support::RunningStats interior, boundary;
    for (int trial = 0; trial < trials; ++trial) {
      eval::ObservationOptions options;
      options.seed = 99000 + static_cast<std::uint64_t>(trial) * 0x9e3779b9ULL;
      options.deployment.readers = variant.readers;
      const auto obs = eval::observe_testbed(environment, positions, options);
      core::VireConfig config = core::recommended_vire_config();
      config.elimination.mode = variant.mode;
      config.virtual_grid.boundary_extension_cells = variant.extension_cells;
      const auto errors = eval::vire_errors(obs, config, options.deployment);
      for (std::size_t i = 0; i < errors.size(); ++i) {
        if (std::isnan(errors[i])) continue;
        (is_boundary[i] ? boundary : interior).add(errors[i]);
      }
    }
    cells.push_back({interior.mean(), boundary.mean()});
    table.add_row({variant.name, eval::fixed(interior.mean()),
                   eval::fixed(boundary.mean())});
    csv.row({variant.name, support::format_number(interior.mean()),
             support::format_number(boundary.mean())});
  }
  std::printf("%s\n", table.render().c_str());

  std::vector<eval::ShapeCheck> checks;
  checks.push_back({"boundary ring improves boundary tags",
                    cells[0].boundary < cells[3].boundary,
                    eval::fixed(cells[3].boundary) + " -> " +
                        eval::fixed(cells[0].boundary) + " m"});
  checks.push_back({"adaptive threshold at least matches fixed 1.5 dB overall",
                    cells[0].interior + cells[0].boundary <=
                        1.1 * (cells[1].interior + cells[1].boundary),
                    ""});
  checks.push_back({"common adaptive beats the per-reader greedy variant",
                    cells[0].interior < cells[2].interior, ""});
  // Finding for the paper's "more readers" future-work question: the four
  // extra edge-midpoint readers sharpen the interior (more intersecting
  // constraints) but their very steep near-field makes the common-threshold
  // bands unreliable for boundary tags — see EXPERIMENTS.md.
  checks.push_back({"8 readers improve interior accuracy (paper future-work probe)",
                    cells[4].interior < cells[0].interior,
                    eval::fixed(cells[0].interior) + " -> " +
                        eval::fixed(cells[4].interior) + " m"});
  std::printf("%s", eval::render_checks(checks).c_str());
  std::printf("\nCSV written to bench_out/ablation_design.csv\n");
  return 0;
}
