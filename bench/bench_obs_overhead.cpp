// Performance: observability overhead. Fleet tracing is capture-only by
// design; this bench puts a number on "capture-only" at two layers:
//
//   engine     — engine.update() throughput with the span tracer off vs on
//                (same captured scenario, timing only the update calls);
//   supervisor — fleet poll throughput (2 vire_shardd processes) with fleet
//                tracing off vs on, covering trace-context stamping, the
//                pending-batch ledger and batch_e2e span emission.
//
// Honesty rules (docs/benchmarks.md): hardware_threads is reported raw; on
// a single-hardware-thread machine the supervisor stage is REFUSED — two
// shard processes plus the driver would time-slice one core and measure
// scheduler pressure, not tracing overhead. The engine stage is in-process
// and single-threaded, so it is measured everywhere and carries the
// perf-floor guard.
//
// Env knobs: VIRE_OBS_POLLS (engine polls per mode, default 24),
// VIRE_OBS_FLEET_POLLS (supervisor polls per mode, default 8).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/localization_engine.h"
#include "env/environment.h"
#include "obs/bench_report.h"
#include "service/supervisor.h"
#include "sim/simulator.h"
#include "support/csv.h"

namespace {

using namespace vire;
namespace fs = std::filesystem;

int env_int(const char* name, int fallback) {
  if (const char* s = std::getenv(name)) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// engine.update()/sec over the paper-testbed scenario; only the update
/// calls are timed, so simulator cost does not dilute the comparison.
double engine_updates_per_sec(bool tracing, int polls) {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = 11;
  sim_config.middleware.window_s = 10.0;
  sim::RfidSimulator simulator(environment, deployment, sim_config);
  const auto reference_ids = simulator.add_reference_tags();
  const sim::TagId pallet = simulator.add_tag({1.4, 1.8});
  const sim::TagId forklift = simulator.add_tag({2.3, 1.1});
  const sim::TagId cart = simulator.add_tag({0.9, 2.6});

  engine::EngineConfig config;
  config.min_refresh_interval_s = 10.0;
  config.observability.enable_tracing = tracing;
  engine::LocalizationEngine engine(deployment, config);
  engine.set_reference_ids(reference_ids);
  engine.track(pallet, "pallet");
  engine.track(forklift, "forklift");
  engine.track(cart, "cart");

  simulator.run_for(40.0);
  double update_seconds = 0.0;
  for (int poll = 0; poll < polls; ++poll) {
    simulator.run_for(5.0);
    const sim::SimTime now = simulator.now();
    simulator.middleware().evict_stale(now);
    const double t0 = now_s();
    (void)engine.update(simulator.middleware(), now);
    update_seconds += now_s() - t0;
  }
  return static_cast<double>(polls) / std::max(1e-12, update_seconds);
}

/// Fleet ingest+poll rounds/sec through a 2-shard supervised deployment.
double supervisor_polls_per_sec(bool tracing, int polls,
                                const fs::path& shardd) {
  const env::Environment environment =
      env::make_paper_environment(env::PaperEnvironment::kEnv1SemiOpen);
  const env::Deployment deployment = env::Deployment::paper_testbed();
  sim::SimulatorConfig sim_config;
  sim_config.seed = 11;
  sim_config.middleware.window_s = 10.0;
  sim::RfidSimulator simulator(environment, deployment, sim_config);
  sim::ReadingRecorder recorder;
  simulator.set_interceptor(&recorder);
  const auto reference_ids = simulator.add_reference_tags();
  std::vector<std::pair<sim::TagId, std::string>> tracked = {
      {simulator.add_tag({1.4, 1.8}), "pallet"},
      {simulator.add_tag({2.3, 1.1}), "forklift"},
      {simulator.add_tag({0.9, 2.6}), "cart"}};

  simulator.run_for(40.0);
  const std::vector<sim::RssiReading> warmup = recorder.take();
  std::vector<std::vector<sim::RssiReading>> segments;
  std::vector<sim::SimTime> poll_times;
  for (int r = 0; r < polls; ++r) {
    simulator.run_for(5.0);
    segments.push_back(recorder.take());
    poll_times.push_back(simulator.now());
  }

  const fs::path root =
      fs::temp_directory_path() /
      (tracing ? "vire_bench_obs_on" : "vire_bench_obs_off");
  fs::remove_all(root);
  fs::create_directories(root);
  service::SupervisorConfig config;
  config.shards = 2;
  config.root_dir = root;
  config.shardd_binary = shardd;
  config.spawn_wait_s = 60.0;
  config.seed = 7;
  config.fleet_tracing = tracing;
  service::Supervisor supervisor(deployment, config);
  supervisor.start();
  supervisor.set_reference_ids(reference_ids);
  for (const auto& [tag, name] : tracked) {
    supervisor.track(tag, name, std::nullopt);
  }

  supervisor.ingest(warmup);
  const double t0 = now_s();
  for (int r = 0; r < polls; ++r) {
    supervisor.ingest(segments[static_cast<std::size_t>(r)]);
    (void)supervisor.poll(poll_times[static_cast<std::size_t>(r)]);
  }
  const double seconds = now_s() - t0;
  supervisor.stop();
  fs::remove_all(root);
  return static_cast<double>(polls) / std::max(1e-12, seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const int polls = env_int("VIRE_OBS_POLLS", 24);
  const int fleet_polls = env_int("VIRE_OBS_FLEET_POLLS", 8);
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const bool can_fleet = hw_raw > 1;

  std::printf("=== Observability overhead: tracing off vs on ===\n");
  std::printf("engine polls/mode: %d, fleet polls/mode: %d, hardware threads: %u\n\n",
              polls, fleet_polls, hw_raw);

  obs::BenchReport report;
  report.name = "obs_overhead";
  report.git_rev = VIRE_GIT_REV;
  report.config = {{"engine_polls", std::to_string(polls)},
                   {"fleet_polls", std::to_string(fleet_polls)},
                   {"hardware_threads", std::to_string(hw_raw)},
                   {"supervisor_stage",
                    can_fleet ? "measured" : "refused: single hardware thread"}};
  report.throughput_unit = "engine_updates_per_sec";

  support::CsvWriter csv("bench_out/obs_overhead.csv");
  csv.header({"stage", "tracing", "per_sec"});

  const auto bench_start = std::chrono::steady_clock::now();

  const double engine_off = engine_updates_per_sec(false, polls);
  const double engine_on = engine_updates_per_sec(true, polls);
  const double engine_overhead_pct =
      100.0 * (engine_off / std::max(1e-12, engine_on) - 1.0);
  std::printf("engine.update: %10.1f/s off, %10.1f/s on  (%+.2f%% overhead)\n",
              engine_off, engine_on, engine_overhead_pct);
  csv.row({"engine", "off", std::to_string(engine_off)});
  csv.row({"engine", "on", std::to_string(engine_on)});
  report.results.emplace_back("engine_updates_per_sec_tracing_off", engine_off);
  report.results.emplace_back("engine_updates_per_sec_tracing_on", engine_on);
  report.results.emplace_back("engine_overhead_pct", engine_overhead_pct);
  report.throughput = engine_on;

  if (can_fleet) {
    const fs::path shardd =
        argc > 1 ? fs::path(argv[1]) : fs::path(VIRE_SHARDD_DEFAULT);
    if (!fs::exists(shardd)) {
      std::printf("supervisor stage: shard binary not found at %s — skipped\n",
                  shardd.string().c_str());
    } else {
      const double fleet_off =
          supervisor_polls_per_sec(false, fleet_polls, shardd);
      const double fleet_on =
          supervisor_polls_per_sec(true, fleet_polls, shardd);
      const double fleet_overhead_pct =
          100.0 * (fleet_off / std::max(1e-12, fleet_on) - 1.0);
      std::printf(
          "fleet poll:    %10.2f/s off, %10.2f/s on  (%+.2f%% overhead)\n",
          fleet_off, fleet_on, fleet_overhead_pct);
      csv.row({"supervisor", "off", std::to_string(fleet_off)});
      csv.row({"supervisor", "on", std::to_string(fleet_on)});
      report.results.emplace_back("supervisor_polls_per_sec_tracing_off",
                                  fleet_off);
      report.results.emplace_back("supervisor_polls_per_sec_tracing_on",
                                  fleet_on);
      report.results.emplace_back("supervisor_overhead_pct",
                                  fleet_overhead_pct);
    }
  } else {
    std::printf(
        "supervisor stage: REFUSED — single hardware thread; two shard\n"
        "processes would time-slice one core and measure scheduler pressure,\n"
        "not tracing overhead.\n");
  }

  report.wall_ms = 1e3 * std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - bench_start)
                             .count();
  const auto json_path = obs::write_bench_report(report);
  std::printf("\nCSV written to bench_out/obs_overhead.csv\n");
  std::printf("JSON report written to %s\n", json_path.string().c_str());
  return 0;
}
