// Baseline sweep: VIRE vs LANDMARC vs model-based trilateration (the
// approach family behind the paper's reference [12]), all three consuming
// identical observations in each locale. The expected shape: trilateration
// is competitive only in the clean semi-open locale and collapses in the
// multipath-heavy office, while the scene-analysis methods (LANDMARC, VIRE)
// degrade gracefully — the core argument for reference-tag localization.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/report.h"
#include "eval/runner.h"
#include "core/bayesian.h"
#include "landmarc/trilateration.h"
#include "support/csv.h"

namespace {
int trials_from_env(int fallback) {
  if (const char* s = std::getenv("VIRE_TRIALS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}
}  // namespace

int main() {
  using namespace vire;

  const int trials = trials_from_env(20);
  std::printf("=== Baselines: trilateration vs LANDMARC vs VIRE ===\n");
  std::printf("trials per environment: %d\n\n", trials);

  const auto specs = eval::paper_tracking_tags();
  std::vector<geom::Vec2> positions;
  for (const auto& s : specs) positions.push_back(s.position);

  support::CsvWriter csv("bench_out/baseline_comparison.csv");
  csv.header({"environment", "trilateration_m", "landmarc_m", "vire_m",
              "fitted_exponent", "fit_rmse_db"});

  eval::TextTable table({"environment", "trilateration (m)", "LANDMARC (m)",
                         "Bayesian grid (m)", "VIRE (m)", "fitted exponent"});
  std::vector<double> tri_means, lm_means, bayes_means, vire_means;
  for (auto which : env::all_paper_environments()) {
    const env::Environment environment = env::make_paper_environment(which);
    support::RunningStats tri_err, lm_err, bayes_err, vire_err, exponents, rmses;
    for (int trial = 0; trial < trials; ++trial) {
      eval::ObservationOptions options;
      options.seed = 123000 + static_cast<std::uint64_t>(trial) * 0x9e3779b9ULL;
      const auto obs = eval::observe_testbed(environment, positions, options);

      // Trilateration: self-survey the path-loss model from the reference
      // tags, then range-and-solve.
      const env::Deployment deployment(options.deployment);
      const auto tri = landmarc::TrilaterationLocalizer::from_references(
          deployment.reader_positions(), obs.reference_positions,
          obs.reference_rssi);
      exponents.add(tri.model().exponent);
      rmses.add(tri.model().rmse_db);
      for (std::size_t t = 0; t < positions.size(); ++t) {
        const auto result = tri.locate(obs.tracking_rssi[t]);
        if (result) tri_err.add(geom::distance(result->position, positions[t]));
      }
      for (double e : eval::landmarc_errors(obs, {})) {
        if (!std::isnan(e)) lm_err.add(e);
      }

      // Bayesian grid: soft Gaussian weighting over the same virtual grid.
      core::BayesianConfig bayes_config;
      bayes_config.virtual_grid = core::recommended_vire_config().virtual_grid;
      bayes_config.sigma_db = 2.0;
      core::BayesianGridLocalizer bayes(deployment.reference_grid(), bayes_config);
      bayes.set_reference_rssi(obs.reference_rssi);
      for (std::size_t t = 0; t < positions.size(); ++t) {
        const auto result = bayes.locate(obs.tracking_rssi[t]);
        if (result) {
          bayes_err.add(geom::distance(result->mean_position, positions[t]));
        }
      }
      for (double e :
           eval::vire_errors(obs, core::recommended_vire_config(), options.deployment)) {
        if (!std::isnan(e)) vire_err.add(e);
      }
    }
    table.add_row({std::string(env::name(which)), eval::fixed(tri_err.mean()),
                   eval::fixed(lm_err.mean()), eval::fixed(bayes_err.mean()),
                   eval::fixed(vire_err.mean()), eval::fixed(exponents.mean(), 2)});
    csv.row({std::string(env::name(which)), support::format_number(tri_err.mean()),
             support::format_number(lm_err.mean()),
             support::format_number(vire_err.mean()),
             support::format_number(exponents.mean()),
             support::format_number(rmses.mean())});
    tri_means.push_back(tri_err.mean());
    lm_means.push_back(lm_err.mean());
    bayes_means.push_back(bayes_err.mean());
    vire_means.push_back(vire_err.mean());
  }
  std::printf("%s\n", table.render().c_str());

  std::vector<eval::ShapeCheck> checks;
  bool vire_always_best = true;
  for (std::size_t e = 0; e < 3; ++e) {
    if (vire_means[e] > lm_means[e] || vire_means[e] > tri_means[e]) {
      vire_always_best = false;
    }
  }
  checks.push_back({"VIRE is the most accurate method in every environment",
                    vire_always_best, ""});
  checks.push_back({"scene analysis (LANDMARC) beats ranging in the office",
                    lm_means[2] < tri_means[2],
                    "trilateration " + eval::fixed(tri_means[2]) + " vs LANDMARC " +
                        eval::fixed(lm_means[2]) + " m"});
  checks.push_back({"trilateration degrades from Env1 to Env3",
                    tri_means[2] > tri_means[0], ""});
  bool bayes_beats_lm = true;
  for (std::size_t e = 0; e < 3; ++e) {
    if (bayes_means[e] > lm_means[e]) bayes_beats_lm = false;
  }
  checks.push_back({"Bayesian grid (soft VIRE) also beats LANDMARC",
                    bayes_beats_lm, ""});
  bool vire_close_to_bayes = true;
  for (std::size_t e = 0; e < 3; ++e) {
    if (vire_means[e] > 1.3 * bayes_means[e]) vire_close_to_bayes = false;
  }
  checks.push_back(
      {"VIRE's hard elimination stays within 30% of the soft posterior",
       vire_close_to_bayes, ""});
  std::printf("%s", eval::render_checks(checks).c_str());
  std::printf("\nCSV written to bench_out/baseline_comparison.csv\n");
  return 0;
}
