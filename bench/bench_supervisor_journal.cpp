// Control-journal overhead and supervisor failover speed: what does the
// durable control plane cost, and how fast does a new incarnation rebuild?
// (docs/service.md, "Supervisor failover & elastic membership").
//
// Four headline numbers, file-I/O only — no engines, no shard processes, so
// the bench isolates the journal itself and runs anywhere (including the
// 1-core CI container):
//
//   * op append       — journaled ingest batches/s, the steady-state tax the
//     control journal adds to the supervisor ingest path (fsync off, the
//     production default: page-cache durability survives a supervisor
//     SIGKILL);
//   * checkpoint      — sync + fold + atomic-rename of the control state,
//     the per-cadence cost of bounding replay;
//   * recover         — cold-start latency of checkpoint load + suffix fold,
//     which bounds supervisor failover time: takeover ~ journal-suffix
//     length / recovery rate;
//   * op-log rebuild  — collect_oplog() full-journal re-scan, the overflow
//     escape hatch (push_oplog eviction) and migration re-feed path.
//
// Env knobs: VIRE_JOURNAL_OPS      journaled batches (default 20000)
//            VIRE_JOURNAL_BATCH    readings per batch (default 8)
//            VIRE_JOURNAL_RECOVERS recover() reps timed (default 5)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "obs/bench_report.h"
#include "service/control_journal.h"

namespace {

using namespace vire;
namespace fs = std::filesystem;

int env_int(const char* name, int fallback) {
  if (const char* s = std::getenv(name)) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<sim::RssiReading> make_batch(int index, int readings) {
  std::vector<sim::RssiReading> batch;
  batch.reserve(static_cast<std::size_t>(readings));
  for (int i = 0; i < readings; ++i) {
    batch.push_back({0.01 * index + 0.001 * i,
                     static_cast<sim::TagId>(100 + (i & 15)),
                     static_cast<sim::ReaderId>(i & 3), -55.0 - (i & 7)});
  }
  return batch;
}

}  // namespace

int main() {
  const int ops = env_int("VIRE_JOURNAL_OPS", 20000);
  const int per_batch = env_int("VIRE_JOURNAL_BATCH", 8);
  const int recovers = env_int("VIRE_JOURNAL_RECOVERS", 5);
  const fs::path scratch = "bench_out/journal_scratch";

  std::printf("=== Control-journal overhead & failover speed ===\n");
  std::printf("batches: %d, readings/batch: %d, recover reps: %d\n\n", ops,
              per_batch, recovers);

  fs::remove_all(scratch);
  service::ControlJournalConfig config;
  config.dir = scratch;

  // 1. Append throughput: the per-ingest tax. Two shards round-robin, plus
  // the occasional membership/breaker op a real stream carries.
  auto journal = std::make_unique<service::ControlJournal>(config);
  (void)journal->recover();
  journal->record_add_shard(0);
  journal->record_shard_active(0);
  journal->record_add_shard(1);
  journal->record_shard_active(1);
  const auto append_start = std::chrono::steady_clock::now();
  for (int i = 0; i < ops; ++i) {
    journal->record_batch(static_cast<std::uint32_t>(i & 1),
                          static_cast<std::uint64_t>(i + 1),
                          make_batch(i, per_batch));
  }
  const double append_elapsed = seconds_since(append_start);
  const double append_ops_rate = static_cast<double>(ops) / append_elapsed;
  const double append_readings_rate =
      static_cast<double>(ops) * per_batch / append_elapsed;

  // 2. Checkpoint latency: fold + sync + atomic rename. journal_floor stays
  // at 1 so the timing loop never prunes the suffix the recovery below folds.
  service::ControlCheckpoint state;
  state.ingest_sequence = static_cast<std::uint64_t>(ops);
  state.next_shard_id = 2;
  state.last_poll_time = 0.01 * ops;
  state.members = {{0, service::MemberPhase::kActive, 0, false, 0},
                   {1, service::MemberPhase::kActive, 0, false, 0}};
  for (sim::TagId tag = 100; tag < 116; ++tag) {
    state.tags.push_back({tag, "tag-" + std::to_string(tag), std::nullopt});
  }
  const auto ckpt_start = std::chrono::steady_clock::now();
  constexpr int kCheckpointReps = 10;
  for (int i = 0; i < kCheckpointReps; ++i) journal->checkpoint(state);
  const double checkpoint_ms =
      seconds_since(ckpt_start) * 1000.0 / kCheckpointReps;
  journal.reset();  // close the open segment cleanly

  // 3. Failover: a cold incarnation loads the checkpoint and folds the whole
  // un-acked suffix (last_ack 0: every batch is owed, the worst case).
  double recover_elapsed = 0.0;
  std::uint64_t replayed = 0;
  std::uint64_t owed = 0;
  for (int i = 0; i < recovers; ++i) {
    service::ControlJournal cold(config);
    const auto start = std::chrono::steady_clock::now();
    const service::RecoveredControlState recovered = cold.recover();
    recover_elapsed += seconds_since(start);
    replayed = recovered.replayed_ops;
    owed = 0;
    for (const auto& [shard, oplog] : recovered.oplogs) owed += oplog.size();
    if (!recovered.recovered) {
      std::printf("FAIL: recovery found nothing under %s\n",
                  scratch.string().c_str());
      return 1;
    }
  }
  const double recover_ms = recover_elapsed * 1000.0 / recovers;
  const double replay_rate =
      recover_elapsed > 0.0
          ? static_cast<double>(replayed) * recovers / recover_elapsed
          : 0.0;

  // 4. Op-log rebuild: the overflow escape hatch re-scans the journal for
  // one member's suffix.
  service::ControlJournal rebuild(config);
  (void)rebuild.recover();
  const auto collect_start = std::chrono::steady_clock::now();
  const auto oplog = rebuild.collect_oplog(0, 0, 0);
  const double collect_ms = seconds_since(collect_start) * 1000.0;

  std::printf("op append        : %10.0f batches/s  (%0.0f readings/s)\n",
              append_ops_rate, append_readings_rate);
  std::printf("checkpoint write : %10.3f ms\n", checkpoint_ms);
  std::printf("recover          : %10.3f ms  (%llu ops folded, %llu owed, "
              "%0.0f ops/s)\n",
              recover_ms, static_cast<unsigned long long>(replayed),
              static_cast<unsigned long long>(owed), replay_rate);
  std::printf("op-log rebuild   : %10.3f ms  (%zu entries for shard 0)\n",
              collect_ms, oplog.size());

  obs::BenchReport bench;
  bench.name = "supervisor_journal";
  bench.git_rev = VIRE_GIT_REV;
  bench.config = {{"batches", std::to_string(ops)},
                  {"readings_per_batch", std::to_string(per_batch)},
                  {"recover_reps", std::to_string(recovers)}};
  bench.wall_ms = recover_ms;
  bench.throughput = append_ops_rate;
  bench.throughput_unit = "journaled_batches_per_sec";
  bench.results = {{"append_batches_per_sec", append_ops_rate},
                   {"append_readings_per_sec", append_readings_rate},
                   {"checkpoint_write_ms", checkpoint_ms},
                   {"recover_ms", recover_ms},
                   {"recover_ops_per_sec", replay_rate},
                   {"collect_oplog_ms", collect_ms}};
  const auto path = obs::write_bench_report(bench);
  std::printf("\nreport: %s\n", path.string().c_str());

  fs::remove_all(scratch);
  return replayed > 0 && owed > 0 && !oplog.empty() ? 0 : 1;
}
